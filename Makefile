# Convenience targets for the SuperGlue reproduction.

PY ?= python3
# Worker-pool size for the SWIFI campaign (0 = all CPUs).
WORKERS ?= 0

.PHONY: install test lint bench perf throughput profile campaign fault-classes fig7 fig7-campaign fig7-openloop cluster examples clean

install:
	pip install -e . --no-build-isolation || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

lint:
	$(PY) -m ruff check src tests benchmarks examples

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -s

# Interpreter + campaign throughput, each gated against its committed
# baseline (absolute rates with a wide tolerance plus a machine-
# independent ratio floor).
perf:
	$(PY) benchmarks/bench_interp_throughput.py --json /tmp/interp_throughput.json
	$(PY) scripts/check_interp_baseline.py /tmp/interp_throughput.json
	$(PY) benchmarks/bench_campaign_throughput.py --json /tmp/campaign_throughput.json
	$(PY) scripts/check_campaign_baseline.py /tmp/campaign_throughput.json
	$(PY) benchmarks/bench_fig7_webserver.py --json /tmp/fig7_webserver.json
	$(PY) scripts/check_fig7_baseline.py /tmp/fig7_webserver.json
	$(PY) benchmarks/bench_fig7_webserver.py --openloop --json /tmp/fig7_openloop.json
	$(PY) scripts/check_fig7_openloop.py /tmp/fig7_openloop.json

# The campaign-throughput trajectory in one command: fresh -> two-tier
# pooled -> prefix super-traces -> tail replay (the four sweeps of
# bench_campaign_throughput.py, outcome-identity asserted), gated
# against the committed baseline including the replayed-unit coverage
# floor.
throughput:
	$(PY) benchmarks/bench_campaign_throughput.py --json /tmp/campaign_throughput.json
	$(PY) scripts/check_campaign_baseline.py /tmp/campaign_throughput.json

# cProfile over a small campaign; SERVICE/FAULTS/SORT overridable.
SERVICE ?= lock
FAULTS ?= 50
SORT ?= cumulative
profile:
	$(PY) scripts/profile_campaign.py --service $(SERVICE) --faults $(FAULTS) --sort $(SORT)

# The paper-scale campaign (500 faults per service), fanned out over the
# worker pool; aggregates are bit-identical to a serial run.
# FAULT_CLASS selects the injected fault model (reg/mem/idl/burst).
FAULT_CLASS ?= reg
campaign:
	REPRO_CAMPAIGN_FAULTS=500 REPRO_CAMPAIGN_WORKERS=$(WORKERS) \
		REPRO_CAMPAIGN_FAULT_CLASS=$(FAULT_CLASS) \
		$(PY) -m pytest \
		benchmarks/bench_table2_campaign.py --benchmark-only -s

# One 50-fault smoke column per fault class, each checked against its
# committed baseline — the local equivalent of the nightly
# `fault-classes` CI job.
fault-classes:
	workers=$(WORKERS); [ "$$workers" = "0" ] && workers=$$(nproc); \
	for fc in reg mem idl burst; do \
		PYTHONPATH=src $(PY) -m repro table2 --fault-class $$fc \
			--faults 50 --seed 1 --workers $$workers \
			--json /tmp/table2_$${fc}_smoke.json || exit 1; \
		$(PY) scripts/check_table2_baseline.py \
			/tmp/table2_$${fc}_smoke.json \
			benchmarks/baselines/table2_$${fc}_smoke.json || exit 1; \
	done

# Simulated multi-node cluster campaign, checked against its committed
# baseline — the local equivalent of the nightly `cluster-smoke` CI job.
# NODES/KILLS/SEEDS/UNITS overridable.
NODES ?= 4
KILLS ?= 1
CLUSTER_SEEDS ?= 16
UNITS ?= 12
cluster:
	PYTHONPATH=src $(PY) -m repro cluster --nodes $(NODES) \
		--faults $(KILLS) --seeds $(CLUSTER_SEEDS) --units $(UNITS) \
		--seed 7 --workers $(WORKERS) --json /tmp/cluster_smoke.json
	$(PY) scripts/check_cluster_baseline.py /tmp/cluster_smoke.json \
		benchmarks/baselines/cluster_smoke.json

fig7:
	$(PY) -m repro fig7 --requests 2000

# Multi-seed faulted web-server campaign (SEEDS/WORKERS overridable).
SEEDS ?= 16
fig7-campaign:
	$(PY) -m repro fig7 --seeds $(SEEDS) --workers $(WORKERS)

# Deterministic open-loop offered-load sweep (goodput / p99 / p999 with
# faults at every load point), checked exactly against the committed
# baseline — the local equivalent of the `fig7-openloop` CI job.
fig7-openloop:
	$(PY) benchmarks/bench_fig7_webserver.py --openloop --json /tmp/fig7_openloop.json
	$(PY) scripts/check_fig7_openloop.py /tmp/fig7_openloop.json

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/custom_service.py
	$(PY) examples/fault_injection_campaign.py 50
	$(PY) examples/webserver_demo.py 500
	$(PY) examples/embedded_sensor_logger.py
	$(PY) examples/latent_fault_monitor.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
