"""Ablation: operation log vs state-machine descriptor tracking.

Section II-C: "The straight-forward way to track the modifications made
to the descriptors maintains a log of operations.  However, as C^3
targets embedded systems, unbounded memory consumption for the log is
unacceptable.  Instead, C^3 encodes the state of a descriptor with a
state machine that contains a bounded amount of data."

This ablation compares the memory footprint of the two strategies as the
operation count grows: the log grows linearly; the state-machine encoding
stays constant per descriptor.
"""

import pytest

from repro.system import build_system


def _run_ops(n_ops):
    """Drive a lock descriptor through n_ops operations; return the stub
    tracking footprint (entries, meta words) and a hypothetical log size."""
    system = build_system(ft_mode="superglue")
    kernel = system.kernel
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub = system.stub("app0", "lock")
    lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
    log_entries = 1
    for __ in range(n_ops):
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        stub.invoke(kernel, thread, "lock_release", ("app0", lid))
        log_entries += 2
    entry = stub.table.lookup(lid)
    sm_words = 4 + len(entry.meta)  # cdesc, sid, state, epoch + meta
    return {"sm_words": sm_words, "log_words": log_entries * 3}


@pytest.mark.parametrize("n_ops", [4, 32, 128])
def test_ablation_log_vs_state_machine(benchmark, n_ops):
    footprint = benchmark.pedantic(
        lambda: _run_ops(n_ops), rounds=1, iterations=1
    )
    print(
        f"\nAblation tracking (n_ops={n_ops}): state-machine "
        f"{footprint['sm_words']} words (bounded) vs log "
        f"{footprint['log_words']} words (unbounded)"
    )
    benchmark.extra_info.update(n_ops=n_ops, **footprint)
    assert footprint["sm_words"] <= 12  # bounded regardless of history
    assert footprint["log_words"] >= n_ops  # linear in history


def test_ablation_sm_footprint_constant(benchmark):
    def run():
        return [_run_ops(n)["sm_words"] for n in (2, 16, 64)]

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(set(sizes)) == 1  # identical at every history length
