"""Table II: the SWIFI fault-injection campaign.

Per target service: inject N faults of one class (paper: 500 register
SEUs; default here 100 — set REPRO_CAMPAIGN_FAULTS=500 for the full run,
REPRO_CAMPAIGN_FAULT_CLASS to bench another class), classify each
outcome, and report the Table II columns.

Paper shape to match (register class): activation ratio 93.8-98.4%;
recovery success 88.6-96.1%; "not recovered (segfault)" the dominant
failure mode (Sched highest); propagation <=2 per 500; hangs/latent
faults rare.  The other classes assert their own shape: mem recoveries
are near-perfect (image restore repairs image corruption), idl is
fail-stop by construction (success pinned at ~0), burst recoveries are
rare (mid-recovery re-faults defeat replay).
"""

import pytest

from repro.idl_specs import SERVICES
from repro.swifi.campaign import CampaignRunner, format_table2

_RESULTS = {}

#: Per-class outcome-shape floors (activation, recovery success); bands
#: widened for the reduced default fault count.  ``success_max`` pins
#: the idl class's fail-stop story: interface contracts stop corrupted
#: values but cannot restore the caller's intent.
SHAPE = {
    "reg": {"activation_min": 0.70, "success_min": 0.75, "success_max": 1.0},
    "mem": {"activation_min": 0.15, "success_min": 0.85, "success_max": 1.0},
    "idl": {"activation_min": 0.40, "success_min": 0.00, "success_max": 0.10},
    "burst": {"activation_min": 0.80, "success_min": 0.05, "success_max": 1.0},
}


@pytest.mark.parametrize("service", SERVICES)
def test_table2_campaign(
    benchmark, service, campaign_faults, campaign_workers, campaign_fault_class
):
    def run():
        runner = CampaignRunner(
            service, ft_mode="superglue", n_faults=campaign_faults, seed=1,
            fault_class=campaign_fault_class,
        )
        return runner.run(workers=campaign_workers)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[service] = result
    row = result.row()
    print(
        f"\nTable2 {service:6s} class={row['fault_class']} "
        f"injected={row['injected']} "
        f"recovered={row['recovered']} "
        f"segf={row['not_recovered_segfault']} "
        f"prop={row['not_recovered_propagated']} "
        f"other={row['not_recovered_other']} "
        f"undetected={row['undetected']} "
        f"activation={row['activation_ratio']:.1%} "
        f"success={row['recovery_success_rate']:.1%}"
    )
    benchmark.extra_info.update(
        {k: (f"{v:.4f}" if isinstance(v, float) else v) for k, v in row.items()}
    )
    shape = SHAPE[campaign_fault_class]
    assert row["activation_ratio"] >= shape["activation_min"]
    assert shape["success_min"] <= row["recovery_success_rate"] <= shape["success_max"]
    assert row["not_recovered_propagated"] <= max(2, campaign_faults // 100)


def test_table2_full_table(benchmark, campaign_faults):
    """Render the whole table after the per-service campaigns ran."""

    def render():
        done = [_RESULTS[s] for s in SERVICES if s in _RESULTS]
        return format_table2(done) if done else ""

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    if table:
        print("\n" + table)
        print(
            "paper: activation 93.8-98.4%, success 88.6-96.1%, "
            "segfaults dominant failure, propagation <=2/500"
        )
