"""Table II: the SWIFI fault-injection campaign.

Per target service: inject N single-event upsets (paper: 500; default
here 100 — set REPRO_CAMPAIGN_FAULTS=500 for the full run), classify each
outcome, and report the Table II columns.

Paper shape to match: activation ratio 93.8-98.4%; recovery success
88.6-96.1%; "not recovered (segfault)" the dominant failure mode (Sched
highest); propagation <=2 per 500; hangs/latent faults rare.
"""

import pytest

from repro.idl_specs import SERVICES
from repro.swifi.campaign import CampaignRunner, format_table2

_RESULTS = {}


@pytest.mark.parametrize("service", SERVICES)
def test_table2_campaign(benchmark, service, campaign_faults, campaign_workers):
    def run():
        runner = CampaignRunner(
            service, ft_mode="superglue", n_faults=campaign_faults, seed=1
        )
        return runner.run(workers=campaign_workers)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[service] = result
    row = result.row()
    print(
        f"\nTable2 {service:6s} injected={row['injected']} "
        f"recovered={row['recovered']} "
        f"segf={row['not_recovered_segfault']} "
        f"prop={row['not_recovered_propagated']} "
        f"other={row['not_recovered_other']} "
        f"undetected={row['undetected']} "
        f"activation={row['activation_ratio']:.1%} "
        f"success={row['recovery_success_rate']:.1%}"
    )
    benchmark.extra_info.update(
        {k: (f"{v:.4f}" if isinstance(v, float) else v) for k, v in row.items()}
    )
    # Shape assertions (bands widened for the reduced default fault count).
    assert row["activation_ratio"] >= 0.70
    assert row["recovery_success_rate"] >= 0.75
    assert row["not_recovered_propagated"] <= max(2, campaign_faults // 100)


def test_table2_full_table(benchmark, campaign_faults):
    """Render the whole table after the per-service campaigns ran."""

    def render():
        done = [_RESULTS[s] for s in SERVICES if s in _RESULTS]
        return format_table2(done) if done else ""

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    if table:
        print("\n" + table)
        print(
            "paper: activation 93.8-98.4%, success 88.6-96.1%, "
            "segfaults dominant failure, propagation <=2/500"
        )
