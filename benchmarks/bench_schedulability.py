"""Predictability: static recovery bounds vs measured recovery costs.

C^3/SuperGlue recovery is *predictable* (Section I; [7] gives the hard
real-time schedulability analysis).  This bench computes the compile-time
worst-case per-descriptor recovery bound for every service and checks the
measured costs stay under it.
"""

import pytest

from repro.analysis import measure_recovery_overhead
from repro.analysis.schedulability import (
    descriptor_walk_bound,
    worst_case_state,
)
from repro.idl_specs import SERVICES
from repro.system import compile_all_interfaces


@pytest.mark.parametrize("service", SERVICES)
def test_schedulability_bound(benchmark, service):
    compiled = compile_all_interfaces()[service]
    rows = {}

    def run():
        state = worst_case_state(compiled.ir)
        rows["bound"] = descriptor_walk_bound(compiled.ir, state)
        rows["measured"] = measure_recovery_overhead(
            service, "superglue", runs=20
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    bound = rows["bound"]
    measured = rows["measured"]
    print(
        f"\nSched-bound {service:6s} walk={bound.walk} "
        f"bound={bound.us:.2f} us  measured={measured['mean_us']:.2f} us"
    )
    benchmark.extra_info.update(
        service=service,
        bound_us=f"{bound.us:.3f}",
        measured_us=f"{measured['mean_us']:.3f}",
    )
    if measured["samples"]:
        assert measured["mean_us"] <= bound.us
