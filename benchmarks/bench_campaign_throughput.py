#!/usr/bin/env python3
"""Campaign throughput benchmark: SWIFI runs/sec, pooled vs fresh-build.

Two measurements:

* **campaign runs/sec** — the lock-service smoke campaign executed four
  times through the real per-run driver (``_drive_run``): with
  ``REPRO_SYSTEM_POOL=0`` (the old build-a-system-per-run behaviour),
  pooled with the super-trace engine disabled (``REPRO_SUPER_TRACE=0``,
  the two-tier engine), pooled with prefix super-traces on but the
  divergence-tail cache off (``REPRO_TAIL_REPLAY=0``), and the full
  tier-3 engine with tail replay (``REPRO_TAIL_REPLAY=1``), which also
  reports the replayed-unit coverage the tail cache reaches.  Outcomes
  are asserted identical across all four sweeps — the speedups are only
  meaningful if the faster paths are bit-exact.
* **micro-reboot restore cost** — wall time of one ``MemoryImage``
  restore when a run dirtied a handful of pages (the SWIFI steady state)
  versus every page (the worst case, equivalent to the old whole-image
  memcpy).

Standalone: ``python benchmarks/bench_campaign_throughput.py --json out.json``.
``scripts/check_campaign_baseline.py`` gates CI on the committed baseline
in ``benchmarks/baselines/campaign_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.composite.memory import PAGE_WORDS, MemoryImage  # noqa: E402
from repro.swifi.campaign import (  # noqa: E402
    COVERAGE_KEYS, CampaignRunner, _drive_run, collect_coverage,
    coverage_ratio,
)
from repro.system import GLOBAL_POOL  # noqa: E402

BASE = 0x0100_0000


def _timed_sweep(spec, seeds, coverage=None) -> tuple:
    """Execute every seed serially in-process; returns (elapsed, outcomes).

    ``coverage`` (a dict of supertrace counters) is folded per run when
    given — the collection itself is inside the timed region, exactly as
    the campaign runner pays it.
    """
    start = time.perf_counter()
    outcomes = []
    for seed in seeds:
        outcome, system, __, __, __ = _drive_run(spec, seed)
        outcomes.append(outcome.value)
        if coverage is not None:
            collect_coverage(system.kernel, coverage)
    return time.perf_counter() - start, outcomes


#: (label, REPRO_SYSTEM_POOL, REPRO_SUPER_TRACE, REPRO_TAIL_REPLAY) per sweep.
SWEEPS = (
    ("fresh", "0", "0", "0"),
    ("two_tier", "1", "0", "0"),
    ("pooled", "1", "1", "0"),
    ("tail", "1", "1", "1"),
)

_SWEEP_GATES = ("REPRO_SYSTEM_POOL", "REPRO_SUPER_TRACE", "REPRO_TAIL_REPLAY")


def measure_campaign(n_faults: int, repeat: int = 3) -> dict:
    """Runs/sec of the smoke campaign: fresh vs pooled vs super-traced
    vs tail-replayed."""
    from repro.swifi.campaign import _campaign_recording

    runner = CampaignRunner("lock", n_faults=n_faults, seed=1)
    spec = runner.spec()
    seeds = runner.run_seeds()
    saved = {key: os.environ.get(key) for key in _SWEEP_GATES}
    try:
        results = {}
        coverage = None
        for label, pool_gate, st_gate, tail_gate in SWEEPS:
            os.environ["REPRO_SYSTEM_POOL"] = pool_gate
            os.environ["REPRO_SUPER_TRACE"] = st_gate
            os.environ["REPRO_TAIL_REPLAY"] = tail_gate
            if pool_gate == "1":
                # Boot + seal (and, with super-traces on, record the
                # clean invocation sequence) outside the timed region,
                # as the campaign worker initializer does.
                GLOBAL_POOL.acquire(
                    ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
                )
                if st_gate == "1":
                    _campaign_recording(spec)
            best, outcomes = float("inf"), None
            for __ in range(repeat):
                sweep_coverage = (
                    dict.fromkeys(COVERAGE_KEYS, 0)
                    if tail_gate == "1" else None
                )
                elapsed, sweep = _timed_sweep(spec, seeds, sweep_coverage)
                best = min(best, elapsed)
                if tail_gate == "1":
                    # Keep the first repeat's coverage: the tail cache
                    # warms across repeats (later repeats replay tails
                    # the first one recorded), and the cold pass is the
                    # honest campaign-shaped number.
                    coverage = coverage or sweep_coverage
                if outcomes is None:
                    outcomes = sweep
                elif sweep != outcomes:
                    raise AssertionError(
                        f"{label} sweep outcomes changed between repeats"
                    )
            results[label] = (best, outcomes)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    fresh_time, fresh_outcomes = results["fresh"]
    for label in ("two_tier", "pooled", "tail"):
        if results[label][1] != fresh_outcomes:
            raise AssertionError(
                f"{label} sweep outcomes diverge from fresh-build "
                f"outcomes; the fast path is not bit-exact — do not "
                f"trust the speedup"
            )
    two_tier_time = results["two_tier"][0]
    pooled_time = results["pooled"][0]
    tail_time = results["tail"][0]
    return {
        "campaign_runs": len(seeds),
        "fresh_runs_per_sec": len(seeds) / fresh_time,
        "two_tier_runs_per_sec": len(seeds) / two_tier_time,
        "pooled_runs_per_sec": len(seeds) / pooled_time,
        "tail_runs_per_sec": len(seeds) / tail_time,
        "pooled_over_fresh": fresh_time / pooled_time,
        "super_trace_over_two_tier": two_tier_time / pooled_time,
        "replayed_unit_coverage": coverage_ratio(coverage),
    }


def measure_restore(repeat: int = 200) -> dict:
    """Wall cost of one image restore: sparse dirtiness vs every page."""
    image = MemoryImage(BASE)
    addr = image.alloc(8)
    image.freeze_good_image()
    n_pages = len(image._dirty)

    def time_restores(dirty_pages: int) -> float:
        best = float("inf")
        for __ in range(repeat):
            for page in range(dirty_pages):
                image.write_word(
                    image.base + page * PAGE_WORDS + (addr % PAGE_WORDS), 0xD1
                )
            start = time.perf_counter()
            image.restore()
            best = min(best, time.perf_counter() - start)
        return best

    sparse = time_restores(4)       # a SWIFI run's typical footprint
    full = time_restores(n_pages)   # the old whole-image behaviour
    return {
        "image_pages": n_pages,
        "restore_sparse_us": sparse * 1e6,
        "restore_full_us": full * 1e6,
        "restore_full_over_sparse": full / sparse,
    }


def run_benchmark(n_faults: int, repeat: int) -> dict:
    return {
        **measure_campaign(n_faults, repeat=repeat),
        **measure_restore(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--faults", type=int, default=50,
                        help="injection runs per sweep (lock service)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.faults, args.repeat = 30, 2

    results = run_benchmark(args.faults, args.repeat)
    print(f"campaign runs/sweep    : {results['campaign_runs']}")
    print(f"fresh-build runs/sec   : {results['fresh_runs_per_sec']:,.0f}")
    print(f"two-tier pooled r/s    : {results['two_tier_runs_per_sec']:,.0f}")
    print(f"super-traced runs/sec  : {results['pooled_runs_per_sec']:,.0f}")
    print(f"tail-replay runs/sec   : {results['tail_runs_per_sec']:,.0f}")
    print(f"pooled/fresh speedup   : {results['pooled_over_fresh']:.2f}x")
    print(f"super-trace/two-tier   : "
          f"{results['super_trace_over_two_tier']:.2f}x")
    print(f"replayed-unit coverage : "
          f"{results['replayed_unit_coverage']:.1%}")
    print(f"restore, sparse dirty  : {results['restore_sparse_us']:,.1f} us")
    print(f"restore, all pages     : {results['restore_full_us']:,.1f} us")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
