#!/usr/bin/env python3
"""Campaign throughput benchmark: SWIFI runs/sec, pooled vs fresh-build.

Two measurements:

* **campaign runs/sec** — the lock-service smoke campaign executed twice
  through the real per-run entry point (``execute_run``): once with the
  system pool enabled (boot once, dirty-restore per run) and once with
  ``REPRO_SYSTEM_POOL=0`` (the old build-a-system-per-run behaviour).
  Outcomes are asserted identical between the two sweeps — the speedup
  is only meaningful if the pooled path is bit-exact.
* **micro-reboot restore cost** — wall time of one ``MemoryImage``
  restore when a run dirtied a handful of pages (the SWIFI steady state)
  versus every page (the worst case, equivalent to the old whole-image
  memcpy).

Standalone: ``python benchmarks/bench_campaign_throughput.py --json out.json``.
``scripts/check_campaign_baseline.py`` gates CI on the committed baseline
in ``benchmarks/baselines/campaign_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.composite.memory import PAGE_WORDS, MemoryImage  # noqa: E402
from repro.swifi.campaign import CampaignRunner, execute_run  # noqa: E402
from repro.system import GLOBAL_POOL  # noqa: E402

BASE = 0x0100_0000


def _timed_sweep(spec, seeds) -> tuple:
    """Execute every seed serially in-process; returns (elapsed, outcomes)."""
    start = time.perf_counter()
    outcomes = [execute_run(spec, seed).value for seed in seeds]
    return time.perf_counter() - start, outcomes


def measure_campaign(n_faults: int, repeat: int = 3) -> dict:
    """Runs/sec of the smoke campaign, pooled vs fresh-build-per-run."""
    runner = CampaignRunner("lock", n_faults=n_faults, seed=1)
    spec = runner.spec()
    seeds = runner.run_seeds()
    saved = os.environ.get("REPRO_SYSTEM_POOL")
    try:
        results = {}
        for label, gate in (("fresh", "0"), ("pooled", "1")):
            os.environ["REPRO_SYSTEM_POOL"] = gate
            if gate == "1":
                # Boot + seal outside the timed region, as the campaign
                # worker initializer does.
                GLOBAL_POOL.acquire(
                    ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
                )
            best, outcomes = float("inf"), None
            for __ in range(repeat):
                elapsed, sweep = _timed_sweep(spec, seeds)
                best = min(best, elapsed)
                if outcomes is None:
                    outcomes = sweep
                elif sweep != outcomes:
                    raise AssertionError(
                        f"{label} sweep outcomes changed between repeats"
                    )
            results[label] = (best, outcomes)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SYSTEM_POOL", None)
        else:
            os.environ["REPRO_SYSTEM_POOL"] = saved
    fresh_time, fresh_outcomes = results["fresh"]
    pooled_time, pooled_outcomes = results["pooled"]
    if pooled_outcomes != fresh_outcomes:
        raise AssertionError(
            "pooled sweep outcomes diverge from fresh-build outcomes; "
            "the pool is not bit-exact — do not trust the speedup"
        )
    return {
        "campaign_runs": len(seeds),
        "fresh_runs_per_sec": len(seeds) / fresh_time,
        "pooled_runs_per_sec": len(seeds) / pooled_time,
        "pooled_over_fresh": fresh_time / pooled_time,
    }


def measure_restore(repeat: int = 200) -> dict:
    """Wall cost of one image restore: sparse dirtiness vs every page."""
    image = MemoryImage(BASE)
    addr = image.alloc(8)
    image.freeze_good_image()
    n_pages = len(image._dirty)

    def time_restores(dirty_pages: int) -> float:
        best = float("inf")
        for __ in range(repeat):
            for page in range(dirty_pages):
                image.write_word(
                    image.base + page * PAGE_WORDS + (addr % PAGE_WORDS), 0xD1
                )
            start = time.perf_counter()
            image.restore()
            best = min(best, time.perf_counter() - start)
        return best

    sparse = time_restores(4)       # a SWIFI run's typical footprint
    full = time_restores(n_pages)   # the old whole-image behaviour
    return {
        "image_pages": n_pages,
        "restore_sparse_us": sparse * 1e6,
        "restore_full_us": full * 1e6,
        "restore_full_over_sparse": full / sparse,
    }


def run_benchmark(n_faults: int, repeat: int) -> dict:
    return {
        **measure_campaign(n_faults, repeat=repeat),
        **measure_restore(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--faults", type=int, default=50,
                        help="injection runs per sweep (lock service)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.faults, args.repeat = 30, 2

    results = run_benchmark(args.faults, args.repeat)
    print(f"campaign runs/sweep    : {results['campaign_runs']}")
    print(f"fresh-build runs/sec   : {results['fresh_runs_per_sec']:,.0f}")
    print(f"pooled runs/sec        : {results['pooled_runs_per_sec']:,.0f}")
    print(f"pooled/fresh speedup   : {results['pooled_over_fresh']:.2f}x")
    print(f"restore, sparse dirty  : {results['restore_sparse_us']:,.1f} us")
    print(f"restore, all pages     : {results['restore_full_us']:,.1f} us")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
