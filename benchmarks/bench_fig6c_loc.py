"""Fig. 6(c): lines of recovery code — IDL vs generated vs hand-written.

Per system component: the SuperGlue IDL specification's LOC, the LOC the
compiler generates from it, and the hand-written C^3 stub module's LOC.
Paper result: ~32-37 LOC of declarative IDL replaces hand-written stubs
of hundreds of lines (an order-of-magnitude reduction in code the
developer writes and maintains).
"""

from repro.analysis.loc import format_loc_table, loc_table
from repro.idl_specs import SERVICES
from repro.system import compile_all_interfaces


def test_fig6c_loc_table(benchmark):
    table = {}

    def run():
        compile_all_interfaces(force=True)  # time the actual compilation
        table.update(loc_table())
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_loc_table(table))
    for service in SERVICES:
        row = table[service]
        benchmark.extra_info[f"{service}_idl"] = row["idl_loc"]
        benchmark.extra_info[f"{service}_generated"] = row["generated_loc"]
        benchmark.extra_info[f"{service}_c3"] = row["c3_loc"]
        # Paper shape: IDL much smaller than the hand-written stubs it
        # replaces; the compiler expands the spec several-fold.
        assert row["idl_loc"] * 3 < row["c3_loc"]
        assert row["generated_loc"] >= row["idl_loc"] * 2


def test_fig6c_average_idl_size(benchmark):
    """The paper: "The average SuperGlue IDL file ... is 37 lines"."""
    table = benchmark.pedantic(loc_table, rounds=1, iterations=1)
    average = sum(r["idl_loc"] for r in table.values()) / len(table)
    print(f"\naverage IDL LOC: {average:.1f} (paper: 37)")
    benchmark.extra_info["average_idl_loc"] = average
    assert 15 <= average <= 50
