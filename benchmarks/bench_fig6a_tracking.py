"""Fig. 6(a): infrastructure overhead with descriptor state tracking (us).

For each of the six system components, measures the per-operation cost of
the client-side descriptor tracking, comparing SuperGlue-generated stubs
with the hand-written C^3 stubs.  Paper result: SuperGlue has a similar
amount of overhead as C^3 (microsecond scale per tracked operation).
"""

import pytest

from repro.analysis import measure_tracking_overhead
from repro.idl_specs import SERVICES


@pytest.mark.parametrize("service", SERVICES)
def test_fig6a_tracking_overhead(benchmark, service):
    rows = {}

    def run():
        for mode in ("c3", "superglue"):
            rows[mode] = measure_tracking_overhead(service, mode, iterations=6)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    sg = rows["superglue"]
    c3 = rows["c3"]
    print(
        f"\nFig6a {service:6s}  "
        f"SuperGlue {sg['per_op_us']:.3f} us/op ({sg['tracked_ops']} ops)   "
        f"C^3 {c3['per_op_us']:.3f} us/op ({c3['tracked_ops']} ops)"
    )
    benchmark.extra_info.update(
        service=service,
        superglue_per_op_us=sg["per_op_us"],
        c3_per_op_us=c3["per_op_us"],
    )
    # Paper shape: the two systems' tracking overheads are similar.
    assert sg["per_op_us"] > 0 and c3["per_op_us"] > 0
    assert 0.4 < sg["per_op_us"] / c3["per_op_us"] < 2.5
