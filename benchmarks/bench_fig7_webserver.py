"""Fig. 7: web-server throughput across fault-tolerance configurations.

Five bars, as in the paper: Apache (modelled), COMPOSITE base, COMPOSITE
with C^3, COMPOSITE with SuperGlue, and COMPOSITE with SuperGlue under
periodic fault injection.  Paper numbers: ~17600 / ~16200 / ~14500
(-10.5%) / ~14281 (-11.84%) requests/s, and ~13.6% slowdown with faults;
throughput recovers within ~2 s of each fault.  Absolute simulated
numbers differ (virtual time); the *relative* shape is the target.
"""

import pytest

from repro.webserver.apache_model import ApacheModel
from repro.webserver.loadgen import run_webserver

_RPS = {}


def test_fig7_apache_baseline(benchmark, ws_requests):
    rps = benchmark.pedantic(
        lambda: ApacheModel().throughput_rps(ws_requests), rounds=1, iterations=1
    )
    _RPS["apache"] = rps
    print(f"\nFig7 apache      {rps:>12,.0f} req/s (modelled)")
    benchmark.extra_info["rps"] = rps


@pytest.mark.parametrize("mode", ["none", "c3", "superglue"])
def test_fig7_composite_modes(benchmark, mode, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(ft_mode=mode, n_requests=ws_requests),
        rounds=1,
        iterations=1,
    )
    _RPS[mode] = result.throughput_rps
    assert result.served == ws_requests
    assert result.errors == 0
    print(f"\nFig7 {mode:10s} {result.throughput_rps:>12,.0f} req/s")
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["mode"] = mode


def test_fig7_superglue_with_faults(benchmark, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(
            ft_mode="superglue", n_requests=ws_requests,
            with_faults=True, seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    _RPS["superglue_faults"] = result.throughput_rps
    assert result.served == ws_requests
    assert result.reboots >= 1
    print(
        f"\nFig7 sg+faults   {result.throughput_rps:>12,.0f} req/s "
        f"({result.faults_injected} faults, {result.reboots} reboots)"
    )
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["reboots"] = result.reboots


def test_fig7_shape(benchmark):
    """Verify the relative ordering and slowdown factors of Fig. 7."""

    def compute():
        base = _RPS["none"]
        return {
            "apache_over_base": _RPS["apache"] / base,
            "c3_slowdown": 1 - _RPS["c3"] / base,
            "superglue_slowdown": 1 - _RPS["superglue"] / base,
            "faulted_slowdown": 1 - _RPS["superglue_faults"] / base,
        }

    shape = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(
        f"\nFig7 shape: apache/base={shape['apache_over_base']:.3f} "
        f"(paper 1.086)  c3={shape['c3_slowdown']:.1%} (paper 10.5%)  "
        f"superglue={shape['superglue_slowdown']:.1%} (paper 11.84%)  "
        f"with faults={shape['faulted_slowdown']:.1%} (paper 13.6%)"
    )
    for key, value in shape.items():
        benchmark.extra_info[key] = f"{value:.4f}"
    assert shape["apache_over_base"] > 1.0
    assert 0.05 < shape["c3_slowdown"] < 0.18
    assert shape["c3_slowdown"] < shape["superglue_slowdown"] < 0.20
    assert shape["faulted_slowdown"] >= shape["superglue_slowdown"] - 0.01
