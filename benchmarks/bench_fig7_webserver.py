"""Fig. 7: web-server throughput across fault-tolerance configurations.

Five bars, as in the paper: Apache (modelled), COMPOSITE base, COMPOSITE
with C^3, COMPOSITE with SuperGlue, and COMPOSITE with SuperGlue under
periodic fault injection.  Paper numbers: ~17600 / ~16200 / ~14500
(-10.5%) / ~14281 (-11.84%) requests/s, and ~13.6% slowdown with faults;
throughput recovers within ~2 s of each fault.  Absolute simulated
numbers differ (virtual time); the *relative* shape is the target.

Standalone mode (``python benchmarks/bench_fig7_webserver.py --json
out.json``) measures the *campaign engine* instead: wall-clock runs/sec
of a multi-seed faulted web-server sweep through ``execute_web_run``,
pooled vs fresh-build-per-seed, with rows asserted identical between the
two.  ``scripts/check_fig7_baseline.py`` gates CI on the committed
baseline in ``benchmarks/baselines/fig7_webserver.json``.  The sweep
uses deliberately short runs (a few dozen requests): per-run fixed costs
— system boot, trace-cache and fast-path warmup — are what pooling
amortizes, and long request streams would bury them in steady-state
serving time that pooling cannot (and should not) change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest  # noqa: E402

from repro.system import GLOBAL_POOL, compile_all_interfaces  # noqa: E402
from repro.webserver.apache_model import ApacheModel  # noqa: E402
from repro.webserver.campaign import (  # noqa: E402
    WebRunSpec,
    execute_web_run,
    prepare_webserver,
    web_run_seeds,
)
from repro.webserver.loadgen import run_webserver  # noqa: E402

_RPS = {}


def test_fig7_apache_baseline(benchmark, ws_requests):
    rps = benchmark.pedantic(
        lambda: ApacheModel().throughput_rps(ws_requests), rounds=1, iterations=1
    )
    _RPS["apache"] = rps
    print(f"\nFig7 apache      {rps:>12,.0f} req/s (modelled)")
    benchmark.extra_info["rps"] = rps


@pytest.mark.parametrize("mode", ["none", "c3", "superglue"])
def test_fig7_composite_modes(benchmark, mode, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(ft_mode=mode, n_requests=ws_requests),
        rounds=1,
        iterations=1,
    )
    _RPS[mode] = result.throughput_rps
    assert result.served == ws_requests
    assert result.errors == 0
    print(f"\nFig7 {mode:10s} {result.throughput_rps:>12,.0f} req/s")
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["mode"] = mode


def test_fig7_superglue_with_faults(benchmark, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(
            ft_mode="superglue", n_requests=ws_requests,
            with_faults=True, seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    _RPS["superglue_faults"] = result.throughput_rps
    assert result.served == ws_requests
    assert result.reboots >= 1
    print(
        f"\nFig7 sg+faults   {result.throughput_rps:>12,.0f} req/s "
        f"({result.faults_injected} faults, {result.reboots} reboots)"
    )
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["reboots"] = result.reboots


def test_fig7_shape(benchmark):
    """Verify the relative ordering and slowdown factors of Fig. 7."""

    def compute():
        base = _RPS["none"]
        return {
            "apache_over_base": _RPS["apache"] / base,
            "c3_slowdown": 1 - _RPS["c3"] / base,
            "superglue_slowdown": 1 - _RPS["superglue"] / base,
            "faulted_slowdown": 1 - _RPS["superglue_faults"] / base,
        }

    shape = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(
        f"\nFig7 shape: apache/base={shape['apache_over_base']:.3f} "
        f"(paper 1.086)  c3={shape['c3_slowdown']:.1%} (paper 10.5%)  "
        f"superglue={shape['superglue_slowdown']:.1%} (paper 11.84%)  "
        f"with faults={shape['faulted_slowdown']:.1%} (paper 13.6%)"
    )
    for key, value in shape.items():
        benchmark.extra_info[key] = f"{value:.4f}"
    assert shape["apache_over_base"] > 1.0
    assert 0.05 < shape["c3_slowdown"] < 0.18
    assert shape["c3_slowdown"] < shape["superglue_slowdown"] < 0.20
    assert shape["faulted_slowdown"] >= shape["superglue_slowdown"] - 0.01


# ---------------------------------------------------------------------------
# Standalone campaign-throughput benchmark (pooled vs fresh per seed)
# ---------------------------------------------------------------------------

def _timed_sweep(spec: WebRunSpec, seeds) -> tuple:
    """Execute every seed serially in-process; returns (elapsed, rows)."""
    start = time.perf_counter()
    rows = [execute_web_run(spec, seed) for seed in seeds]
    return time.perf_counter() - start, rows


def measure_web_campaign(n_seeds: int, repeat: int = 3) -> dict:
    """Web-campaign runs/sec, pooled vs fresh-build-per-seed.

    Short probe runs (40 requests, 2 faults) keep per-run fixed costs —
    the thing pooling removes — visible against serving time.  Rows are
    asserted identical across the two sweeps: the speedup is only
    meaningful if the pooled path is bit-exact.
    """
    spec = WebRunSpec(n_requests=40, n_faults=2)
    seeds = web_run_seeds(1, n_seeds)
    compile_all_interfaces()  # both sweeps start with warm IDL compiles
    saved = os.environ.get("REPRO_SYSTEM_POOL")
    try:
        results = {}
        for label, gate in (("fresh", "0"), ("pooled", "1")):
            os.environ["REPRO_SYSTEM_POOL"] = gate
            if gate == "1":
                # Boot + seal outside the timed region, as the campaign
                # worker initializer does.
                GLOBAL_POOL.acquire(
                    ft_mode=spec.ft_mode,
                    recovery_mode=spec.recovery_mode,
                    prepare=prepare_webserver,
                )
            best, rows = float("inf"), None
            for __ in range(repeat):
                elapsed, sweep = _timed_sweep(spec, seeds)
                best = min(best, elapsed)
                if rows is None:
                    rows = sweep
                elif sweep != rows:
                    raise AssertionError(
                        f"{label} sweep rows changed between repeats"
                    )
            results[label] = (best, rows)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SYSTEM_POOL", None)
        else:
            os.environ["REPRO_SYSTEM_POOL"] = saved
    fresh_time, fresh_rows = results["fresh"]
    pooled_time, pooled_rows = results["pooled"]
    if pooled_rows != fresh_rows:
        raise AssertionError(
            "pooled sweep rows diverge from fresh-build rows; the pool "
            "is not bit-exact — do not trust the speedup"
        )
    served = sum(row["served"] for row in fresh_rows)
    return {
        "campaign_runs": len(seeds),
        "requests_served": served,
        "fresh_runs_per_sec": len(seeds) / fresh_time,
        "pooled_runs_per_sec": len(seeds) / pooled_time,
        "pooled_over_fresh": fresh_time / pooled_time,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=30,
                        help="faulted web-server runs per sweep")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.seeds, args.repeat = 15, 2

    results = measure_web_campaign(args.seeds, repeat=args.repeat)
    print(f"campaign runs/sweep    : {results['campaign_runs']}")
    print(f"requests served/sweep  : {results['requests_served']}")
    print(f"fresh-build runs/sec   : {results['fresh_runs_per_sec']:,.1f}")
    print(f"pooled runs/sec        : {results['pooled_runs_per_sec']:,.1f}")
    print(f"pooled/fresh speedup   : {results['pooled_over_fresh']:.2f}x")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
