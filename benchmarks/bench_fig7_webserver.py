"""Fig. 7: web-server throughput across fault-tolerance configurations.

Five bars, as in the paper: Apache (modelled), COMPOSITE base, COMPOSITE
with C^3, COMPOSITE with SuperGlue, and COMPOSITE with SuperGlue under
periodic fault injection.  Paper numbers: ~17600 / ~16200 / ~14500
(-10.5%) / ~14281 (-11.84%) requests/s, and ~13.6% slowdown with faults;
throughput recovers within ~2 s of each fault.  Absolute simulated
numbers differ (virtual time); the *relative* shape is the target.

Standalone mode (``python benchmarks/bench_fig7_webserver.py --json
out.json``) measures the *campaign engine* instead: wall-clock runs/sec
of a multi-seed faulted web-server sweep through ``execute_web_run``,
pooled vs fresh-build-per-seed, with rows asserted identical between the
two.  ``scripts/check_fig7_baseline.py`` gates CI on the committed
baseline in ``benchmarks/baselines/fig7_webserver.json``.  The sweep
uses deliberately short runs (a few dozen requests): per-run fixed costs
— system boot, trace-cache and fast-path warmup — are what pooling
amortizes, and long request streams would bury them in steady-state
serving time that pooling cannot (and should not) change.

Open-loop mode (``--openloop --json out.json``) sweeps offered load
against goodput and tail latency: the same heavy-tailed burst arrival
schedule replayed at multipliers of the service's estimated capacity,
with SWIFI faults injected mid-stream at every point.  Unlike the
wall-clock gates above, every number here is a virtual-time outcome —
a pure function of (spec, seed) — so ``scripts/check_fig7_openloop.py``
compares the committed baseline in
``benchmarks/baselines/fig7_openloop.json`` exactly (integers) or to a
last-ulp epsilon (floats).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest  # noqa: E402

from repro.composite.scheduler import CYCLES_PER_US  # noqa: E402
from repro.system import GLOBAL_POOL, compile_all_interfaces  # noqa: E402
from repro.webserver.apache_model import ApacheModel  # noqa: E402
from repro.webserver.arrivals import offered_rps  # noqa: E402
from repro.webserver.campaign import (  # noqa: E402
    WebRunSpec,
    aggregate_rows,
    execute_web_run,
    prepare_webserver,
    web_run_seeds,
)
from repro.webserver.loadgen import run_webserver  # noqa: E402

_RPS = {}


def test_fig7_apache_baseline(benchmark, ws_requests):
    rps = benchmark.pedantic(
        lambda: ApacheModel().throughput_rps(ws_requests), rounds=1, iterations=1
    )
    _RPS["apache"] = rps
    print(f"\nFig7 apache      {rps:>12,.0f} req/s (modelled)")
    benchmark.extra_info["rps"] = rps


@pytest.mark.parametrize("mode", ["none", "c3", "superglue"])
def test_fig7_composite_modes(benchmark, mode, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(ft_mode=mode, n_requests=ws_requests),
        rounds=1,
        iterations=1,
    )
    _RPS[mode] = result.throughput_rps
    assert result.served == ws_requests
    assert result.errors == 0
    print(f"\nFig7 {mode:10s} {result.throughput_rps:>12,.0f} req/s")
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["mode"] = mode


def test_fig7_superglue_with_faults(benchmark, ws_requests):
    result = benchmark.pedantic(
        lambda: run_webserver(
            ft_mode="superglue", n_requests=ws_requests,
            with_faults=True, seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    _RPS["superglue_faults"] = result.throughput_rps
    assert result.served == ws_requests
    assert result.reboots >= 1
    print(
        f"\nFig7 sg+faults   {result.throughput_rps:>12,.0f} req/s "
        f"({result.faults_injected} faults, {result.reboots} reboots)"
    )
    benchmark.extra_info["rps"] = result.throughput_rps
    benchmark.extra_info["reboots"] = result.reboots


def test_fig7_shape(benchmark):
    """Verify the relative ordering and slowdown factors of Fig. 7."""

    def compute():
        base = _RPS["none"]
        return {
            "apache_over_base": _RPS["apache"] / base,
            "c3_slowdown": 1 - _RPS["c3"] / base,
            "superglue_slowdown": 1 - _RPS["superglue"] / base,
            "faulted_slowdown": 1 - _RPS["superglue_faults"] / base,
        }

    shape = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(
        f"\nFig7 shape: apache/base={shape['apache_over_base']:.3f} "
        f"(paper 1.086)  c3={shape['c3_slowdown']:.1%} (paper 10.5%)  "
        f"superglue={shape['superglue_slowdown']:.1%} (paper 11.84%)  "
        f"with faults={shape['faulted_slowdown']:.1%} (paper 13.6%)"
    )
    for key, value in shape.items():
        benchmark.extra_info[key] = f"{value:.4f}"
    assert shape["apache_over_base"] > 1.0
    assert 0.05 < shape["c3_slowdown"] < 0.18
    assert shape["c3_slowdown"] < shape["superglue_slowdown"] < 0.20
    assert shape["faulted_slowdown"] >= shape["superglue_slowdown"] - 0.01


# ---------------------------------------------------------------------------
# Standalone campaign-throughput benchmark (pooled vs fresh per seed)
# ---------------------------------------------------------------------------

def _timed_sweep(spec: WebRunSpec, seeds) -> tuple:
    """Execute every seed serially in-process; returns (elapsed, rows)."""
    start = time.perf_counter()
    rows = [execute_web_run(spec, seed) for seed in seeds]
    return time.perf_counter() - start, rows


def measure_web_campaign(n_seeds: int, repeat: int = 3) -> dict:
    """Web-campaign runs/sec, pooled vs fresh-build-per-seed.

    Short probe runs (40 requests, 2 faults) keep per-run fixed costs —
    the thing pooling removes — visible against serving time.  Rows are
    asserted identical across the two sweeps: the speedup is only
    meaningful if the pooled path is bit-exact.
    """
    spec = WebRunSpec(n_requests=40, n_faults=2)
    seeds = web_run_seeds(1, n_seeds)
    compile_all_interfaces()  # both sweeps start with warm IDL compiles
    saved = os.environ.get("REPRO_SYSTEM_POOL")
    try:
        results = {}
        for label, gate in (("fresh", "0"), ("pooled", "1")):
            os.environ["REPRO_SYSTEM_POOL"] = gate
            if gate == "1":
                # Boot + seal outside the timed region, as the campaign
                # worker initializer does.
                GLOBAL_POOL.acquire(
                    ft_mode=spec.ft_mode,
                    recovery_mode=spec.recovery_mode,
                    prepare=prepare_webserver,
                )
            best, rows = float("inf"), None
            for __ in range(repeat):
                elapsed, sweep = _timed_sweep(spec, seeds)
                best = min(best, elapsed)
                if rows is None:
                    rows = sweep
                elif sweep != rows:
                    raise AssertionError(
                        f"{label} sweep rows changed between repeats"
                    )
            results[label] = (best, rows)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SYSTEM_POOL", None)
        else:
            os.environ["REPRO_SYSTEM_POOL"] = saved
    fresh_time, fresh_rows = results["fresh"]
    pooled_time, pooled_rows = results["pooled"]
    if pooled_rows != fresh_rows:
        raise AssertionError(
            "pooled sweep rows diverge from fresh-build rows; the pool "
            "is not bit-exact — do not trust the speedup"
        )
    served = sum(row["served"] for row in fresh_rows)
    return {
        "campaign_runs": len(seeds),
        "requests_served": served,
        "fresh_runs_per_sec": len(seeds) / fresh_time,
        "pooled_runs_per_sec": len(seeds) / pooled_time,
        "pooled_over_fresh": fresh_time / pooled_time,
    }


# ---------------------------------------------------------------------------
# Open-loop offered-load sweep (goodput / tail latency under faults)
# ---------------------------------------------------------------------------

#: Load multipliers swept by ``--openloop``: comfortable underload, the
#: calibrated knee, and two overload points where the queue grows without
#: bound for the duration of the stream.
OPENLOOP_LOADS = (0.5, 1.0, 1.5, 2.0)


def measure_openloop_sweep(n_seeds: int = 4, n_requests: int = 120) -> dict:
    """Offered load vs goodput / p99 / p999 with faults at every point.

    The same heavy-tailed burst schedule replayed at each multiplier of
    the estimated service capacity, ``n_seeds`` SWIFI seeds per point
    (two register faults each, armed mid-stream).  Rows execute serially
    in-process; aggregates are order-independent merges, so the artifact
    is the same one a parallel campaign would emit.  No wall clock
    anywhere: every value is deterministic given the spec.
    """
    seeds = web_run_seeds(1, n_seeds)
    points = []
    for load in OPENLOOP_LOADS:
        spec = WebRunSpec(
            n_requests=n_requests, n_faults=2, arrivals="open",
            load=load, phases="burst", slo_us=500,
        )
        schedule = spec.arrival_spec().build(("index.html",))
        rows = [execute_web_run(spec, seed) for seed in seeds]
        agg = aggregate_rows(spec, rows)
        points.append({
            "load": load,
            "fingerprint": spec.fingerprint(),
            "offered_rps": offered_rps(schedule, CYCLES_PER_US),
            "requests": agg["requests"],
            "served": agg["served"],
            "errors": agg["errors"],
            "outcomes": agg["outcomes"],
            "reboots": agg["reboots"],
            "faults_armed": agg["faults_armed"],
            "faults_delivered": agg["faults_delivered"],
            "slo_ok": agg["slo_ok"],
            "slo_miss": agg["slo_miss"],
            "peak_outstanding": agg["peak_outstanding"],
            "throughput_rps": agg["throughput_rps"],
            "goodput_rps": agg["goodput_rps"],
            "latency_p50_cycles": agg["latency_p50_cycles"],
            "latency_p95_cycles": agg["latency_p95_cycles"],
            "latency_p99_cycles": agg["latency_p99_cycles"],
            "latency_p999_cycles": agg["latency_p999_cycles"],
        })
    return {
        "params": {
            "n_seeds": n_seeds,
            "n_requests": n_requests,
            "n_faults": 2,
            "phases": "burst",
            "slo_us": 500,
            "loads": list(OPENLOOP_LOADS),
        },
        "points": points,
    }


def _print_openloop(results: dict) -> None:
    params = results["params"]
    print(
        f"open-loop sweep: {params['n_seeds']} seeds x "
        f"{params['n_requests']} requests, {params['phases']} phases, "
        f"SLO {params['slo_us']}us"
    )
    header = (
        f"{'load':>5} {'offered':>12} {'goodput':>12} {'slo ok':>9} "
        f"{'peak q':>7} {'p99':>10} {'p999':>10}"
    )
    print(header)
    for p in results["points"]:
        print(
            f"{p['load']:>5g} {p['offered_rps']:>12,.0f} "
            f"{p['goodput_rps']:>12,.0f} "
            f"{p['slo_ok']:>4}/{p['requests']} "
            f"{p['peak_outstanding']:>7} "
            f"{p['latency_p99_cycles']:>10,} {p['latency_p999_cycles']:>10,}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=30,
                        help="faulted web-server runs per sweep")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--openloop", action="store_true",
                        help="run the deterministic open-loop offered-load "
                             "sweep instead of the wall-clock campaign "
                             "benchmark")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    args = parser.parse_args(argv)

    if args.openloop:
        # Fixed sizes: the committed baseline is an exact artifact, so
        # --quick/--seeds must not silently change what gets compared.
        results = measure_openloop_sweep()
        _print_openloop(results)
    else:
        if args.quick:
            args.seeds, args.repeat = 15, 2
        results = measure_web_campaign(args.seeds, repeat=args.repeat)
        print(f"campaign runs/sweep    : {results['campaign_runs']}")
        print(f"requests served/sweep  : {results['requests_served']}")
        print(f"fresh-build runs/sec   : {results['fresh_runs_per_sec']:,.1f}")
        print(f"pooled runs/sec        : {results['pooled_runs_per_sec']:,.1f}")
        print(f"pooled/fresh speedup   : {results['pooled_over_fresh']:.2f}x")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
