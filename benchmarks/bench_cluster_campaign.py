#!/usr/bin/env python3
"""Cluster campaign benchmark: scenarios/sec and whole-node reboot cost.

Two measurements:

* **scenarios/sec** — the cluster smoke campaign (correlated node kills
  over a 4-node cell) executed twice through the real scenario entry
  point: pooled (each node whole-node-reboots via its private snapshot's
  dirty restore) and with ``REPRO_SYSTEM_POOL=0`` (every node acquire
  builds a fresh system).  Rows are asserted identical across both
  sweeps — the speedup is only meaningful because it is bit-exact.
* **whole-node reboot cost** — wall time of one ``Node.reboot()`` after
  real injected units dirtied the node's images, which is the pool's
  dirty-restore path the cell charges ``NODE_REBOOT_CYCLES`` (~5us) for.

Standalone: ``python benchmarks/bench_cluster_campaign.py [--json out.json]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import (  # noqa: E402
    ClusterSpec,
    Node,
    cluster_run_seeds,
    execute_scenario,
)


def _spec(units: int) -> ClusterSpec:
    return ClusterSpec(
        service="lock", n_nodes=4, n_kill=1, units=units, horizon=17
    )


def measure_scenarios(n_scenarios: int, units: int) -> dict:
    """Scenarios/sec, pooled vs fresh, with bit-exact rows asserted."""
    spec = _spec(units)
    seeds = cluster_run_seeds(7, n_scenarios)
    saved = os.environ.get("REPRO_SYSTEM_POOL")
    try:
        results = {}
        for label, gate in (("fresh", "0"), ("pooled", "1")):
            os.environ["REPRO_SYSTEM_POOL"] = gate
            if gate == "1":
                # Warm every node's snapshot outside the timed region,
                # as the campaign worker initializer does.
                execute_scenario(spec, seeds[0])
            start = time.perf_counter()
            rows = [execute_scenario(spec, seed) for seed in seeds]
            elapsed = time.perf_counter() - start
            results[label] = {
                "elapsed_s": elapsed,
                "scenarios_per_s": n_scenarios / elapsed,
                "units_per_s": n_scenarios * units / elapsed,
                "rows": rows,
            }
    finally:
        if saved is None:
            os.environ.pop("REPRO_SYSTEM_POOL", None)
        else:
            os.environ["REPRO_SYSTEM_POOL"] = saved
    assert results["pooled"]["rows"] == results["fresh"]["rows"], (
        "pooled cluster scenarios diverged from fresh-build scenarios"
    )
    for label in results:
        del results[label]["rows"]
    results["speedup"] = (
        results["fresh"]["elapsed_s"] / results["pooled"]["elapsed_s"]
    )
    return results


def measure_node_reboot(samples: int = 50) -> dict:
    """Wall time of one whole-node reboot after real dirty work."""
    os.environ["REPRO_SYSTEM_POOL"] = "1"
    spec = _spec(units=4)
    run_spec = spec.run_spec()
    node = Node(99, spec.ft_mode, spec.recovery_mode)
    node.run_unit(run_spec, 1)  # build + seal outside the timed loop
    times = []
    for i in range(samples):
        node.run_unit(run_spec, 1000 + i)  # dirty the images for real
        start = time.perf_counter()
        node.reboot()
        times.append(time.perf_counter() - start)
    times.sort()
    return {
        "samples": samples,
        "median_us": times[samples // 2] * 1e6,
        "min_us": times[0] * 1e6,
        "max_us": times[-1] * 1e6,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=16)
    parser.add_argument("--units", type=int, default=8)
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    campaign = measure_scenarios(args.scenarios, args.units)
    reboot = measure_node_reboot()
    print(
        f"cluster campaign ({args.scenarios} scenarios x {args.units} units)"
    )
    for label in ("fresh", "pooled"):
        r = campaign[label]
        print(
            f"  {label:7s} {r['scenarios_per_s']:8.1f} scenarios/s "
            f"({r['units_per_s']:8.1f} units/s)"
        )
    print(f"  speedup {campaign['speedup']:.2f}x (rows bit-identical)")
    print(
        f"whole-node reboot: median {reboot['median_us']:.1f} us "
        f"(min {reboot['min_us']:.1f}, max {reboot['max_us']:.1f}, "
        f"n={reboot['samples']})"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"campaign": campaign, "reboot": reboot}, handle,
                      indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
