"""Fig. 6(b): per-descriptor recovery overhead (us).

Average (and stdev) time to recover a descriptor to its "expected" state
from the fault state, per service, SuperGlue vs C^3.  Paper shape: the
cost correlates with the number of recovery mechanisms a service engages
— recovering an event descriptor (T0/T1/R0/D1/G0/G1/U0) costs more than a
lock descriptor (T0/R0/T1 only).
"""

import pytest

from repro.analysis import measure_recovery_overhead
from repro.idl_specs import SERVICES
from repro.system import compile_all_interfaces

RUNS = 25


@pytest.mark.parametrize("service", SERVICES)
def test_fig6b_recovery_overhead(benchmark, service):
    rows = {}

    def run():
        for mode in ("c3", "superglue"):
            rows[mode] = measure_recovery_overhead(service, mode, runs=RUNS)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    sg = rows["superglue"]
    c3 = rows["c3"]
    mechanisms = compile_all_interfaces()[service].ir.mechanisms()
    print(
        f"\nFig6b {service:6s}  "
        f"SuperGlue {sg['mean_us']:.2f}+/-{sg['stdev_us']:.2f} us  "
        f"C^3 {c3['mean_us']:.2f}+/-{c3['stdev_us']:.2f} us  "
        f"(mechanisms: {','.join(mechanisms)})"
    )
    benchmark.extra_info.update(
        service=service,
        superglue_mean_us=sg["mean_us"],
        c3_mean_us=c3["mean_us"],
        mechanisms=",".join(mechanisms),
    )
    assert sg["samples"] > 0 and c3["samples"] > 0


def test_fig6b_event_costs_more_than_lock(benchmark):
    """The paper's explicit comparison: Event > Lock recovery cost."""
    results = {}

    def run():
        for service in ("lock", "event"):
            results[service] = measure_recovery_overhead(
                service, "superglue", runs=RUNS
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nFig6b shape: event {results['event']['mean_us']:.2f} us "
        f">= lock {results['lock']['mean_us']:.2f} us"
    )
    assert results["event"]["mean_us"] >= results["lock"]["mean_us"] * 0.8
