"""Ablation: eager vs on-demand recovery (the T0/T1 design choice).

Section II-C: "On-demand has the effect of properly prioritizing the
recovery process".  Eager recovery restores *every* descriptor at fault
time (at fault-time priority); on-demand defers each descriptor to its
next access, at the accessing thread's priority.

Measured here: with many live descriptors and one fault, eager recovery
does strictly more replay work up front (higher fault-time latency),
while on-demand spreads the cost and only recovers what is touched.
"""

from repro.system import build_system

N_DESCRIPTORS = 24
TOUCHED = 4


def _populate(system):
    kernel = system.kernel
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub = system.stub("app0", "lock")
    lids = [
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        for __ in range(N_DESCRIPTORS)
    ]
    return kernel, thread, stub, lids


def _fault(kernel):
    kernel.vector_fault(
        kernel.component("lock"),
        type("F", (), {"kind": "assertion", "recoverable": True})(),
    )


def _run(mode):
    system = build_system(ft_mode="superglue", recovery_mode=mode)
    kernel, thread, stub, lids = _populate(system)
    kernel.current = thread
    before_fault = kernel.clock.now
    _fault(kernel)
    fault_latency = kernel.clock.now - before_fault
    # Post-fault, the workload touches only a few descriptors.
    for lid in lids[:TOUCHED]:
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        stub.invoke(kernel, thread, "lock_release", ("app0", lid))
    return {
        "fault_latency_cycles": fault_latency,
        "recoveries": system.recovery_manager.total_recoveries,
        "total_cycles": kernel.clock.now,
    }


def test_ablation_eager_vs_ondemand(benchmark):
    results = {}

    def run():
        results["eager"] = _run("eager")
        results["ondemand"] = _run("ondemand")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    eager = results["eager"]
    ondemand = results["ondemand"]
    print(
        f"\nAblation T0/T1: eager fault-latency="
        f"{eager['fault_latency_cycles']} cy, {eager['recoveries']} "
        f"recoveries | on-demand fault-latency="
        f"{ondemand['fault_latency_cycles']} cy, "
        f"{ondemand['recoveries']} recoveries (only touched descriptors)"
    )
    benchmark.extra_info.update(
        eager_latency=eager["fault_latency_cycles"],
        ondemand_latency=ondemand["fault_latency_cycles"],
        eager_recoveries=eager["recoveries"],
        ondemand_recoveries=ondemand["recoveries"],
    )
    # Eager recovers everything at fault time; on-demand only what is used.
    assert eager["recoveries"] == N_DESCRIPTORS
    assert ondemand["recoveries"] == TOUCHED
    # The fault-time latency gap is the schedulability argument of [7]:
    # on-demand pays only the micro-reboot at fault time; eager adds the
    # whole interface's replay work on top.
    assert eager["fault_latency_cycles"] > 3 * ondemand["fault_latency_cycles"]


def test_ablation_ondemand_skips_dead_descriptors(benchmark):
    """Descriptors never touched again are never paid for."""

    def run():
        system = build_system(ft_mode="superglue", recovery_mode="ondemand")
        kernel, thread, stub, lids = _populate(system)
        kernel.current = thread
        _fault(kernel)
        return system.recovery_manager.total_recoveries

    recoveries = benchmark.pedantic(run, rounds=1, iterations=1)
    assert recoveries == 0
