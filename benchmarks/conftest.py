"""Benchmark configuration.

Benchmarks print the paper-shaped tables/series as they run (captured by
``pytest -s`` or the saved benchmark extra_info) and record the simulated
metrics in ``benchmark.extra_info`` so results survive in the JSON output.

Environment knobs:

* ``REPRO_CAMPAIGN_FAULTS`` — faults per service for the Table II bench
  (default 100; the paper uses 500).
* ``REPRO_CAMPAIGN_WORKERS`` — process-pool size for the Table II bench
  (default 1 = in-process serial; set 0 for all CPUs).  Aggregates are
  bit-identical across worker counts.
* ``REPRO_WS_REQUESTS`` — requests for the Fig. 7 bench (default 800; the
  paper uses 50000).
"""

import os

import pytest

CAMPAIGN_FAULTS = int(os.environ.get("REPRO_CAMPAIGN_FAULTS", "100"))
CAMPAIGN_WORKERS = int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1"))
if CAMPAIGN_WORKERS <= 0:
    CAMPAIGN_WORKERS = os.cpu_count() or 1
WS_REQUESTS = int(os.environ.get("REPRO_WS_REQUESTS", "800"))


@pytest.fixture(scope="session")
def campaign_faults():
    return CAMPAIGN_FAULTS


@pytest.fixture(scope="session")
def campaign_workers():
    return CAMPAIGN_WORKERS


@pytest.fixture(scope="session")
def ws_requests():
    return WS_REQUESTS
