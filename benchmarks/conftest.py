"""Benchmark configuration.

Benchmarks print the paper-shaped tables/series as they run (captured by
``pytest -s`` or the saved benchmark extra_info) and record the simulated
metrics in ``benchmark.extra_info`` so results survive in the JSON output.

Environment knobs:

* ``REPRO_CAMPAIGN_FAULTS`` — faults per service for the Table II bench
  (default 100; the paper uses 500).
* ``REPRO_CAMPAIGN_WORKERS`` — process-pool size for the Table II bench
  (default 1 = in-process serial; set 0 for all CPUs).  Aggregates are
  bit-identical across worker counts.
* ``REPRO_CAMPAIGN_FAULT_CLASS`` — fault class for the Table II bench
  (default ``reg``; one of reg/mem/idl/burst).  Each class has its own
  outcome shape, so the bench's assertions adapt to the class.
* ``REPRO_WS_REQUESTS`` — requests for the Fig. 7 bench (default 800; the
  paper uses 50000).
"""

import os

import pytest

from repro.swifi.injector import FAULT_CLASSES

CAMPAIGN_FAULTS = int(os.environ.get("REPRO_CAMPAIGN_FAULTS", "100"))
CAMPAIGN_WORKERS = int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1"))
if CAMPAIGN_WORKERS <= 0:
    CAMPAIGN_WORKERS = os.cpu_count() or 1
CAMPAIGN_FAULT_CLASS = os.environ.get("REPRO_CAMPAIGN_FAULT_CLASS", "reg")
if CAMPAIGN_FAULT_CLASS not in FAULT_CLASSES:
    raise ValueError(
        f"REPRO_CAMPAIGN_FAULT_CLASS={CAMPAIGN_FAULT_CLASS!r} "
        f"not one of {FAULT_CLASSES}"
    )
WS_REQUESTS = int(os.environ.get("REPRO_WS_REQUESTS", "800"))


@pytest.fixture(scope="session")
def campaign_faults():
    return CAMPAIGN_FAULTS


@pytest.fixture(scope="session")
def campaign_workers():
    return CAMPAIGN_WORKERS


@pytest.fixture(scope="session")
def campaign_fault_class():
    return CAMPAIGN_FAULT_CLASS


@pytest.fixture(scope="session")
def ws_requests():
    return WS_REQUESTS
