"""Benchmark configuration.

Benchmarks print the paper-shaped tables/series as they run (captured by
``pytest -s`` or the saved benchmark extra_info) and record the simulated
metrics in ``benchmark.extra_info`` so results survive in the JSON output.

Environment knobs:

* ``REPRO_CAMPAIGN_FAULTS`` — faults per service for the Table II bench
  (default 100; the paper uses 500).
* ``REPRO_WS_REQUESTS`` — requests for the Fig. 7 bench (default 800; the
  paper uses 50000).
"""

import os

import pytest

CAMPAIGN_FAULTS = int(os.environ.get("REPRO_CAMPAIGN_FAULTS", "100"))
WS_REQUESTS = int(os.environ.get("REPRO_WS_REQUESTS", "800"))


@pytest.fixture(scope="session")
def campaign_faults():
    return CAMPAIGN_FAULTS


@pytest.fixture(scope="session")
def ws_requests():
    return WS_REQUESTS
