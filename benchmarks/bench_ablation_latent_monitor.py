"""Ablation: reactive vs monitor-assisted latent-fault detection.

Table II files hangs under "latent faults" and points at C'MON for their
predictable detection.  This ablation plants silent corruption in a
descriptor that the workload will not touch for a long (virtual) time and
compares detection latency:

* **reactive** — corruption is only found when a thread finally touches
  the descriptor (unbounded, workload-dependent latency);
* **monitored** — the scrub pass finds it within one monitor period.
"""

from repro.composite.monitor import LatentFaultMonitor
from repro.system import build_system

TOUCH_DELAY_CYCLES = 500_000
MONITOR_PERIOD = 20_000


def _plant_corruption(system, thread):
    kernel = system.kernel
    stub = system.stub("app0", "lock")
    lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
    lock = system.service("lock")
    record = lock.record_for(lid)
    lock.image.corrupt_word(record.addr, 0xDEAD)
    return stub, lid


def _advance_until(kernel, predicate, limit_cycles):
    while kernel.clock.now < limit_cycles and not predicate():
        if not kernel.clock.skip_to_next_expiry():
            kernel.clock.advance(MONITOR_PERIOD)
        for callback in kernel.clock.pop_due():
            callback()


def test_ablation_latent_detection_latency(benchmark):
    results = {}

    def run():
        # Reactive: nothing happens until the (late) touch.
        system = build_system(ft_mode="superglue")
        thread = system.kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        stub, lid = _plant_corruption(system, thread)
        planted_at = system.kernel.clock.now
        system.kernel.clock.advance(TOUCH_DELAY_CYCLES)  # workload is busy elsewhere
        stub.invoke(system.kernel, thread, "lock_take", ("app0", lid))
        reactive_latency = (
            system.booter.reboot_log[0][0] - planted_at
            if system.booter.reboot_log
            else None
        )

        # Monitored: the scrub finds it within one period.
        system = build_system(ft_mode="superglue")
        thread = system.kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        stub, lid = _plant_corruption(system, thread)
        planted_at = system.kernel.clock.now
        monitor = LatentFaultMonitor(
            system.kernel, targets=["lock"], period=MONITOR_PERIOD
        )
        monitor.start()
        _advance_until(
            system.kernel,
            lambda: monitor.detection_count > 0,
            planted_at + TOUCH_DELAY_CYCLES,
        )
        monitored_latency = (
            monitor.detections[0][0] - planted_at
            if monitor.detections
            else None
        )
        results.update(reactive=reactive_latency, monitored=monitored_latency)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAblation latent detection: reactive={results['reactive']} cy "
        f"vs monitored={results['monitored']} cy "
        f"(period {MONITOR_PERIOD} cy)"
    )
    benchmark.extra_info.update(results)
    assert results["reactive"] is not None
    assert results["monitored"] is not None
    # The monitor bounds detection latency by its period; reactive
    # detection waits for the workload.
    assert results["monitored"] <= 2 * MONITOR_PERIOD
    assert results["reactive"] >= TOUCH_DELAY_CYCLES
    assert results["monitored"] < results["reactive"] / 5
