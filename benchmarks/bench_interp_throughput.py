#!/usr/bin/env python3
"""Interpreter throughput benchmark: clean-trace ops/sec and invocations/sec.

Two measurements, both on the *clean* (no pending injection) path that every
SWIFI run and webserver request funnels through:

* **raw interpreter ops/sec** — a fixed, service-shaped micro-op trace
  (prologue, argument asserts, stack canary, magic check, field
  loads/stores with readback verification, checksum, epilogue) executed
  repeatedly against one ``MemoryImage``.  Measured twice: through the
  authoritative slow path (``execute_trace``) and through whatever fast
  path the tree provides (``try_execute_fast``; falls back to the slow
  path when absent, so the same benchmark runs on pre-fast-path trees).
* **end-to-end invocations/sec** — a built system running a lock
  take/release loop through the full kernel invocation path (stubs,
  capability checks, trace construction, accounting).  This is the number
  campaign throughput scales with.

Standalone: ``python benchmarks/bench_interp_throughput.py --json out.json``.
``scripts/check_interp_baseline.py`` gates CI on the committed baseline in
``benchmarks/baselines/interp_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.composite.machine import (  # noqa: E402
    EAX,
    EBP,
    EBX,
    ECX,
    EDX,
    EDI,
    ESI,
    ESP,
    RegisterFile,
    Trace,
    execute_trace,
)
from repro.composite.memory import MemoryImage  # noqa: E402

try:  # Fast path exists only after the trace-compiler PR.
    from repro.composite.fastpath import try_execute_fast
except ImportError:  # pragma: no cover - pre-change measurement mode
    try_execute_fast = None

BASE = 0x0100_0000


def build_service_style_trace(image: MemoryImage) -> Trace:
    """A trace shaped like ``_CheckedTraceBuilder`` output for a touch op."""
    record = image.alloc_record(0x5EC0FFEE, 4)
    for off, value in enumerate((7, 3, 0, 42), start=1):
        image.write_word(record + off, value)
    digest = 0xCAFE57AC
    trace = Trace("bench_touch")
    trace.entry_regs = {
        EAX: record, EBX: 11, ECX: 22, EDX: 33, ESI: 44, EDI: digest,
    }
    trace.prologue()
    for reg, word in ((EBX, 11), (ECX, 22), (EDX, 33), (ESI, 44)):
        trace.assert_range(reg, word, word)
    trace.assert_range(EDI, digest, digest)
    trace.push(EDI)
    trace.chk(EAX, 0, 0x5EC0FFEE)
    # Field loads with value assertions, a store with readback, and two
    # re-verification rounds — the standard high-liveness skeleton.
    for __ in range(3):
        for off, value in ((1, 7), (2, 3), (4, 42)):
            trace.ld(EBX, EAX, off)
            trace.assert_range(EBX, value, value)
    trace.li(EDI, 9)
    trace.st(EDI, EAX, 3)
    trace.ld(EDX, EAX, 3)
    trace.assert_range(EDX, 9, 9)
    trace.pop(EDI)
    trace.assert_range(EDI, digest, digest)
    frame = (image.stack_top - 1) & 0xFFFFFFFF
    trace.assert_range(ESP, frame, frame)
    trace.assert_range(EBP, frame, frame)
    trace.add(EDI, EBX)
    trace.xor(EDI, EDI)
    trace.chk(EAX, 0, 0x5EC0FFEE)
    trace.li(EAX, 0)
    trace.epilogue(EAX)
    return trace


def _fresh_regs(image: MemoryImage, trace: Trace) -> RegisterFile:
    regs = RegisterFile()
    regs.write(ESP, image.stack_top)
    regs.write(EBP, image.stack_top)
    for reg, value in trace.entry_regs.items():
        regs.write(reg, value)
    return regs


def measure_raw(n_execs: int, repeat: int = 3) -> dict:
    """Ops/sec of the slow path and of the fast path (if present)."""
    image = MemoryImage(BASE, 4096)
    trace = build_service_style_trace(image)
    n_ops = len(trace.ops)

    def time_path(run) -> float:
        best = float("inf")
        entry = list(trace.entry_regs.items())
        for __ in range(repeat):
            regs = _fresh_regs(image, trace)
            write = regs.write
            start = time.perf_counter()
            for __ in range(n_execs):
                # Per-invocation entry-register delivery, as in
                # Component.execute.
                for reg, value in entry:
                    write(reg, value)
                run(regs)
            best = min(best, time.perf_counter() - start)
        return best

    slow = time_path(lambda regs: execute_trace(trace, regs, image))
    if try_execute_fast is not None:
        def fast_once(regs):
            result = try_execute_fast(trace, regs, image, "bench")
            if result is None:  # pragma: no cover - fast path gated off
                result = execute_trace(trace, regs, image)
            return result

        # Warm outside the timing: a novel op tuple must prove
        # NOVEL_COMPILE_RUNS clean executions before the fast path
        # compiles it (cached tuples attach on the second).
        from repro.composite.fastpath import NOVEL_COMPILE_RUNS

        for __ in range(NOVEL_COMPILE_RUNS + 1):
            fast_once(_fresh_regs(image, trace))
            if trace._compiled is not None:
                break
        fast = time_path(fast_once)
    else:
        fast = slow
    return {
        "trace_ops": n_ops,
        "executions": n_execs,
        "slow_ops_per_sec": n_ops * n_execs / slow,
        "fast_ops_per_sec": n_ops * n_execs / fast,
        "fast_over_slow": slow / fast,
    }


def measure_invocations(iterations: int, repeat: int = 3) -> dict:
    """End-to-end invocations/sec of a lock take/release loop."""
    from repro.composite.thread import Invoke
    from repro.system import build_system

    def one_run() -> tuple:
        system = build_system(ft_mode="superglue")

        def body(sys_, thread):
            lock_id = yield Invoke("lock", "lock_alloc", "app0")
            for __ in range(iterations):
                yield Invoke("lock", "lock_take", "app0", lock_id)
                yield Invoke("lock", "lock_release", "app0", lock_id)

        system.kernel.create_thread("bench", prio=5, home="app0", body_factory=body)
        start = time.perf_counter()
        system.run(max_steps=10 * iterations + 100)
        elapsed = time.perf_counter() - start
        return system.kernel.stats["invocations"], elapsed

    best_rate, invocations = 0.0, 0
    for __ in range(repeat):
        invocations, elapsed = one_run()
        best_rate = max(best_rate, invocations / elapsed)
    return {
        "lock_iterations": iterations,
        "invocations": invocations,
        "invocations_per_sec": best_rate,
    }


def run_benchmark(n_execs: int, iterations: int, repeat: int) -> dict:
    raw = measure_raw(n_execs, repeat=repeat)
    e2e = measure_invocations(iterations, repeat=repeat)
    return {**raw, **e2e}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--execs", type=int, default=3000,
                        help="raw-path trace executions per timing run")
    parser.add_argument("--iterations", type=int, default=400,
                        help="lock take/release pairs for the e2e measure")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.execs, args.iterations = 1000, 150

    results = run_benchmark(args.execs, args.iterations, args.repeat)
    print(f"trace ops/exec        : {results['trace_ops']}")
    print(f"slow path ops/sec     : {results['slow_ops_per_sec']:,.0f}")
    print(f"fast path ops/sec     : {results['fast_ops_per_sec']:,.0f}")
    print(f"fast/slow speedup     : {results['fast_over_slow']:.2f}x")
    print(f"invocations/sec (e2e) : {results['invocations_per_sec']:,.0f}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
