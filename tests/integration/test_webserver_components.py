"""Tests for the web server's application-level components."""

import pytest

from repro.system import build_system
from repro.webserver.components import (
    ConnectionManagerComponent,
    HttpParserComponent,
)
from repro.webserver.http import build_request
from repro.webserver.loadgen import run_webserver
from repro.webserver.server import WebServer


@pytest.fixture
def setup():
    system = build_system(ft_mode="none")
    kernel = system.kernel
    kernel.register_component(HttpParserComponent())
    kernel.register_component(ConnectionManagerComponent())
    kernel.grant_all_caps()
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    return system, kernel, thread


class TestHttpParserComponent:
    def test_parses_valid_request(self, setup):
        __, kernel, thread = setup
        parser = kernel.component("httpparse")
        request = parser.http_parse(thread, build_request("/a.html"))
        assert request.path == "/a.html"
        assert parser.parsed == 1

    def test_rejects_garbage(self, setup):
        __, kernel, thread = setup
        parser = kernel.component("httpparse")
        assert parser.http_parse(thread, b"\xff\xff") is None
        assert parser.rejected == 1

    def test_charges_by_length(self, setup):
        __, kernel, thread = setup
        parser = kernel.component("httpparse")
        t0 = kernel.clock.now
        parser.http_parse(thread, build_request("/x"))
        short = kernel.clock.now - t0
        t1 = kernel.clock.now
        parser.http_parse(thread, build_request("/" + "y" * 900))
        long = kernel.clock.now - t1
        assert long > short


class TestConnectionManager:
    def test_open_note_close(self, setup):
        __, kernel, thread = setup
        connmgr = kernel.component("connmgr")
        conn = connmgr.conn_open(thread, "10.0.0.1")
        assert connmgr.conn_count(thread) == 1
        assert connmgr.conn_note(thread, conn, "/index.html") == 0
        assert connmgr.stats["/index.html"] == 1
        assert connmgr.conn_close(thread, conn) == 0
        assert connmgr.conn_count(thread) == 0

    def test_unknown_connection(self, setup):
        __, kernel, thread = setup
        connmgr = kernel.component("connmgr")
        assert connmgr.conn_note(thread, 99, "/") == -1
        assert connmgr.conn_close(thread, 99) == -1


class TestComponentizedPipeline:
    def test_server_registers_components(self):
        system = build_system(ft_mode="none")
        WebServer(system).install()
        assert "httpparse" in system.kernel.components
        assert "connmgr" in system.kernel.components

    def test_requests_flow_through_components(self):
        result = run_webserver(ft_mode="none", n_requests=30)
        assert result.served == 30

    def test_connections_all_closed_after_run(self):
        system = build_system(ft_mode="none")
        server = WebServer(system)
        server.install()
        from repro.webserver.loadgen import LoadGenerator

        LoadGenerator(n_requests=25).install(system, server)
        system.run(max_steps=1_000_000)
        connmgr = system.kernel.component("connmgr")
        assert connmgr.active == {}
        assert sum(connmgr.stats.values()) == 25

    def test_double_install_is_idempotent(self):
        system = build_system(ft_mode="none")
        WebServer(system).install()
        WebServer(system, n_workers=1).install()  # no duplicate components
        assert list(system.kernel.components).count("httpparse") == 1
