"""Integration tests for the componentized web server (Fig. 7 workload)."""

import pytest

from repro.webserver.apache_model import ApacheModel
from repro.webserver.http import build_request, build_response, parse_request
from repro.webserver.loadgen import LoadResult, run_webserver


class TestHttp:
    def test_parse_simple_get(self):
        request = parse_request(build_request("/index.html"))
        assert request.method == "GET"
        assert request.path == "/index.html"
        assert request.version == "HTTP/1.0"
        assert request.headers["host"] == "localhost"

    def test_parse_keep_alive(self):
        request = parse_request(build_request("/", keep_alive=True))
        assert request.keep_alive

    def test_parse_rejects_garbage(self):
        assert parse_request(b"\xff\xfe") is None
        assert parse_request(b"GETT / HTTP/1.0\r\n\r\n") is None
        assert parse_request(b"GET index HTTP/1.0\r\n\r\n") is None
        assert parse_request(b"GET / SPDY/1\r\n\r\n") is None
        assert parse_request(b"") is None

    def test_parse_rejects_bad_header(self):
        assert parse_request(b"GET / HTTP/1.0\r\nnocolon\r\n\r\n") is None

    def test_build_response_format(self):
        raw = build_response(200, b"hi")
        text = raw.decode("ascii")
        assert text.startswith("HTTP/1.0 200 OK\r\n")
        assert "Content-Length: 2" in text
        assert text.endswith("\r\n\r\nhi")

    def test_build_response_unknown_status(self):
        assert b"Unknown" in build_response(599, b"")


class TestServerRuns:
    @pytest.mark.parametrize("mode", ["none", "c3", "superglue"])
    def test_all_requests_served(self, mode):
        result = run_webserver(ft_mode=mode, n_requests=120)
        assert result.served == 120
        assert result.errors == 0
        assert result.throughput_rps > 0

    def test_ft_modes_slower_than_base(self):
        base = run_webserver(ft_mode="none", n_requests=200)
        sg = run_webserver(ft_mode="superglue", n_requests=200)
        c3 = run_webserver(ft_mode="c3", n_requests=200)
        assert sg.throughput_rps < base.throughput_rps
        assert c3.throughput_rps < base.throughput_rps
        # SuperGlue within ~3 percentage points of C^3 (paper: 11.84 vs 10.5).
        assert sg.throughput_rps <= c3.throughput_rps * 1.01

    def test_slowdown_in_paper_band(self):
        base = run_webserver(ft_mode="none", n_requests=300)
        sg = run_webserver(ft_mode="superglue", n_requests=300)
        slowdown = 1 - sg.throughput_rps / base.throughput_rps
        assert 0.07 <= slowdown <= 0.18  # paper: 11.84%

    def test_faulted_run_recovers_and_serves_all(self):
        result = run_webserver(
            ft_mode="superglue", n_requests=300, with_faults=True, seed=3
        )
        assert result.served == 300
        assert result.faults_injected >= 2
        assert result.reboots >= 1

    def test_fault_slowdown_small(self):
        clean = run_webserver(ft_mode="superglue", n_requests=300)
        faulted = run_webserver(
            ft_mode="superglue", n_requests=300, with_faults=True, seed=3
        )
        # Recovery runs in parallel with serving: the extra slowdown over
        # the clean FT run is modest (paper: 13.6% total vs 11.84% clean).
        assert faulted.throughput_rps > clean.throughput_rps * 0.9

    def test_series_monotonic(self):
        result = run_webserver(ft_mode="superglue", n_requests=50)
        served = [count for (__, count) in result.series]
        assert served == sorted(served)
        assert result.dip_recovery_cycles() is not None


class TestApacheModel:
    def test_apache_faster_than_composite(self):
        base = run_webserver(ft_mode="none", n_requests=200)
        apache = ApacheModel().throughput_rps(200)
        assert apache > base.throughput_rps

    def test_apache_ratio_matches_paper(self):
        base = run_webserver(ft_mode="none", n_requests=300)
        apache = ApacheModel().throughput_rps(300)
        ratio = apache / base.throughput_rps
        assert 1.0 < ratio < 1.2  # paper: 17600/16200 ~ 1.086

    def test_deterministic_per_seed(self):
        model = ApacheModel()
        assert model.throughput_rps(100, seed=1) == model.throughput_rps(100, seed=1)


class TestLoadResult:
    def test_throughput_zero_duration(self):
        result = LoadResult(
            requests=0, served=0, errors=0, duration_cycles=0,
            reboots=0, ft_mode="none",
        )
        assert result.throughput_rps == 0.0
        assert result.dip_recovery_cycles() is None
