"""Integration tests for the componentized web server (Fig. 7 workload)."""

from collections import deque

import pytest

from repro.webserver.apache_model import ApacheModel
from repro.webserver.http import build_request, build_response, parse_request
from repro.webserver.loadgen import LoadResult, run_webserver
from repro.webserver.server import WebServer


class TestHttp:
    def test_parse_simple_get(self):
        request = parse_request(build_request("/index.html"))
        assert request.method == "GET"
        assert request.path == "/index.html"
        assert request.version == "HTTP/1.0"
        assert request.headers["host"] == "localhost"

    def test_parse_keep_alive(self):
        request = parse_request(build_request("/", keep_alive=True))
        assert request.keep_alive

    def test_parse_rejects_garbage(self):
        assert parse_request(b"\xff\xfe") is None
        assert parse_request(b"GETT / HTTP/1.0\r\n\r\n") is None
        assert parse_request(b"GET index HTTP/1.0\r\n\r\n") is None
        assert parse_request(b"GET / SPDY/1\r\n\r\n") is None
        assert parse_request(b"") is None

    def test_parse_rejects_bad_header(self):
        assert parse_request(b"GET / HTTP/1.0\r\nnocolon\r\n\r\n") is None

    def test_build_response_format(self):
        raw = build_response(200, b"hi")
        text = raw.decode("ascii")
        assert text.startswith("HTTP/1.0 200 OK\r\n")
        assert "Content-Length: 2" in text
        assert text.endswith("\r\n\r\nhi")

    def test_build_response_unknown_status(self):
        assert b"Unknown" in build_response(599, b"")


class TestServerRuns:
    @pytest.mark.parametrize("mode", ["none", "c3", "superglue"])
    def test_all_requests_served(self, mode):
        result = run_webserver(ft_mode=mode, n_requests=120)
        assert result.served == 120
        assert result.errors == 0
        assert result.throughput_rps > 0

    def test_ft_modes_slower_than_base(self):
        base = run_webserver(ft_mode="none", n_requests=200)
        sg = run_webserver(ft_mode="superglue", n_requests=200)
        c3 = run_webserver(ft_mode="c3", n_requests=200)
        assert sg.throughput_rps < base.throughput_rps
        assert c3.throughput_rps < base.throughput_rps
        # SuperGlue within ~3 percentage points of C^3 (paper: 11.84 vs 10.5).
        assert sg.throughput_rps <= c3.throughput_rps * 1.01

    def test_slowdown_in_paper_band(self):
        base = run_webserver(ft_mode="none", n_requests=300)
        sg = run_webserver(ft_mode="superglue", n_requests=300)
        slowdown = 1 - sg.throughput_rps / base.throughput_rps
        assert 0.07 <= slowdown <= 0.18  # paper: 11.84%

    def test_faulted_run_recovers_and_serves_all(self):
        result = run_webserver(
            ft_mode="superglue", n_requests=300, with_faults=True, seed=3
        )
        assert result.served == 300
        assert result.faults_injected >= 2
        assert result.reboots >= 1

    def test_fault_slowdown_small(self):
        clean = run_webserver(ft_mode="superglue", n_requests=300)
        faulted = run_webserver(
            ft_mode="superglue", n_requests=300, with_faults=True, seed=3
        )
        # Recovery runs in parallel with serving: the extra slowdown over
        # the clean FT run is modest (paper: 13.6% total vs 11.84% clean).
        assert faulted.throughput_rps > clean.throughput_rps * 0.9

    def test_series_monotonic(self):
        result = run_webserver(ft_mode="superglue", n_requests=50)
        served = [count for (__, count) in result.series]
        assert served == sorted(served)
        assert result.dip_recovery_cycles() is not None


class TestApacheModel:
    def test_apache_faster_than_composite(self):
        base = run_webserver(ft_mode="none", n_requests=200)
        apache = ApacheModel().throughput_rps(200)
        assert apache > base.throughput_rps

    def test_apache_ratio_matches_paper(self):
        base = run_webserver(ft_mode="none", n_requests=300)
        apache = ApacheModel().throughput_rps(300)
        ratio = apache / base.throughput_rps
        assert 1.0 < ratio < 1.2  # paper: 17600/16200 ~ 1.086

    def test_deterministic_per_seed(self):
        model = ApacheModel()
        assert model.throughput_rps(100, seed=1) == model.throughput_rps(100, seed=1)


class TestLoadResult:
    def test_throughput_zero_duration(self):
        result = LoadResult(
            requests=0, served=0, errors=0, duration_cycles=0,
            reboots=0, ft_mode="none",
        )
        assert result.throughput_rps == 0.0
        assert result.dip_recovery_cycles() is None

    def test_latencies_recorded_per_request(self):
        result = run_webserver(ft_mode="superglue", n_requests=100)
        assert len(result.latencies) == 100
        assert all(latency > 0 for latency in result.latencies)


class TestDipWindow:
    """``dip_recovery_cycles`` must honor its ``window`` argument.

    Regression: the parameter used to be accepted and ignored — every
    call returned the single worst inter-completion gap.
    """

    @staticmethod
    def _result_with_clocks(clocks):
        return LoadResult(
            requests=len(clocks), served=len(clocks), errors=0,
            duration_cycles=clocks[-1] if clocks else 0,
            reboots=0, ft_mode="none",
            series=[(clock, i + 1) for i, clock in enumerate(clocks)],
        )

    def test_window_two_is_worst_single_gap(self):
        result = self._result_with_clocks([0, 1, 2, 12, 13, 14])
        assert result.dip_recovery_cycles(window=2) == 10

    def test_wider_windows_span_the_dip(self):
        result = self._result_with_clocks([0, 1, 2, 12, 13, 14])
        # Worst 3-completion span straddles the 10-cycle gap: 12 - 1.
        assert result.dip_recovery_cycles(window=3) == 11
        assert result.dip_recovery_cycles(window=6) == 14

    def test_none_when_fewer_samples_than_window(self):
        result = self._result_with_clocks([0, 5])
        assert result.dip_recovery_cycles(window=3) is None
        assert result.dip_recovery_cycles() is None  # default window=50
        assert result.dip_recovery_cycles(window=2) == 5

    def test_degenerate_window_returns_none(self):
        result = self._result_with_clocks([0, 1, 2])
        assert result.dip_recovery_cycles(window=1) is None
        assert result.dip_recovery_cycles(window=0) is None

    def test_window_widens_span_on_a_real_run(self):
        result = run_webserver(ft_mode="superglue", n_requests=120)
        narrow = result.dip_recovery_cycles(window=2)
        wide = result.dip_recovery_cycles(window=20)
        assert narrow is not None and wide is not None
        assert narrow < wide


class TestConcurrencyBound:
    """ab's "10 concurrent" bounds *outstanding* requests.

    Regression: the generator used to bound the unclaimed queue, letting
    up to ``concurrency + n_workers`` requests be in flight at once.
    Outstanding only ever grows at ``submit``, so spying there checks
    the invariant at every scheduler step.
    """

    @staticmethod
    def _spy_on_submit(monkeypatch):
        outstanding_at_submit = []
        original = WebServer.submit

        def spying(self, raw):
            outstanding_at_submit.append(self.outstanding)
            return original(self, raw)

        monkeypatch.setattr(WebServer, "submit", spying)
        return outstanding_at_submit

    def test_outstanding_never_exceeds_concurrency(self, monkeypatch):
        seen = self._spy_on_submit(monkeypatch)
        run_webserver(ft_mode="superglue", n_requests=150, concurrency=10)
        assert len(seen) == 150
        assert max(seen) <= 9  # after the submit: <= concurrency

    def test_bound_holds_under_faults(self, monkeypatch):
        seen = self._spy_on_submit(monkeypatch)
        run_webserver(
            ft_mode="superglue", n_requests=150, concurrency=10,
            with_faults=True, seed=3,
        )
        assert max(seen) <= 9

    def test_concurrency_one_serializes(self, monkeypatch):
        # Two workers must not let a second request in flight.
        seen = self._spy_on_submit(monkeypatch)
        run_webserver(
            ft_mode="none", n_requests=60, concurrency=1, n_workers=2
        )
        assert max(seen) == 0


class TestFaultAccounting:
    """Armed vs delivered faults are reported separately.

    Regression: only deliveries were counted, so a stalled injection
    schedule (fewer faults armed than requested) looked like a clean
    low-fault run.
    """

    def test_armed_reported_and_bounds_delivered(self):
        result = run_webserver(
            ft_mode="superglue", n_requests=300, with_faults=True, seed=3
        )
        assert result.faults_armed >= result.faults_injected
        assert 1 <= result.faults_armed <= 6

    def test_shortfall_warns_on_stderr(self, capsys):
        result = run_webserver(
            ft_mode="superglue", n_requests=40,
            with_faults=True, n_faults=50, seed=1,
        )
        assert result.faults_armed < 50
        assert "armed only" in capsys.readouterr().err

    def test_shortfall_warning_suppressible(self, capsys):
        run_webserver(
            ft_mode="superglue", n_requests=40,
            with_faults=True, n_faults=50, seed=1, warn_shortfall=False,
        )
        assert "armed only" not in capsys.readouterr().err


class TestQueueDiscipline:
    def test_pending_queue_is_a_deque(self):
        # Regression: a list popped from the head made the worker loop
        # O(queue length) per request.
        from repro.system import build_system

        server = WebServer(build_system(ft_mode="none"))
        assert isinstance(server.pending, deque)

    def test_service_wait_queues_are_deques(self):
        # Same audit for the other head-popped queues on the request
        # path: lock and event wait queues.
        from repro.composite.services.event import _EventState
        from repro.composite.services.lock import _LockState

        assert isinstance(_LockState().waiters, deque)
        assert isinstance(
            _EventState(parent=0, grp=0, creator="app0").waiters, deque
        )


class TestHangAndDurationReporting:
    """Terminal-condition accounting fixes in ``run_webserver``.

    Regressions: a run ending in ``SystemHang`` reported ``steps = 0``
    (hiding how much work the deadlocked run burned), and a run with no
    completed responses fell back to ``kernel.clock.now`` for its
    duration (crediting boot/arming/idle time as serving time, turning
    0 served into a plausible-looking tiny throughput).
    """

    @staticmethod
    def _prepared_system():
        from repro.system import build_system
        from repro.webserver.campaign import prepare_webserver

        system = build_system(ft_mode="superglue")
        prepare_webserver(system)
        return system

    def test_hang_reports_steps_actually_consumed(self, monkeypatch):
        from repro.errors import SystemHang

        system = self._prepared_system()
        real_run = system.run

        def run_then_hang(**kwargs):
            # Burn a real slice of the budget, then deadlock.  The
            # kernel folds the consumed steps into stats["steps"] on
            # the way out; run_webserver must surface them.
            real_run(max_steps=400)
            raise SystemHang("induced", component="kernel")

        monkeypatch.setattr(system, "run", run_then_hang)
        result = run_webserver(
            ft_mode="superglue", n_requests=50, system=system
        )
        assert result.crashed == "hang"
        assert result.steps == 400

    def test_no_progress_duration_is_zero(self, monkeypatch):
        from repro.errors import SystemHang

        system = self._prepared_system()

        def advance_clock_and_hang(**kwargs):
            # The clock moved (boot, arming, idling) but nothing was
            # ever served: duration must clamp to last progress (none).
            system.kernel.clock.now += 5_000_000
            raise SystemHang("induced", component="kernel")

        monkeypatch.setattr(system, "run", advance_clock_and_hang)
        result = run_webserver(
            ft_mode="superglue", n_requests=50, system=system
        )
        assert result.served == 0
        assert result.duration_cycles == 0
        assert result.throughput_rps == 0.0

    def test_duration_clamps_to_last_completion(self):
        # Fault-free closed-loop sanity: duration equals the last
        # progress sample, not whatever the clock reached afterwards.
        result = run_webserver(ft_mode="superglue", n_requests=40)
        assert result.duration_cycles == result.series[-1][0]


class TestOpenLoopRuns:
    @staticmethod
    def _spec(**kwargs):
        from repro.webserver.arrivals import ArrivalSpec

        defaults = dict(n_requests=150, load=1.5, phases="steady", seed=0)
        defaults.update(kwargs)
        return ArrivalSpec(**defaults)

    def test_underload_meets_slo(self):
        result = run_webserver(
            ft_mode="superglue",
            arrival_spec=self._spec(load=0.5),
            slo_us=500,
        )
        assert result.crashed is None
        assert result.served == result.requests
        assert result.slo_ok == result.requests
        assert result.slo_miss == 0
        assert result.goodput_rps == result.throughput_rps

    def test_overload_grows_queue_and_misses_slo(self):
        result = run_webserver(
            ft_mode="superglue",
            arrival_spec=self._spec(load=2.0),
            slo_us=500,
        )
        # Open loop: the queue is unbounded, so sustained 2x overload
        # must push outstanding far beyond any closed-loop cap...
        assert result.peak_outstanding > 20
        # ...and the latency tail must blow the SLO even though every
        # request is eventually served.
        assert result.served == result.requests
        assert 0 < result.slo_ok < result.requests
        assert result.goodput_rps < result.throughput_rps

    def test_latency_measured_from_arrival(self):
        # Back-dating: under overload, queueing delay dominates, so
        # per-request latencies must far exceed the fault-free
        # closed-loop service latency even at equal work.
        closed = run_webserver(ft_mode="superglue", n_requests=150)
        open_ = run_webserver(
            ft_mode="superglue", arrival_spec=self._spec(load=2.0)
        )
        assert max(open_.latencies) > 4 * max(closed.latencies)

    def test_open_loop_deterministic(self):
        spec = self._spec(load=1.8, phases="burst")
        a = run_webserver(ft_mode="superglue", arrival_spec=spec, slo_us=500)
        b = run_webserver(ft_mode="superglue", arrival_spec=spec, slo_us=500)
        assert a.latencies == b.latencies
        assert a.duration_cycles == b.duration_cycles
        assert a.peak_outstanding == b.peak_outstanding

    def test_weighted_requests_cost_more(self):
        # Same arrival count, heavier tail: total service time grows.
        light = run_webserver(
            ft_mode="superglue",
            arrival_spec=self._spec(weight_min=1, weight_max=1),
        )
        heavy = run_webserver(
            ft_mode="superglue",
            arrival_spec=self._spec(weight_min=8, weight_max=8),
        )
        assert heavy.served == light.served == 150
        assert sum(heavy.latencies) > sum(light.latencies)

    def test_faulted_open_loop_recovers(self):
        result = run_webserver(
            ft_mode="superglue",
            arrival_spec=self._spec(load=1.5),
            slo_us=500,
            with_faults=True,
            n_faults=2,
            seed=5,
            warn_shortfall=False,
        )
        assert result.faults_armed == 2
        assert result.served == result.requests
