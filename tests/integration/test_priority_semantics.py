"""On-demand recovery priority semantics (the T1 argument).

Section II-C: on-demand recovery runs "at the priority of the thread
accessing the descriptor", lessening priority-inversion interference on
high-priority work.  These tests demonstrate the property directly: a
high-priority thread's post-fault latency depends only on *its own*
descriptors, not on how much low-priority state the fault invalidated.
"""

from repro.composite.thread import Invoke
from repro.system import build_system


def _setup(n_low_prio_descriptors):
    system = build_system(ft_mode="superglue", recovery_mode="ondemand")
    kernel = system.kernel
    low = kernel.create_thread(
        "low", prio=9, home="app0", body_factory=lambda s, t: iter(())
    )
    high = kernel.create_thread(
        "high", prio=1, home="app1", body_factory=lambda s, t: iter(())
    )
    low_stub = system.stub("app0", "lock")
    high_stub = system.stub("app1", "lock")
    for __ in range(n_low_prio_descriptors):
        low_stub.invoke(kernel, low, "lock_alloc", ("app0",))
    high_lid = high_stub.invoke(kernel, high, "lock_alloc", ("app1",))
    return system, kernel, high, high_stub, high_lid


def _fault(kernel):
    kernel.vector_fault(
        kernel.component("lock"),
        type("F", (), {"kind": "assertion", "recoverable": True})(),
    )


class TestOnDemandPriority:
    def test_high_prio_latency_independent_of_low_prio_state(self):
        latencies = {}
        for n_low in (2, 40):
            system, kernel, high, stub, lid = _setup(n_low)
            kernel.current = high
            _fault(kernel)
            before = kernel.clock.now
            stub.invoke(kernel, high, "lock_take", ("app1", lid))
            latencies[n_low] = kernel.clock.now - before
        # The high-priority thread recovers only its own descriptor; forty
        # stale low-priority descriptors add nothing to its path.
        assert latencies[40] == latencies[2]

    def test_eager_mode_couples_latencies(self):
        """Contrast: eager recovery makes fault-time work grow with the
        amount of (anyone's) live state."""
        costs = {}
        for n_low in (2, 40):
            system = build_system(ft_mode="superglue", recovery_mode="eager")
            kernel = system.kernel
            low = kernel.create_thread(
                "low", prio=9, home="app0", body_factory=lambda s, t: iter(())
            )
            stub = system.stub("app0", "lock")
            for __ in range(n_low):
                stub.invoke(kernel, low, "lock_alloc", ("app0",))
            kernel.current = low
            before = kernel.clock.now
            _fault(kernel)
            costs[n_low] = kernel.clock.now - before
        assert costs[40] > costs[2] * 5

    def test_recovery_charged_to_accessing_thread(self):
        system, kernel, high, stub, lid = _setup(3)
        kernel.current = high
        _fault(kernel)
        cycles_before = high.cycles
        stub.invoke(kernel, high, "lock_take", ("app1", lid))
        # The walk's invocations are charged to the accessing thread.
        assert high.cycles > cycles_before


class TestSchedulingOrderAfterFault:
    def test_high_prio_thread_runs_first_after_t0_wakeup(self):
        """After a fault wakes blocked threads, the run queue still serves
        strictly by priority — recovery work does not jump the queue."""
        system = build_system(ft_mode="superglue")
        kernel = system.kernel
        order = []

        def hi_body(sys_, thread):
            lid = yield Invoke("lock", "lock_alloc", "app0")
            yield Invoke("lock", "lock_take", "app0", lid)
            order.append("high")

        def lo_body(sys_, thread):
            lid = yield Invoke("lock", "lock_alloc", "app0")
            yield Invoke("lock", "lock_take", "app0", lid)
            order.append("low")

        kernel.create_thread("lo", prio=9, home="app0", body_factory=lo_body)
        kernel.create_thread("hi", prio=1, home="app0", body_factory=hi_body)
        kernel.run(max_steps=100)
        assert order[0] == "high"
