"""Edge cases of the recovery machinery."""

import pytest

from repro.errors import RecoveryError
from repro.system import build_system


@pytest.fixture
def system():
    return build_system(ft_mode="superglue")


@pytest.fixture
def thread(system):
    return system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


class TestEventPendingAcrossFault:
    def test_pending_triggers_survive_reboot(self, system, thread):
        """A trigger that raced the fault is not lost (G1 for events)."""
        kernel = system.kernel
        stub = system.stub("app0", "event")
        evtid = stub.invoke(kernel, thread, "evt_split", ("app0", 0, 9))
        stub.invoke(kernel, thread, "evt_trigger", ("app0", evtid))
        stub.invoke(kernel, thread, "evt_trigger", ("app0", evtid))
        kernel.component("event").micro_reboot()
        # Both pending triggers must still be consumable without blocking.
        assert stub.invoke(kernel, thread, "evt_wait", ("app0", evtid)) == 0
        assert stub.invoke(kernel, thread, "evt_wait", ("app0", evtid)) == 0

    def test_event_free_after_reboot(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "event")
        evtid = stub.invoke(kernel, thread, "evt_split", ("app0", 0, 9))
        kernel.component("event").micro_reboot()
        assert stub.invoke(kernel, thread, "evt_free", ("app0", evtid)) == 0
        assert stub.table.lookup(evtid) is None


class TestClosedDescriptors:
    def test_closed_descriptor_not_recovered(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_free", ("app0", lid))
        kernel.component("lock").micro_reboot()
        # Recovery of the surviving set is empty.
        assert stub.recover_all(kernel, thread) == 0
        assert len(kernel.component("lock").locks) == 0

    def test_terminated_mid_epoch_then_other_recovers(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        a = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        b = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        kernel.component("lock").micro_reboot()
        stub.invoke(kernel, thread, "lock_free", ("app0", a))
        assert stub.invoke(kernel, thread, "lock_take", ("app0", b)) == 0


class TestDeepParentChains:
    def test_three_level_alias_chain_recovers_root_first(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "mm")
        stub.invoke(kernel, thread, "mman_get_page", ("app0", 0x4000))
        stub.invoke(
            kernel, thread, "mman_alias_page", ("app0", 0x4000, "app0", 0x8000)
        )
        stub.invoke(
            kernel, thread, "mman_alias_page", ("app0", 0x8000, "app0", 0xC000)
        )
        kernel.component("mm").micro_reboot()
        # Touching the leaf forces root -> middle -> leaf recovery (D1).
        assert (
            stub.invoke(kernel, thread, "mman_release_page", ("app0", 0xC000))
            == 0
        )
        mm = kernel.component("mm")
        assert mm.has_mapping("app0", 0x4000)
        assert mm.has_mapping("app0", 0x8000)
        assert not mm.has_mapping("app0", 0xC000)
        # Tree wiring is intact after the partial recovery.
        assert mm.parent_of("app0", 0x8000) == ("app0", 0x4000)

    def test_deep_ramfs_path_chain(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "ramfs")
        d1 = stub.invoke(kernel, thread, "tsplit", ("app0", 1, "a"))
        d2 = stub.invoke(kernel, thread, "tsplit", ("app0", d1, "b"))
        fd = stub.invoke(kernel, thread, "tsplit", ("app0", d2, "c.txt"))
        stub.invoke(kernel, thread, "twrite", ("app0", fd, b"deep"))
        kernel.component("ramfs").micro_reboot()
        stub.invoke(kernel, thread, "tseek", ("app0", fd, 0))
        assert stub.invoke(kernel, thread, "tread", ("app0", fd, 4)) == b"deep"
        assert kernel.component("ramfs").path_of(
            stub.table.lookup(fd).sid
        ) == "/a/b/c.txt"


class TestMultipleClients:
    def test_two_clients_recover_independently(self, system):
        kernel = system.kernel
        t0 = kernel.create_thread(
            "t0", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        t1 = kernel.create_thread(
            "t1", prio=1, home="app1", body_factory=lambda s, t: iter(())
        )
        stub0 = system.stub("app0", "lock")
        stub1 = system.stub("app1", "lock")
        lid0 = stub0.invoke(kernel, t0, "lock_alloc", ("app0",))
        lid1 = stub1.invoke(kernel, t1, "lock_alloc", ("app1",))
        kernel.component("lock").micro_reboot()
        assert stub0.invoke(kernel, t0, "lock_take", ("app0", lid0)) == 0
        assert stub1.invoke(kernel, t1, "lock_take", ("app1", lid1)) == 0
        lock = kernel.component("lock")
        assert lock.owner_of(stub0.table.lookup(lid0).sid) == t0.tid
        assert lock.owner_of(stub1.table.lookup(lid1).sid) == t1.tid


class TestWalkFailureModes:
    def test_unreachable_state_raises_recovery_error(self, system):
        compiled = system.compiled["lock"]
        with pytest.raises(RecoveryError):
            compiled.ir.sm.recovery_walk("no_such_state")

    def test_repeated_epoch_bumps_retranslate(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))  # occupy id 2
        for __ in range(3):
            kernel.component("lock").micro_reboot()
            assert stub.invoke(kernel, thread, "lock_take", ("app0", lid)) == 0
            assert (
                stub.invoke(kernel, thread, "lock_release", ("app0", lid)) == 0
            )
        entry = stub.table.lookup(lid)
        assert entry.recovered_epoch == 3
