"""Integration tests for the SWIFI campaign machinery (Table II)."""

import pytest

from repro.swifi import SwifiController
from repro.swifi.campaign import CampaignRunner, format_table2, run_full_campaign
from repro.swifi.classify import Outcome, OutcomeCounter
from repro.system import build_system


class TestInjector:
    def test_arm_defaults_random_reg_bit(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=1)
        plan = swifi.arm("lock")
        assert 0 <= plan.reg < 8
        assert 0 <= plan.bit < 32

    def test_fault_mask_restricts_bits(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=1, fault_mask=0x1)
        for __ in range(10):
            assert swifi.arm("lock").bit == 0

    def test_empty_mask_rejected(self):
        system = build_system(ft_mode="superglue")
        with pytest.raises(ValueError):
            SwifiController(system.kernel, seed=1, fault_mask=0)

    def test_injection_only_in_target_component(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=1)
        swifi.arm("event")  # never exercised by the lock workload
        from repro.workloads import workload_for

        workload_for("lock").install(system, iterations=2)
        system.run(max_steps=20_000)
        assert swifi.delivered_count == 0
        assert swifi.pending is not None

    def test_after_executions_delays_delivery(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=1)
        swifi.arm("lock", after_executions=3)
        from repro.workloads import workload_for

        workload_for("lock").install(system, iterations=3)
        system.run(max_steps=40_000)
        assert swifi.pending is None  # consumed eventually
        assert swifi.delivered_count == 1

    def test_disarm(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=1)
        swifi.arm("lock")
        swifi.disarm()
        assert swifi.pending is None


class TestOutcomeCounter:
    def test_ratios(self):
        counter = OutcomeCounter()
        for __ in range(8):
            counter.add(Outcome.RECOVERED)
        counter.add(Outcome.NOT_RECOVERED_SEGFAULT)
        counter.add(Outcome.UNDETECTED)
        assert counter.injected == 10
        assert counter.activated == 9
        assert counter.recovered == 8
        assert counter.activation_ratio == pytest.approx(0.9)
        assert counter.recovery_success_rate == pytest.approx(8 / 9)

    def test_empty_counter(self):
        counter = OutcomeCounter()
        assert counter.activation_ratio == 0.0
        assert counter.recovery_success_rate == 0.0

    def test_outcome_activated_flags(self):
        assert not Outcome.UNDETECTED.activated
        assert Outcome.RECOVERED.activated
        assert Outcome.NOT_RECOVERED_OTHER.activated


class TestCampaignRunner:
    def test_calibration_counts_traces(self):
        runner = CampaignRunner("lock", n_faults=1, seed=0)
        horizon = runner.calibrate()
        assert horizon > 0

    def test_small_campaign_classifies_everything(self):
        runner = CampaignRunner("lock", n_faults=20, seed=3)
        result = runner.run()
        assert result.injected == 20
        row = result.row()
        total = (
            row["recovered"]
            + row["not_recovered_segfault"]
            + row["not_recovered_propagated"]
            + row["not_recovered_other"]
            + row["undetected"]
        )
        assert total == 20

    def test_campaign_mostly_recovers(self):
        runner = CampaignRunner("timer", n_faults=25, seed=4)
        result = runner.run()
        assert result.counter.recovery_success_rate >= 0.6

    def test_progress_callback(self):
        seen = []
        runner = CampaignRunner("lock", n_faults=3, seed=5)
        runner.run(progress=lambda i, n, o: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_full_campaign_and_formatting(self):
        results = run_full_campaign(
            services=["lock", "timer"], n_faults=8, seed=6
        )
        table = format_table2(results)
        assert "lock" in table and "timer" in table
        assert "Recovered" in table

    def test_unprotected_mode_crashes_instead(self):
        runner = CampaignRunner("lock", ft_mode="none", n_faults=10, seed=7)
        result = runner.run()
        # Without recovery, activated faults are never recovered.
        assert result.counter.recovered == 0
        assert result.counter.activated > 0
