"""End-to-end recovery: every service, both stub flavours, forced faults."""

import pytest

from repro.idl_specs import SERVICES
from repro.swifi import SwifiController
from repro.system import build_system
from repro.workloads import WORKLOADS, workload_for


@pytest.mark.parametrize("mode", ["c3", "superglue"])
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
class TestFaultFree:
    def test_workload_passes_without_faults(self, mode, workload_name):
        system = build_system(ft_mode=mode)
        handle = WORKLOADS[workload_name].install(system, iterations=3)
        system.run(max_steps=30_000)
        assert system.kernel.crashed is None
        assert handle.check(), handle.results


@pytest.mark.parametrize("mode", ["c3", "superglue"])
@pytest.mark.parametrize("service", SERVICES)
class TestForcedFaultRecovery:
    def test_recovers_from_multiple_seeds(self, mode, service):
        """Across seeds, faults either recover or fail in sanctioned ways."""
        recovered = 0
        for seed in range(12):
            system = build_system(ft_mode=mode)
            swifi = SwifiController(system.kernel, seed=seed)
            handle = workload_for(service).install(system, iterations=4)
            swifi.arm(service, after_executions=seed % 6)
            try:
                system.run(max_steps=80_000)
            except Exception:
                continue  # unrecoverable outcomes are allowed, just counted
            if system.kernel.crashed is not None:
                continue
            if system.booter.reboots > 0 and handle.check():
                recovered += 1
        # The overwhelming majority of activated faults must recover
        # (Table II: 88-96% success).
        assert recovered >= 6, f"{service}/{mode}: only {recovered}/12 recovered"


class TestMicroRebootSemantics:
    def test_reboot_log_records_faults(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=0)
        handle = workload_for("ramfs").install(system, iterations=4)
        swifi.arm("ramfs", after_executions=2)
        system.run(max_steps=80_000)
        if system.booter.reboots:
            clock, name, kind = system.booter.reboot_log[0]
            assert name == "ramfs"
            assert kind in ("assertion", "corruption", "segfault")

    def test_t0_wakes_blocked_threads(self):
        system = build_system(ft_mode="superglue")
        kernel = system.kernel
        handle = workload_for("lock").install(system, iterations=2)
        # Run a little, then force a reboot while a thread contends.
        kernel.run(max_steps=6)
        blocked_before = kernel.blocked_threads_in("lock")
        kernel.vector_fault(
            kernel.component("lock"),
            type("F", (), {"kind": "assertion", "recoverable": True})(),
        )
        if blocked_before:
            assert not kernel.blocked_threads_in("lock")
        kernel.run(max_steps=30_000)
        assert handle.check(), handle.results

    def test_recovery_counts_in_manager(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=3)
        handle = workload_for("lock").install(system, iterations=4)
        swifi.arm("lock", after_executions=3)
        system.run(max_steps=80_000)
        if system.booter.reboots and handle.check():
            assert system.recovery_manager.total_recoveries >= 1

    def test_eager_mode_recovers_all_descriptors_at_reboot(self):
        system = build_system(ft_mode="superglue", recovery_mode="eager")
        kernel = system.kernel
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        stub = system.stub("app0", "lock")
        for __ in range(3):
            stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        kernel.current = thread
        kernel.vector_fault(
            kernel.component("lock"),
            type("F", (), {"kind": "assertion", "recoverable": True})(),
        )
        # All three descriptors were recovered eagerly at fault time.
        assert system.recovery_manager.total_recoveries == 3

    def test_ondemand_mode_defers_recovery(self):
        system = build_system(ft_mode="superglue", recovery_mode="ondemand")
        kernel = system.kernel
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        stub = system.stub("app0", "lock")
        lids = [
            stub.invoke(kernel, thread, "lock_alloc", ("app0",))
            for __ in range(3)
        ]
        kernel.current = thread
        kernel.vector_fault(
            kernel.component("lock"),
            type("F", (), {"kind": "assertion", "recoverable": True})(),
        )
        assert system.recovery_manager.total_recoveries == 0
        # Touching one descriptor recovers exactly that one (T1).
        stub.invoke(kernel, thread, "lock_take", ("app0", lids[0]))
        assert system.recovery_manager.total_recoveries == 1


class TestRepeatedFaults:
    @pytest.mark.parametrize("service", ["lock", "ramfs", "event"])
    def test_two_faults_in_sequence(self, service):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=5)
        handle = workload_for(service).install(system, iterations=6)

        fired = {"n": 0}

        def rearm(component, fault):
            if fired["n"] < 1:
                fired["n"] += 1
                swifi.arm(service, after_executions=3)

        system.kernel.fault_observers.append(rearm)
        swifi.arm(service, after_executions=2)
        try:
            system.run(max_steps=120_000)
        except Exception:
            return  # unrecoverable outcome: allowed
        if system.kernel.crashed is None and system.booter.reboots >= 2:
            assert handle.check(), handle.results
