"""System pooling: seal once per process, dirty-restore per run.

The correctness bar for the pool is absolute: a restored system must be
*structurally indistinguishable* from a fresh ``build_system`` — same
image bytes, same allocator positions, same kernel counters, same stub
tables — because campaign outcomes are classified from exactly that
state.  These tests drive real faulty runs through pooled systems and
verify both the structural invariant and outcome bit-identity.
"""

import pytest

from repro import observe
from repro.swifi.campaign import (
    CampaignRunner,
    _campaign_system,
    execute_run,
)
from repro.system import (
    GLOBAL_POOL,
    SystemPool,
    SystemSnapshot,
    build_system,
    pooling_enabled,
    system_fingerprint,
    system_snapshot,
)
from repro.errors import ReproError


def _lock_spec(seed=3, iterations=4):
    runner = CampaignRunner("lock", n_faults=0, seed=seed,
                            iterations=iterations)
    return runner.spec()


class TestRestoreEqualsFresh:
    @pytest.mark.parametrize("ft_mode", ["superglue", "c3", "none"])
    def test_clean_restore_matches_fresh_build(self, ft_mode):
        snapshot = SystemSnapshot(build_system(ft_mode))
        snapshot.restore()
        assert snapshot.diff_against_fresh() == []

    def test_restore_after_faulty_runs_matches_fresh(self):
        spec = _lock_spec()
        pool = SystemPool()
        system = pool.acquire(ft_mode=spec.ft_mode,
                              recovery_mode=spec.recovery_mode)
        snapshot = pool._snapshots[(spec.ft_mode,
                                    tuple(system.apps),
                                    spec.recovery_mode,
                                    None,
                                    None)]
        # Dirty the pooled system with real injection runs, then restore.
        from repro.swifi.injector import SwifiController
        from repro.workloads import workload_for

        for run_seed in (11, 12, 13):
            swifi = SwifiController(system.kernel, seed=run_seed)
            handle = workload_for("lock").install(system, iterations=4)
            swifi.arm("lock", after_executions=run_seed % spec.horizon)
            try:
                system.run(max_steps=60_000)
            except Exception:
                pass
            snapshot.restore()
        assert snapshot.diff_against_fresh() == []

    def test_fingerprint_detects_divergence(self):
        # The debug diff must actually have teeth: rig the sealed system
        # and check the fingerprint comparison catches it.
        snapshot = SystemSnapshot(build_system("superglue"))
        snapshot.restore()
        snapshot.system.kernel.stats["invocations"] = 999
        diffs = snapshot.diff_against_fresh()
        assert any("invocations" in d for d in diffs)

    def test_pool_debug_mode_raises_on_divergence(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        pool = SystemPool()
        system = pool.acquire(ft_mode="superglue")
        # First acquire builds; poison durable state that a restore will
        # not repair (sealed storage copy), then re-acquire.
        storage = system.kernel.component("storage")
        storage._sealed_data[("rigged", "key")] = 1
        with pytest.raises(ReproError, match="diverged"):
            pool.acquire(ft_mode="superglue")


class TestDirtyUnderFaults:
    def test_taint_always_on_dirty_pages(self):
        # Under injected runs, every tainted word must lie on a dirty
        # page — that is what makes the O(dirty) restore provably clear
        # all corruption.
        spec = _lock_spec()
        pool = SystemPool()
        system = pool.acquire(ft_mode=spec.ft_mode,
                              recovery_mode=spec.recovery_mode)
        from repro.swifi.injector import SwifiController
        from repro.workloads import workload_for

        swifi = SwifiController(system.kernel, seed=5)
        workload_for("lock").install(system, iterations=4)
        swifi.arm("lock", after_executions=2)
        try:
            system.run(max_steps=60_000)
        except Exception:
            pass
        checked_words = 0
        for component in system.kernel.components.values():
            image = component.image
            for index, bit in enumerate(image._taint):
                if bit:
                    assert image.is_page_dirty(index)
                    checked_words += 1
            # A run writes a tiny fraction of each 16K-word image.
            assert image.dirty_page_count < len(image._dirty)

    def test_restore_cost_tracks_dirtiness(self):
        system = build_system("superglue")
        lock = system.kernel.component("lock")
        snapshot = system_snapshot(system)
        lock.image.write_word(lock.image.base + 40, 7)
        snapshot.restore()
        # Only the handful of pages reinit touches plus the one we wrote
        # come back — not the whole 64-page image.
        assert lock.image.dirty_page_count < 8


class TestPoolGate:
    def test_pooling_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SYSTEM_POOL", raising=False)
        assert pooling_enabled()

    def test_gate_disables_pooling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        assert not pooling_enabled()
        spec = _lock_spec()
        a = _campaign_system(spec.ft_mode, spec.recovery_mode)
        b = _campaign_system(spec.ft_mode, spec.recovery_mode)
        assert a is not b

    def test_pooled_systems_are_reused(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        before = GLOBAL_POOL.stats["restores"]
        a = _campaign_system("superglue", "ondemand")
        b = _campaign_system("superglue", "ondemand")
        assert a is b
        assert GLOBAL_POOL.stats["restores"] > before

    def test_traced_runs_bypass_pool(self, monkeypatch):
        # Warm trace caches change cache-hit counters that traced runs
        # fold into their per-run metrics; trace artifacts must stay
        # byte-identical serial vs parallel, so tracing forces a fresh
        # build.
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        pooled = _campaign_system("superglue", "ondemand")
        with observe.tracing(True):
            traced = _campaign_system("superglue", "ondemand")
        assert traced is not pooled


class TestOutcomeInvariance:
    def test_pooled_matches_fresh_over_100_run_sweep(self, monkeypatch):
        spec = _lock_spec(seed=3)
        seeds = [3 * 1_000_003 + i for i in range(100)]
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        fresh = [execute_run(spec, s) for s in seeds]
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        pooled = [execute_run(spec, s) for s in seeds]
        assert pooled == fresh
        # The sweep must exercise more than one outcome class for the
        # comparison to mean anything.
        assert len(set(fresh)) > 1
