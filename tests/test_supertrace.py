"""Differential tests for the tier-3 super-trace engine.

The engine's contract is absolute: with ``REPRO_SUPER_TRACE=1`` a
campaign must produce *exactly* the outcomes the two-tier authoritative
path produces — replay is a cache of the clean invocation sequence, and
anything the cache cannot prove identical (injections, taint, parked
threads, diverged clocks) must bypass to ``execute_trace``.  These
tests drive real campaigns through every gate combination and check
outcome identity, bypass accounting, pool-debug fingerprints, and the
zero-copy worker payload contract.
"""

import pickle

import pytest

from repro import observe
from repro.composite.supertrace import (
    REGISTRY,
    RecordingSession,
    ReplaySession,
    super_trace_enabled,
)
from repro.swifi import campaign as swifi_campaign
from repro.swifi import parallel
from repro.swifi.campaign import CampaignRunner, execute_run
from repro.system import GLOBAL_POOL, build_system
from repro.webserver.campaign import (
    WebRunSpec,
    execute_web_run,
    web_run_seeds,
)


def _lock_runner(n_faults=12, seed=1):
    return CampaignRunner("lock", n_faults=n_faults, seed=seed)


def _sweep(spec, seeds):
    return [execute_run(spec, seed).value for seed in seeds]


def _pooled_kernel(spec):
    system = GLOBAL_POOL.peek(
        ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
    )
    assert system is not None, "campaign should have populated the pool"
    return system.kernel


class TestGating:
    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        assert not super_trace_enabled()
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        assert super_trace_enabled()

    def test_disabled_means_no_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        spec = _lock_runner().spec()
        assert swifi_campaign._campaign_recording(spec) is None

    def test_fresh_build_means_no_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        spec = _lock_runner().spec()
        assert swifi_campaign._campaign_recording(spec) is None

    def test_traced_runs_mean_no_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        spec = _lock_runner().spec()
        with observe.tracing(True):
            assert swifi_campaign._campaign_recording(spec) is None


class TestOutcomeIdentity:
    """REPRO_SUPER_TRACE=0 and =1 must be outcome-for-outcome identical."""

    @pytest.mark.parametrize("fault_class", ["reg", "mem", "idl", "burst"])
    def test_injected_campaign_identical(self, monkeypatch, fault_class):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        runner = CampaignRunner(
            "lock", n_faults=12, seed=1, fault_class=fault_class
        )
        spec = runner.spec()
        seeds = runner.run_seeds()
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        baseline = _sweep(spec, seeds)
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        assert _sweep(spec, seeds) == baseline

    def test_clean_workload_identical(self, monkeypatch):
        # A fault-free workload (web campaign with n_faults=0) must
        # replay to byte-identical rows — the pure-cache case.
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        spec = WebRunSpec(ft_mode="superglue", n_requests=80, n_faults=0)
        seeds = web_run_seeds(2, 3)
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        baseline = [execute_web_run(spec, s) for s in seeds]
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        assert [execute_web_run(spec, s) for s in seeds] == baseline
        assert {row["outcome"] for row in baseline} == {"ok"}

    def test_web_campaign_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        spec = WebRunSpec(ft_mode="superglue", n_requests=120, n_faults=3)
        seeds = web_run_seeds(1, 3)
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        baseline = [execute_web_run(spec, s) for s in seeds]
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        assert [execute_web_run(spec, s) for s in seeds] == baseline


class TestReplayAccounting:
    def test_replay_engages_and_injections_bypass(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        runner = _lock_runner()
        spec = runner.spec()
        kernel = None
        for seed in runner.run_seeds():
            execute_run(spec, seed)
            kernel = kernel or _pooled_kernel(spec)
        stats = _pooled_kernel(spec).stats
        # Replayed units prove the tier-3 engine ran; divergences and
        # divergent units prove injections never took the replay
        # shortcut — each injected run leaves the prefix exactly once
        # and executes its post-divergence units authoritatively (or
        # through the separately counted tail cache).
        assert stats["super_trace_runs"] > 0
        assert stats["super_trace_divergences"] > 0
        assert stats["super_trace_divergent_units"] > 0

    def test_two_tier_mode_never_counts_super_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        runner = _lock_runner(seed=5)
        spec = runner.spec()
        for seed in runner.run_seeds()[:4]:
            execute_run(spec, seed)
        stats = _pooled_kernel(spec).stats
        assert stats["super_trace_runs"] == 0
        assert stats["super_trace_bypasses"] == 0

    def test_pool_debug_clean_after_supertraced_runs(self, monkeypatch):
        # Every restore after a super-traced run must still produce a
        # system structurally identical to a fresh build.
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        runner = _lock_runner(n_faults=8, seed=7)
        spec = runner.spec()
        for seed in runner.run_seeds():
            execute_run(spec, seed)  # raises ReproError on divergence

    def test_failed_recording_falls_back_authoritative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setattr(
            swifi_campaign, "_build_recording",
            lambda spec, instance=None: None,
        )
        REGISTRY.clear()
        runner = _lock_runner(n_faults=6, seed=9)
        spec = runner.spec()
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        baseline = _sweep(spec, runner.run_seeds())
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        assert _sweep(spec, runner.run_seeds()) == baseline
        assert swifi_campaign._campaign_recording(spec) is None


class TestTailReplay:
    """The divergence-tail cache: byte-identical gated off, engaged and
    shared when on, and never counted when disabled."""

    def _coverage_sweep(self, spec, seeds):
        coverage = dict.fromkeys(swifi_campaign.COVERAGE_KEYS, 0)
        outcomes = []
        for seed in seeds:
            outcome, system, __, __, __ = swifi_campaign._drive_run(
                spec, seed
            )
            outcomes.append(outcome.value)
            swifi_campaign.collect_coverage(system.kernel, coverage)
        return outcomes, coverage

    @pytest.mark.parametrize("fault_class", ["reg", "mem", "idl", "burst"])
    def test_outcomes_identical_with_tails(self, monkeypatch, fault_class):
        # The acceptance bar: REPRO_TAIL_REPLAY=0 and =1 are
        # outcome-for-outcome identical per fault class — cold cache
        # (recording tails) and warm cache (replaying them) both.
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        runner = CampaignRunner(
            "lock", n_faults=15, seed=2, fault_class=fault_class
        )
        spec = runner.spec()
        seeds = runner.run_seeds()
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "0")
        baseline = _sweep(spec, seeds)
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "1")
        assert _sweep(spec, seeds) == baseline  # cold: records tails
        assert _sweep(spec, seeds) == baseline  # warm: replays them

    def test_tail_cache_records_then_replays(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "1")
        REGISTRY.clear()  # earlier tests share this spec's tail cache
        runner = _lock_runner(n_faults=20, seed=3)
        spec = runner.spec()
        seeds = runner.run_seeds()
        first, cold = self._coverage_sweep(spec, seeds)
        second, warm = self._coverage_sweep(spec, seeds)
        assert second == first
        assert cold["super_trace_tail_records"] > 0
        # Same seeds, same divergence signatures: the second pass finds
        # every tail already recorded and replays instead of recording.
        assert warm["super_trace_tail_records"] == 0
        assert warm["super_trace_tail_runs"] >= cold["super_trace_tail_runs"]
        assert warm["super_trace_tail_runs"] > 0
        assert swifi_campaign.coverage_ratio(warm) > (
            swifi_campaign.coverage_ratio(dict(warm, super_trace_tail_runs=0))
        )

    def test_gate_off_means_no_tail_accounting(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "0")
        runner = _lock_runner(n_faults=10, seed=6)
        spec = runner.spec()
        __, coverage = self._coverage_sweep(spec, runner.run_seeds())
        assert coverage["super_trace_tail_runs"] == 0
        assert coverage["super_trace_tail_records"] == 0

    def test_tail_replay_under_pool_debug(self, monkeypatch):
        # Every restore after a tail-replayed run must still produce a
        # system structurally identical to a fresh build — tail replay
        # applies recorded effects, never invents state.
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "1")
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        runner = _lock_runner(n_faults=8, seed=11)
        spec = runner.spec()
        for seed in runner.run_seeds() * 2:  # cold then warm
            execute_run(spec, seed)  # raises ReproError on divergence


class TestRecordingEvent:
    def test_super_trace_record_event_schema(self):
        # The seal event must validate against the declared schema and
        # carry the unit accounting the timeline renderer formats.
        with observe.tracing(True):
            system = build_system(ft_mode="superglue")
            session = RecordingSession(system.kernel)
            recording = session.finish({"service": "lock"})
        assert recording is not None
        events = [
            e for e in system.kernel.recorder.events()
            if e["event"] == "super_trace_record"
        ]
        assert len(events) == 1
        assert events[0]["data"] == {
            "units": 0, "replayable": 0, "service": "lock",
        }


class TestZeroCopyWorkers:
    def test_chunk_payload_is_seeds_only(self):
        # The submitted payload is (function-by-reference, seed list):
        # campaign parameters travel through the initializer exactly
        # once per process, never per chunk.
        seeds = list(range(200))
        payload = pickle.dumps((parallel._execute_chunk, (seeds,)))
        overhead = len(payload) - len(pickle.dumps(seeds))
        assert overhead < 150
        assert b"RunSpec" not in payload

    def test_start_method_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_START", "spawn")
        assert parallel.worker_start_method() == "spawn"
        monkeypatch.delenv("REPRO_WORKER_START")
        assert parallel.worker_start_method() in ("fork", "spawn")

    def test_fork_unavailable_falls_back_to_spawn(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_START", "fork")
        monkeypatch.setattr(
            parallel.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        assert parallel.worker_start_method() == "spawn"

    def test_in_process_path_runs_initializer(self):
        calls = []
        batches = []
        parallel.fan_out_chunks(
            lambda seeds: seeds,
            [1, 2, 3],
            workers=1,
            initializer=lambda *a: calls.append(a),
            initargs=("spec", False),
            on_batch=batches.append,
        )
        assert calls == [("spec", False)]
        assert batches == [[1], [2], [3]]

    @pytest.mark.parametrize("start", ["fork", "spawn"])
    def test_parallel_identical_to_serial(self, monkeypatch, start):
        import multiprocessing

        if start not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start} start method unavailable")
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        runner = _lock_runner(n_faults=8, seed=4)
        spec = runner.spec()
        seeds = runner.run_seeds()
        serial = parallel.run_campaign(spec, seeds, workers=1)
        monkeypatch.setenv("REPRO_WORKER_START", start)
        fanned = parallel.run_campaign(spec, seeds, workers=2)
        assert fanned.counts == serial.counts
