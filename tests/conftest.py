"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.system import build_system, compile_all_interfaces

# Hypothesis profiles, selected via HYPOTHESIS_PROFILE:
#   ci      — derandomized: PR checks are reproducible and flake-free;
#             the example corpus is fixed, so a red run is a real bug.
#   nightly — randomized with a larger example budget: the nightly
#             campaign workflow spends fresh entropy hunting for inputs
#             the derandomized corpus can't reach.  Failures upload the
#             .hypothesis example database as an artifact.
#   dev     — local default: randomized, no deadline (pooled system
#             boots make first examples slow).
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    derandomize=False,
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def compiled():
    """All six service interfaces, compiled once per session."""
    return compile_all_interfaces()


@pytest.fixture
def sg_system():
    """A fresh system with SuperGlue-generated stubs."""
    return build_system(ft_mode="superglue")


@pytest.fixture
def c3_system():
    """A fresh system with hand-written C^3 stubs."""
    return build_system(ft_mode="c3")


@pytest.fixture
def bare_system():
    """A fresh system with no fault tolerance."""
    return build_system(ft_mode="none")


@pytest.fixture(params=["c3", "superglue"])
def ft_system(request):
    """Parametrised over both fault-tolerant stub flavours."""
    return build_system(ft_mode=request.param)
