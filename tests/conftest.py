"""Shared fixtures for the test suite."""

import pytest

from repro.system import build_system, compile_all_interfaces


@pytest.fixture(scope="session")
def compiled():
    """All six service interfaces, compiled once per session."""
    return compile_all_interfaces()


@pytest.fixture
def sg_system():
    """A fresh system with SuperGlue-generated stubs."""
    return build_system(ft_mode="superglue")


@pytest.fixture
def c3_system():
    """A fresh system with hand-written C^3 stubs."""
    return build_system(ft_mode="c3")


@pytest.fixture
def bare_system():
    """A fresh system with no fault tolerance."""
    return build_system(ft_mode="none")


@pytest.fixture(params=["c3", "superglue"])
def ft_system(request):
    """Parametrised over both fault-tolerant stub flavours."""
    return build_system(ft_mode=request.param)
