"""Smoke tests: every example script runs to a successful exit."""

import os
import subprocess
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=240):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "workload correct     : True" in out

    def test_custom_service(self):
        out = run_example("custom_service.py")
        assert "queue recovered transparently: OK" in out

    def test_fault_injection_campaign(self):
        out = run_example("fault_injection_campaign.py", "10")
        assert "SuccRate" in out

    def test_webserver_demo(self):
        out = run_example("webserver_demo.py", "120")
        assert "apache (model)" in out
        assert "slowdown" in out

    def test_latent_fault_monitor(self):
        out = run_example("latent_fault_monitor.py")
        assert "speedup" in out

    def test_embedded_sensor_logger(self):
        out = run_example("embedded_sensor_logger.py")
        assert "pipeline survived system-service faults: OK" in out
