"""Histogram shapes: clamped counting, log-linear sub-buckets, merges."""

import pytest

from repro.observe.events import SCHEMA_VERSION
from repro.observe.metrics import (
    SUB_BUCKET_BITS,
    Histogram,
    LogLinearHistogram,
    MetricsRegistry,
    bucket_bounds,
    canonical_metrics,
    merge_metrics,
)


class TestClampedObservations:
    def test_negative_clamps_to_zero_and_counts(self):
        h = Histogram()
        h.observe(-5)
        h.observe(3)
        assert h.count == 2
        assert h.clamped == 1
        assert h.min == 0
        assert h.buckets.get(0) == 1  # the clamped sample landed in 0

    def test_clamped_serializes(self):
        h = Histogram()
        h.observe(-1)
        assert h.to_dict()["clamped"] == 1

    def test_pool_debug_raises_instead(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        h = Histogram()
        with pytest.raises(AssertionError, match="negative"):
            h.observe(-1)

    def test_merge_sums_clamped(self):
        a = Histogram()
        a.observe(-1)
        b = Histogram()
        b.observe(-2)
        b.observe(-3)
        merged = {"histograms": {"h": a.to_dict()}}
        merge_metrics(merged, {"histograms": {"h": b.to_dict()}})
        assert merged["histograms"]["h"]["clamped"] == 3

    def test_merge_tolerates_v1_serializations(self):
        # Pre-clamped (schema v1) dicts have no "clamped" key; merging
        # them must not KeyError and must treat them as 0.
        v1 = {"count": 1, "total": 4, "min": 4, "max": 4, "buckets": {"3": 1}}
        merged = {}
        merge_metrics(merged, {"histograms": {"h": dict(v1)}})
        merge_metrics(merged, {"histograms": {"h": dict(v1)}})
        assert merged["histograms"]["h"]["clamped"] == 0
        assert merged["histograms"]["h"]["count"] == 2

    def test_schema_version_bumped_for_clamped(self):
        assert SCHEMA_VERSION >= 2


class TestLogLinearHistogram:
    def test_small_values_exact(self):
        h = LogLinearHistogram()
        for v in range(1 << SUB_BUCKET_BITS):
            assert h._index(v) == v
            assert bucket_bounds(v, SUB_BUCKET_BITS) == (v, v)

    def test_bounds_invert_index(self):
        h = LogLinearHistogram()
        for v in [0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1025,
                  12_345, 1_200_000, 2**31 - 1, 2**40 + 7]:
            index = h._index(v)
            lower, upper = bucket_bounds(index, SUB_BUCKET_BITS)
            assert lower <= v <= upper, (v, index, lower, upper)

    def test_relative_error_bounded(self):
        h = LogLinearHistogram()
        for v in [40, 777, 9_999, 123_456, 10**9]:
            lower, upper = bucket_bounds(h._index(v), SUB_BUCKET_BITS)
            assert (upper - lower + 1) / lower <= 2 ** -SUB_BUCKET_BITS + 1e-9

    def test_indices_contiguous_and_monotone(self):
        h = LogLinearHistogram()
        indices = [h._index(v) for v in range(1 << (SUB_BUCKET_BITS + 3))]
        assert indices == sorted(indices)
        # No gaps: every index between first and last appears.
        assert set(indices) == set(range(indices[0], indices[-1] + 1))

    def test_serialization_carries_sub_bits(self):
        h = LogLinearHistogram()
        h.observe(1000)
        data = h.to_dict()
        assert data["sub_bits"] == SUB_BUCKET_BITS
        assert data["count"] == 1

    def test_registry_loglinear_and_name_conflict(self):
        reg = MetricsRegistry()
        ll = reg.loglinear("lat")
        assert isinstance(ll, LogLinearHistogram)
        assert reg.loglinear("lat") is ll
        reg.histogram("pow2")
        with pytest.raises(TypeError, match="power-of-two"):
            reg.loglinear("pow2")

    def test_merge_rejects_sub_bits_mismatch(self):
        pow2 = Histogram()
        pow2.observe(5)
        ll = LogLinearHistogram()
        ll.observe(5)
        merged = {"histograms": {"h": pow2.to_dict()}}
        with pytest.raises(ValueError, match="sub_bits"):
            merge_metrics(merged, {"histograms": {"h": ll.to_dict()}})

    def test_merge_is_order_independent(self):
        def build(values):
            h = LogLinearHistogram()
            for v in values:
                h.observe(v)
            return h.to_dict()

        parts = [build([1, 100]), build([50_000, -3]), build([7, 7, 9999])]
        ab = {}
        for part in parts:
            merge_metrics(ab, {"histograms": {"h": dict(part)}})
        ba = {}
        for part in reversed(parts):
            merge_metrics(ba, {"histograms": {"h": dict(part)}})
        assert canonical_metrics(ab) == canonical_metrics(ba)

    def test_canonical_preserves_shape_fields(self):
        h = LogLinearHistogram()
        h.observe(-1)
        h.observe(1_000_000)
        canon = canonical_metrics({"histograms": {"h": h.to_dict()}})
        out = canon["histograms"]["h"]
        assert out["sub_bits"] == SUB_BUCKET_BITS
        assert out["clamped"] == 1
