"""Integration tests: traced campaigns, JSONL export, timeline render."""

import pytest

from repro.__main__ import main
from repro.observe import EventSchemaError
from repro.observe.export import load_runs, read_trace, validate_line
from repro.observe.timeline import (
    RECOVERY_EVENTS,
    pick_default_run,
    render_rollup,
    render_run_timeline,
)
from repro.swifi.campaign import (
    CampaignRunner,
    execute_run,
    execute_run_traced,
)
from repro.swifi.parallel import run_campaign


@pytest.fixture(scope="module")
def lock_campaign(tmp_path_factory):
    """One traced lock campaign, shared by the read-side tests."""
    path = str(tmp_path_factory.mktemp("trace") / "lock.jsonl")
    runner = CampaignRunner("lock", n_faults=6, seed=1)
    result = runner.run(workers=1, trace=path)
    return runner, result, path


class TestOutcomeInvariance:
    def test_tracing_does_not_change_run_outcomes(self):
        spec = CampaignRunner("lock", n_faults=1, seed=1).spec()
        for seed in (1_000_003, 1_000_004, 12345):
            traced_outcome, record = execute_run_traced(spec, seed)
            assert traced_outcome is execute_run(spec, seed)
            assert record["outcome"] == traced_outcome.value

    def test_serial_and_parallel_traces_byte_identical(self, tmp_path):
        runner = CampaignRunner("timer", n_faults=6, seed=2)
        spec, seeds = runner.spec(), runner.run_seeds()
        serial = str(tmp_path / "serial.jsonl")
        pooled = str(tmp_path / "pooled.jsonl")
        counter_s = run_campaign(spec, seeds, workers=1, trace=serial)
        counter_p = run_campaign(spec, seeds, workers=2, trace=pooled)
        assert counter_s.counts == counter_p.counts
        assert open(serial).read() == open(pooled).read()


class TestExportFormat:
    def test_every_line_validates(self, lock_campaign):
        __, __, path = lock_campaign
        lines = list(read_trace(path, validate=True))
        assert lines, "trace artifact is empty"
        kinds = {line["type"] for line in lines}
        assert kinds == {"run", "event", "summary"}

    def test_load_runs_round_trip(self, lock_campaign):
        runner, result, path = lock_campaign
        runs, summaries = load_runs(path)
        assert [run["run_seed"] for run in runs] == runner.run_seeds()
        for run in runs:
            assert run["events"], "a traced run recorded no events"
            assert [e["seq"] for e in run["events"]] == sorted(
                e["seq"] for e in run["events"]
            )
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary["runs"] == 6 and summary["replayed"] == 0
        assert sum(summary["outcomes"].values()) == 6
        assert summary["outcomes"] == {
            outcome.value: count
            for outcome, count in result.counter.counts.items()
        }
        assert summary["metrics"]["counters"]["runs"] == 6

    def test_truncated_final_line_tolerated(self, lock_campaign, tmp_path):
        __, __, path = lock_campaign
        clipped = tmp_path / "clipped.jsonl"
        content = open(path).read()
        clipped.write_text(content + '{"type": "ev')
        full = list(read_trace(path))
        assert list(read_trace(str(clipped))) == full

    def test_malformed_lines_raise(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        with pytest.raises(EventSchemaError):
            list(read_trace(str(bad)))
        with pytest.raises(EventSchemaError):
            validate_line({"type": "run", "schema": 999})

    def test_run_header_counts_its_events(self, lock_campaign):
        __, __, path = lock_campaign
        counts, seen = {}, {}
        for line in read_trace(path):
            if line["type"] == "run":
                counts[line["run_seed"]] = line["events"]
            elif line["type"] == "event":
                seen[line["run_seed"]] = seen.get(line["run_seed"], 0) + 1
        assert counts == seen


class TestRecoveryArc:
    def test_full_injection_to_replay_arc_recorded(self, lock_campaign):
        __, __, path = lock_campaign
        runs, __ = load_runs(path)
        best = pick_default_run(runs)
        names = [e["event"] for e in best["events"]]
        for required in (
            "swifi_arm", "swifi_inject", "fault_vectored",
            "micro_reboot_begin", "micro_reboot_end", "replay",
        ):
            assert required in names, f"missing {required} in {names}"
        # Causal order: arm <= inject < detect <= reboot-begin < reboot-end.
        assert names.index("swifi_arm") < names.index("swifi_inject")
        assert names.index("swifi_inject") < names.index("fault_vectored")
        assert names.index("fault_vectored") <= names.index(
            "micro_reboot_begin"
        )
        assert names.index("micro_reboot_begin") < names.index(
            "micro_reboot_end"
        )
        stamps = [e["t"] for e in best["events"]]
        assert stamps == sorted(stamps)

    def test_detection_latency_recorded(self, lock_campaign):
        __, __, path = lock_campaign
        __, summaries = load_runs(path)
        hist = summaries[0]["metrics"]["histograms"]["detection_latency_cycles"]
        assert hist["count"] >= 1
        assert hist["min"] >= 0

    def test_timeline_renders_the_story(self, lock_campaign):
        __, __, path = lock_campaign
        runs, summaries = load_runs(path)
        text = render_run_timeline(pick_default_run(runs), include=RECOVERY_EVENTS)
        assert "SWIFI INJECT" in text
        assert "reboot-begin" in text and "reboot-end" in text
        assert "replay" in text
        rollup = render_rollup(runs, summaries)
        assert "campaign lock/" in rollup
        assert "recovered" in rollup


class TestCliTrace:
    def test_table2_trace_then_render(self, tmp_path, capsys):
        artifact = str(tmp_path / "t.jsonl")
        assert main(
            ["table2", "--faults", "2", "--workers", "1", "--trace", artifact]
        ) == 0
        capsys.readouterr()
        assert main(["trace", artifact, "--validate"]) == 0
        assert "lines OK" in capsys.readouterr().out
        assert main(["trace", artifact]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "run seed=" in out

    def test_trace_run_selection_and_errors(self, tmp_path, capsys):
        artifact = str(tmp_path / "t.jsonl")
        assert main(
            ["table2", "--faults", "2", "--workers", "1", "--trace", artifact]
        ) == 0
        capsys.readouterr()
        assert main(["trace", artifact, "--run", "1000003", "--full"]) == 0
        assert "run seed=1000003" in capsys.readouterr().out
        assert main(["trace", artifact, "--run", "999"]) == 1
        assert main(["trace", str(tmp_path / "missing.jsonl")]) == 1
