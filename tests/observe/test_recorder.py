"""Unit tests for the flight recorder core: gating, ring, metrics."""

import pytest

from repro import observe
from repro.observe import (
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    EventSchemaError,
    FlightRecorder,
    MetricsRegistry,
    NullRecorder,
    canonical_metrics,
    merge_metrics,
    recorder_for,
    scalar,
    validate_event,
)
from repro.system import build_system


class FakeClock:
    def __init__(self, now=0):
        self.now = now


@pytest.fixture(autouse=True)
def _env_gate_off(monkeypatch):
    """Run every test against the default (disabled) environment gate."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_CAPACITY", raising=False)


class TestDisabledMode:
    def test_disabled_returns_shared_singleton(self):
        # No allocation when tracing is off: every kernel shares the one
        # process-wide NullRecorder instance.
        assert recorder_for() is NULL_RECORDER
        assert recorder_for(clock=FakeClock()) is NULL_RECORDER

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.emit("invoke", tid=1, client="a", server="b", fn="f")
        assert NULL_RECORDER.events() == []
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.dropped == 0
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.clear()
        assert NULL_RECORDER.metrics.to_dict() == {
            "counters": {},
            "histograms": {},
        }

    def test_null_recorder_allocates_no_instance_state(self):
        # __slots__ = () guarantees emits cannot grow per-instance state.
        assert NullRecorder.__slots__ == ()
        with pytest.raises(AttributeError):
            NULL_RECORDER.ring = []

    def test_disabled_kernel_carries_the_singleton(self):
        system = build_system(ft_mode="superglue")
        assert system.kernel.recorder is NULL_RECORDER


class TestGating:
    def test_env_gate(self, monkeypatch):
        assert observe.tracing_enabled() is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert observe.tracing_enabled() is True
        assert isinstance(recorder_for(), FlightRecorder)
        for off in ("0", "", "false", "no"):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert observe.tracing_enabled() is False

    def test_context_manager_overrides_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        with observe.tracing(True):
            assert observe.tracing_enabled() is True
            with observe.tracing(False):
                assert observe.tracing_enabled() is False
            assert observe.tracing_enabled() is True
        assert observe.tracing_enabled() is False

    def test_traced_kernel_gets_live_recorder_bound_to_its_clock(self):
        with observe.tracing(True):
            system = build_system(ft_mode="superglue")
        recorder = system.kernel.recorder
        assert isinstance(recorder, FlightRecorder)
        assert recorder.clock is system.kernel.clock

    def test_capacity_env_override(self, monkeypatch):
        assert observe.ring_capacity() == DEFAULT_CAPACITY
        monkeypatch.setenv("REPRO_TRACE_CAPACITY", "64")
        assert observe.ring_capacity() == 64
        monkeypatch.setenv("REPRO_TRACE_CAPACITY", "junk")
        assert observe.ring_capacity() == DEFAULT_CAPACITY


class TestRing:
    def test_events_are_stamped_with_virtual_clock_and_seq(self):
        clock = FakeClock(now=100)
        recorder = FlightRecorder(clock=clock, capacity=8)
        recorder.emit("replay", server="lock", fn="lock_take", sid=1)
        clock.now = 250
        recorder.emit("fault_update", server="lock", epoch=1)
        events = recorder.events()
        assert [(e["seq"], e["t"], e["event"]) for e in events] == [
            (0, 100, "replay"),
            (1, 250, "fault_update"),
        ]
        assert events[0]["data"] == {
            "server": "lock", "fn": "lock_take", "sid": 1,
        }

    def test_wraparound_keeps_newest_and_counts_dropped(self):
        recorder = FlightRecorder(clock=FakeClock(), capacity=8)
        for i in range(20):
            recorder.emit("fault_update", server="lock", epoch=i)
        assert len(recorder) == 8
        assert recorder.dropped == 12
        events = recorder.events()
        assert [e["seq"] for e in events] == list(range(12, 20))
        assert [e["data"]["epoch"] for e in events] == list(range(12, 20))

    def test_clear_keeps_sequence_running(self):
        recorder = FlightRecorder(clock=FakeClock(), capacity=4)
        recorder.emit("fault_update", server="lock", epoch=0)
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0
        recorder.emit("fault_update", server="lock", epoch=1)
        assert recorder.events()[0]["seq"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestEventSchema:
    def test_known_event_validates(self):
        validate_event(
            "swifi_inject",
            {"component": "lock", "reg": 2, "bit": 4, "op_index": 16,
             "trace_len": 58, "label": "lock_take"},
        )

    def test_unknown_event_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event("made_up", {})

    def test_missing_and_extra_fields_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event("replay", {"server": "lock", "fn": "lock_take"})
        with pytest.raises(EventSchemaError):
            validate_event(
                "replay",
                {"server": "lock", "fn": "lock_take", "sid": 1, "bonus": 2},
            )

    def test_non_scalar_value_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event(
                "replay", {"server": "lock", "fn": "lock_take", "sid": [1]}
            )

    def test_optional_field_allowed(self):
        base = {"component": "lock", "kind": "assertion", "message": "m"}
        validate_event("fault_vectored", base)
        validate_event("fault_vectored", dict(base, detection_latency=42))

    def test_scalar_coercion(self):
        assert scalar(7) == 7
        assert scalar("x") == "x"
        assert scalar(None) is None
        assert scalar(("lock", 3)) == str(("lock", 3))


class TestMetrics:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("replays").inc()
        registry.counter("replays").inc(2)
        hist = registry.histogram("recovery_cycles")
        for value in (100, 200, 700):
            hist.observe(value)
        snap = registry.to_dict()
        assert snap["counters"]["replays"] == 3
        h = snap["histograms"]["recovery_cycles"]
        assert h["count"] == 3 and h["total"] == 1000
        assert h["min"] == 100 and h["max"] == 700

    def test_merge_is_order_independent(self):
        def registry(values):
            r = MetricsRegistry()
            for v in values:
                r.counter("runs").inc()
                r.histogram("cycles").observe(v)
            return r.to_dict()

        a = registry([1, 5, 900])
        b = registry([17, 3])
        ab, ba = {}, {}
        for part in (a, b):
            merge_metrics(ab, part)
        for part in (b, a):
            merge_metrics(ba, part)
        assert canonical_metrics(ab) == canonical_metrics(ba)
        assert ab["counters"]["runs"] == 5
        assert ab["histograms"]["cycles"]["count"] == 5
        assert ab["histograms"]["cycles"]["min"] == 1
        assert ab["histograms"]["cycles"]["max"] == 900
