"""Tests for the multi-seed Fig. 7 web-server campaign engine."""

import json

import pytest

from repro.__main__ import main
from repro.observe.export import read_trace
from repro.webserver.campaign import (
    WebRunSpec,
    aggregate_rows,
    execute_web_run,
    format_web_campaign,
    histogram_quantile,
    run_webserver_campaign,
    web_run_seeds,
)

#: Small but faulted: every run still exercises injection + recovery.
SMOKE_SPEC = WebRunSpec(n_requests=40, n_faults=2)


class TestHistogramQuantile:
    def test_empty_histogram(self):
        assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) is None
        assert histogram_quantile({}, 0.5) is None

    def test_single_bucket_clamps_to_observed_max(self):
        hist = {"count": 3, "buckets": {"7": 3}, "max": 100}
        # Bucket 7's upper bound is 127; the observed max tightens it.
        assert histogram_quantile(hist, 0.5) == 100

    def test_rank_walks_buckets_in_numeric_order(self):
        hist = {"count": 4, "buckets": {"3": 2, "10": 2}, "max": 900}
        assert histogram_quantile(hist, 0.25) == 7
        assert histogram_quantile(hist, 0.50) == 7
        assert histogram_quantile(hist, 0.75) == 900  # min(1023, 900)

    def test_zero_bucket(self):
        hist = {"count": 2, "buckets": {"0": 2}, "max": 0}
        assert histogram_quantile(hist, 0.99) == 0


class TestSpec:
    def test_seed_schedule_matches_swifi_stride(self):
        assert web_run_seeds(1, 3) == [1_000_003, 1_000_004, 1_000_005]
        assert web_run_seeds(2, 1) == [2_000_006]

    def test_validation(self):
        with pytest.raises(ValueError):
            WebRunSpec(n_requests=0)
        with pytest.raises(ValueError):
            WebRunSpec(concurrency=0)

    def test_fingerprint_distinguishes_specs(self):
        assert WebRunSpec(ft_mode="c3").fingerprint() != SMOKE_SPEC.fingerprint()
        assert WebRunSpec(n_requests=41, n_faults=2).fingerprint() != (
            SMOKE_SPEC.fingerprint()
        )


class TestRows:
    def test_row_shape_and_invariants(self):
        row = execute_web_run(SMOKE_SPEC, web_run_seeds(1, 1)[0])
        for key in (
            "run_seed", "outcome", "requests", "served", "errors",
            "duration_cycles", "reboots", "faults_armed", "faults_delivered",
            "steps", "crashed", "throughput_rps", "dips", "dip_max_cycles",
            "dip_recovery_cycles", "metrics",
        ):
            assert key in row
        assert row["served"] <= row["requests"]
        assert row["faults_delivered"] <= row["faults_armed"]
        assert (
            row["latency_p50_cycles"]
            <= row["latency_p95_cycles"]
            <= row["latency_p99_cycles"]
        )

    def test_run_is_pure_function_of_spec_and_seed(self):
        seed = web_run_seeds(1, 1)[0]
        assert execute_web_run(SMOKE_SPEC, seed) == execute_web_run(
            SMOKE_SPEC, seed
        )


class TestDeterminism:
    def test_serial_equals_parallel(self):
        seeds = web_run_seeds(1, 4)
        serial = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        parallel = run_webserver_campaign(seeds, SMOKE_SPEC, workers=2)
        assert serial.to_json_dict() == parallel.to_json_dict()

    def test_pooled_equals_fresh(self, monkeypatch):
        seeds = web_run_seeds(2, 3)
        pooled = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        fresh = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        assert pooled.to_json_dict() == fresh.to_json_dict()

    def test_pool_restores_match_fresh_builds(self, monkeypatch):
        # REPRO_POOL_DEBUG diffs every restored system against a fresh
        # build (including the prepare-hook components) and raises on
        # any structural divergence.
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        for seed in web_run_seeds(3, 3):
            execute_web_run(SMOKE_SPEC, seed)

    def test_aggregate_is_order_independent(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1
        )
        reversed_rows = list(reversed(result.rows))
        assert aggregate_rows(SMOKE_SPEC, reversed_rows) == result.aggregate

    def test_progress_reports_every_run(self):
        seen = []
        run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1,
            progress=lambda i, n, row: seen.append((i, n)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestAggregate:
    def test_sums_and_quantiles(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1
        )
        agg = result.aggregate
        assert agg["runs"] == 3
        assert agg["requests"] == 3 * SMOKE_SPEC.n_requests
        assert agg["served"] == sum(row["served"] for row in result.rows)
        assert sum(agg["outcomes"].values()) == 3
        assert agg["latency_p50_cycles"] <= agg["latency_p99_cycles"]
        # The merged histogram holds every served request's latency.
        hist = agg["metrics"]["histograms"]["request_latency_cycles"]
        assert hist["count"] == agg["served"]

    def test_format_mentions_key_figures(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        text = format_web_campaign(result)
        assert "Fig. 7 campaign" in text
        assert SMOKE_SPEC.fingerprint() in text
        assert "p50=" in text and "p99=" in text


class TestTrace:
    def test_traced_campaign_exports_and_rows_unchanged(self, tmp_path):
        seeds = web_run_seeds(4, 2)
        trace = str(tmp_path / "fig7.jsonl")
        traced = run_webserver_campaign(
            seeds, SMOKE_SPEC, workers=1, trace=trace
        )
        plain = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        # Tracing must not perturb the campaign artifact.
        assert traced.to_json_dict() == plain.to_json_dict()

        lines = list(read_trace(trace, validate=True))
        runs = [obj for obj in lines if obj["type"] == "run"]
        assert [run["run_seed"] for run in runs] == seeds
        assert all(run["service"] == "webserver" for run in runs)
        events = {
            obj["event"] for obj in lines if obj["type"] == "event"
        }
        assert {"request_start", "request_done"} <= events
        summaries = [obj for obj in lines if obj["type"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["runs"] == len(seeds)

    def test_dip_events_appear_when_reboots_happen(self, tmp_path):
        # Pick a seed schedule long enough that recovery stretches at
        # least one completion gap past the dip threshold.
        seeds = web_run_seeds(1, 2)
        spec = WebRunSpec(n_requests=120, n_faults=3)
        trace = str(tmp_path / "dips.jsonl")
        result = run_webserver_campaign(seeds, spec, workers=1, trace=trace)
        assert result.aggregate["reboots"] > 0
        assert result.aggregate["dips"] > 0
        events = [
            obj for obj in read_trace(trace, validate=True)
            if obj["type"] == "event" and obj["event"] == "throughput_dip"
        ]
        assert events
        assert all(
            e["data"]["gap_cycles"] > 0 and e["data"]["served"] > 0
            for e in events
        )


class TestArtifacts:
    def test_write_json_and_timing_sidecar(self, tmp_path):
        result = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        path = tmp_path / "fig7.json"
        result.write_json(str(path))
        data = json.loads(path.read_text())
        assert data == result.to_json_dict()
        assert data["fingerprint"] == SMOKE_SPEC.fingerprint()
        # Wall clock lives only in the sidecar: the artifact itself is
        # deterministic.
        assert "wall" not in path.read_text()
        timing = json.loads((tmp_path / "fig7.json.timing.json").read_text())
        assert timing["runs"] == 2


class TestCli:
    def test_fig7_campaign_json(self, tmp_path, capsys):
        artifact = str(tmp_path / "fig7.json")
        assert (
            main(
                [
                    "fig7", "--seeds", "3", "--workers", "1",
                    "--requests", "40", "--faults", "2",
                    "--json", artifact,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 7 campaign" in out
        data = json.loads(open(artifact).read())
        assert len(data["rows"]) == 3
        assert data["aggregate"]["runs"] == 3

    def test_fig7_campaign_matches_library_call(self, tmp_path, capsys):
        artifact = str(tmp_path / "cli.json")
        main(
            [
                "fig7", "--seeds", "2", "--workers", "1",
                "--requests", "40", "--faults", "2", "--seed", "1",
                "--json", artifact,
            ]
        )
        capsys.readouterr()
        direct = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        assert json.loads(open(artifact).read()) == direct.to_json_dict()
