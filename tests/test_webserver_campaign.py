"""Tests for the multi-seed Fig. 7 web-server campaign engine."""

import json

import pytest

from repro.__main__ import main
from repro.observe.export import read_trace
from repro.observe.metrics import SUB_BUCKET_BITS, LogLinearHistogram
from repro.webserver.campaign import (
    WebRunSpec,
    aggregate_rows,
    execute_web_run,
    format_web_campaign,
    histogram_quantile,
    run_webserver_campaign,
    web_run_seeds,
)

#: Small but faulted: every run still exercises injection + recovery.
SMOKE_SPEC = WebRunSpec(n_requests=40, n_faults=2)

#: Open-loop equivalent: sustained overload so queues actually grow.
OPEN_SPEC = WebRunSpec(
    n_requests=60, n_faults=2, arrivals="open", load=1.5, phases="burst",
    slo_us=500,
)


class TestHistogramQuantile:
    def test_empty_histogram(self):
        assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) is None
        assert histogram_quantile({}, 0.5) is None

    def test_single_bucket_clamps_to_observed_max(self):
        hist = {"count": 3, "buckets": {"7": 3}, "max": 100}
        # Bucket 7's upper bound is 127; the observed max tightens it.
        assert histogram_quantile(hist, 0.5) == 100

    def test_rank_walks_buckets_in_numeric_order(self):
        hist = {"count": 4, "buckets": {"3": 2, "10": 2}, "max": 900}
        assert histogram_quantile(hist, 0.25) == 7
        assert histogram_quantile(hist, 0.50) == 7
        assert histogram_quantile(hist, 0.75) == 900  # min(1023, 900)

    def test_zero_bucket(self):
        hist = {"count": 2, "buckets": {"0": 2}, "max": 0}
        assert histogram_quantile(hist, 0.99) == 0


def _loglinear_dict(values):
    h = LogLinearHistogram()
    for v in values:
        h.observe(v)
    return h.to_dict()


class TestHistogramQuantileLogLinear:
    def test_p999_lands_in_sparse_tail_bucket(self):
        # Many fast samples, one extreme outlier in the top 0.1%: p999
        # must find the outlier's sub-bucket, not the body.
        hist = _loglinear_dict([1_000] * 500 + [1_000_000])
        p999 = histogram_quantile(hist, 0.999)
        assert p999 == 1_000_000  # clamped to the observed max
        # And the body is still where it should be.
        p50 = histogram_quantile(hist, 0.50)
        assert abs(p50 - 1_000) / 1_000 <= 2 ** -SUB_BUCKET_BITS

    def test_zero_bucket(self):
        hist = _loglinear_dict([0, 0, 0])
        assert histogram_quantile(hist, 0.999) == 0

    def test_observed_max_clamps_bucket_upper_bound(self):
        # 1_000_000 lands in a sub-bucket whose upper bound exceeds it;
        # the observed max must tighten the answer.
        hist = _loglinear_dict([1_000_000])
        assert histogram_quantile(hist, 0.99) == 1_000_000

    def test_merged_equals_serial(self):
        from repro.observe.metrics import merge_metrics

        all_values = [3, 40, 41, 512, 513, 90_000, 90_001, 12, 7_777]
        serial = _loglinear_dict(all_values)
        merged = {}
        merge_metrics(
            merged, {"histograms": {"h": _loglinear_dict(all_values[:4])}}
        )
        merge_metrics(
            merged, {"histograms": {"h": _loglinear_dict(all_values[4:])}}
        )
        for q in (0.5, 0.9, 0.99, 0.999):
            assert histogram_quantile(
                merged["histograms"]["h"], q
            ) == histogram_quantile(serial, q)

    def test_sub_bucket_resolution_beats_power_of_two(self):
        # Two values in the same power-of-two decade but different
        # sub-buckets must be distinguishable: that is the whole point
        # of the log-linear shape for SLO deadlines.
        hist = _loglinear_dict([1_050_000] * 9 + [2_000_000])
        p50 = histogram_quantile(hist, 0.50)
        p99 = histogram_quantile(hist, 0.99)
        assert p50 < 1_100_000 < 1_950_000 < p99


class TestFaultTargetCycle:
    def test_ramfs_weighted_and_sched_absent(self):
        # See the FAULT_TARGET_CYCLE docstring: ramfs is doubled
        # (request-path exposure weighting) and sched is excluded
        # (web-path threads never execute inside it, so an armed sched
        # fault would never deliver).  Pin both properties.
        from repro.webserver.loadgen import FAULT_TARGET_CYCLE

        assert FAULT_TARGET_CYCLE.count("ramfs") == 2
        assert "sched" not in FAULT_TARGET_CYCLE

    def test_web_path_never_executes_in_sched(self):
        # The exclusion's premise, verified against the live request
        # path: no thread executes a trace within the sched component.
        from repro.swifi.injector import SwifiController
        from repro.system import build_system
        from repro.webserver.campaign import prepare_webserver
        from repro.webserver.loadgen import run_webserver

        system = build_system(ft_mode="superglue")
        prepare_webserver(system)
        swifi = SwifiController(system.kernel, seed=0)
        result = run_webserver(
            ft_mode="superglue", n_requests=30, system=system
        )
        assert result.crashed is None
        assert "sched" not in swifi.trace_counts
        assert swifi.trace_counts.get("ramfs", 0) > 0


class TestSpec:
    def test_seed_schedule_matches_swifi_stride(self):
        assert web_run_seeds(1, 3) == [1_000_003, 1_000_004, 1_000_005]
        assert web_run_seeds(2, 1) == [2_000_006]

    def test_validation(self):
        with pytest.raises(ValueError):
            WebRunSpec(n_requests=0)
        with pytest.raises(ValueError):
            WebRunSpec(concurrency=0)

    def test_fingerprint_distinguishes_specs(self):
        assert WebRunSpec(ft_mode="c3").fingerprint() != SMOKE_SPEC.fingerprint()
        assert WebRunSpec(n_requests=41, n_faults=2).fingerprint() != (
            SMOKE_SPEC.fingerprint()
        )


class TestRows:
    def test_row_shape_and_invariants(self):
        row = execute_web_run(SMOKE_SPEC, web_run_seeds(1, 1)[0])
        for key in (
            "run_seed", "outcome", "requests", "served", "errors",
            "duration_cycles", "reboots", "faults_armed", "faults_delivered",
            "steps", "crashed", "throughput_rps", "dips", "dip_max_cycles",
            "dip_recovery_cycles", "metrics",
        ):
            assert key in row
        assert row["served"] <= row["requests"]
        assert row["faults_delivered"] <= row["faults_armed"]
        assert (
            row["latency_p50_cycles"]
            <= row["latency_p95_cycles"]
            <= row["latency_p99_cycles"]
        )

    def test_run_is_pure_function_of_spec_and_seed(self):
        seed = web_run_seeds(1, 1)[0]
        assert execute_web_run(SMOKE_SPEC, seed) == execute_web_run(
            SMOKE_SPEC, seed
        )


class TestDeterminism:
    def test_serial_equals_parallel(self):
        seeds = web_run_seeds(1, 4)
        serial = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        parallel = run_webserver_campaign(seeds, SMOKE_SPEC, workers=2)
        assert serial.to_json_dict() == parallel.to_json_dict()

    def test_pooled_equals_fresh(self, monkeypatch):
        seeds = web_run_seeds(2, 3)
        pooled = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        fresh = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        assert pooled.to_json_dict() == fresh.to_json_dict()

    def test_pool_restores_match_fresh_builds(self, monkeypatch):
        # REPRO_POOL_DEBUG diffs every restored system against a fresh
        # build (including the prepare-hook components) and raises on
        # any structural divergence.
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        for seed in web_run_seeds(3, 3):
            execute_web_run(SMOKE_SPEC, seed)

    def test_aggregate_is_order_independent(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1
        )
        reversed_rows = list(reversed(result.rows))
        assert aggregate_rows(SMOKE_SPEC, reversed_rows) == result.aggregate

    def test_progress_reports_every_run(self):
        seen = []
        run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1,
            progress=lambda i, n, row: seen.append((i, n)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestAggregate:
    def test_sums_and_quantiles(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 3), SMOKE_SPEC, workers=1
        )
        agg = result.aggregate
        assert agg["runs"] == 3
        assert agg["requests"] == 3 * SMOKE_SPEC.n_requests
        assert agg["served"] == sum(row["served"] for row in result.rows)
        assert sum(agg["outcomes"].values()) == 3
        assert agg["latency_p50_cycles"] <= agg["latency_p99_cycles"]
        # The merged histogram holds every served request's latency.
        hist = agg["metrics"]["histograms"]["request_latency_cycles"]
        assert hist["count"] == agg["served"]

    def test_format_mentions_key_figures(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        text = format_web_campaign(result)
        assert "Fig. 7 campaign" in text
        assert SMOKE_SPEC.fingerprint() in text
        assert "p50=" in text and "p99=" in text


class TestTrace:
    def test_traced_campaign_exports_and_rows_unchanged(self, tmp_path):
        seeds = web_run_seeds(4, 2)
        trace = str(tmp_path / "fig7.jsonl")
        traced = run_webserver_campaign(
            seeds, SMOKE_SPEC, workers=1, trace=trace
        )
        plain = run_webserver_campaign(seeds, SMOKE_SPEC, workers=1)
        # Tracing must not perturb the campaign artifact.
        assert traced.to_json_dict() == plain.to_json_dict()

        lines = list(read_trace(trace, validate=True))
        runs = [obj for obj in lines if obj["type"] == "run"]
        assert [run["run_seed"] for run in runs] == seeds
        assert all(run["service"] == "webserver" for run in runs)
        events = {
            obj["event"] for obj in lines if obj["type"] == "event"
        }
        assert {"request_start", "request_done"} <= events
        summaries = [obj for obj in lines if obj["type"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["runs"] == len(seeds)

    def test_dip_events_appear_when_reboots_happen(self, tmp_path):
        # Pick a seed schedule long enough that recovery stretches at
        # least one completion gap past the dip threshold.
        seeds = web_run_seeds(1, 2)
        spec = WebRunSpec(n_requests=120, n_faults=3)
        trace = str(tmp_path / "dips.jsonl")
        result = run_webserver_campaign(seeds, spec, workers=1, trace=trace)
        assert result.aggregate["reboots"] > 0
        assert result.aggregate["dips"] > 0
        events = [
            obj for obj in read_trace(trace, validate=True)
            if obj["type"] == "event" and obj["event"] == "throughput_dip"
        ]
        assert events
        assert all(
            e["data"]["gap_cycles"] > 0 and e["data"]["served"] > 0
            for e in events
        )


class TestArtifacts:
    def test_write_json_and_timing_sidecar(self, tmp_path):
        result = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        path = tmp_path / "fig7.json"
        result.write_json(str(path))
        data = json.loads(path.read_text())
        assert data == result.to_json_dict()
        assert data["fingerprint"] == SMOKE_SPEC.fingerprint()
        # Wall clock lives only in the sidecar: the artifact itself is
        # deterministic.
        assert "wall" not in path.read_text()
        timing = json.loads((tmp_path / "fig7.json.timing.json").read_text())
        assert timing["runs"] == 2


class TestOpenLoopCampaign:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WebRunSpec(arrivals="half-open")
        with pytest.raises(ValueError):
            WebRunSpec(fault_class="gamma-ray")
        with pytest.raises(ValueError):
            WebRunSpec(arrivals="open", load=0)
        with pytest.raises(ValueError):
            WebRunSpec(arrivals="open", phases="a:0.5@1.0")
        with pytest.raises(ValueError):
            WebRunSpec(arrivals="open", slo_us=0)

    def test_fingerprint_extends_only_for_non_defaults(self):
        # Historical closed-loop reg fingerprints are frozen: trace
        # artifacts and recordings key on them.
        assert SMOKE_SPEC.fingerprint() == (
            "webserver/superglue/r40/c10/w2/f2/ondemand"
        )
        open_fp = OPEN_SPEC.fingerprint()
        assert "/open-l1.5-burst-slo500-a0" in open_fp
        assert WebRunSpec(fault_class="mem").fingerprint().endswith("/mem")

    def test_row_shape(self):
        row = execute_web_run(OPEN_SPEC, web_run_seeds(1, 1)[0])
        for key in (
            "peak_outstanding", "slo_ok", "slo_miss", "goodput_rps",
            "latency_p999_cycles",
        ):
            assert key in row
        assert row["slo_ok"] + row["slo_miss"] == row["requests"]
        hist = row["metrics"]["histograms"]["request_latency_cycles"]
        assert hist["sub_bits"] == SUB_BUCKET_BITS
        assert row["latency_p99_cycles"] <= row["latency_p999_cycles"]

    def test_serial_equals_parallel(self):
        seeds = web_run_seeds(1, 4)
        serial = run_webserver_campaign(seeds, OPEN_SPEC, workers=1)
        parallel = run_webserver_campaign(seeds, OPEN_SPEC, workers=2)
        assert serial.to_json_dict() == parallel.to_json_dict()

    def test_pooled_equals_fresh(self, monkeypatch):
        seeds = web_run_seeds(2, 3)
        pooled = run_webserver_campaign(seeds, OPEN_SPEC, workers=1)
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        fresh = run_webserver_campaign(seeds, OPEN_SPEC, workers=1)
        assert pooled.to_json_dict() == fresh.to_json_dict()

    def test_aggregate_open_loop_fields(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 3), OPEN_SPEC, workers=1
        )
        agg = result.aggregate
        assert agg["slo_ok"] + agg["slo_miss"] == agg["requests"]
        assert agg["goodput_rps"] <= agg["throughput_rps"] + 1e-9
        assert agg["peak_outstanding"] == max(
            row["peak_outstanding"] for row in result.rows
        )
        assert agg["latency_p999_cycles"] >= agg["latency_p99_cycles"]
        assert aggregate_rows(
            OPEN_SPEC, list(reversed(result.rows))
        ) == agg

    def test_overload_grows_queue_past_closed_loop_bound(self):
        row = execute_web_run(OPEN_SPEC, web_run_seeds(1, 1)[0])
        # The closed-loop generator would cap outstanding at
        # concurrency(10); sustained 1.5x overload must blow past it.
        assert row["peak_outstanding"] > OPEN_SPEC.concurrency

    def test_fault_classes_execute(self):
        for fault_class in ("mem", "idl", "burst"):
            spec = WebRunSpec(
                n_requests=40, n_faults=1, arrivals="open", load=1.2,
                fault_class=fault_class,
            )
            row = execute_web_run(spec, web_run_seeds(1, 1)[0])
            assert row["faults_armed"] >= 1

    def test_format_mentions_goodput(self):
        result = run_webserver_campaign(
            web_run_seeds(1, 2), OPEN_SPEC, workers=1
        )
        text = format_web_campaign(result)
        assert "goodput" in text
        assert "p999=" in text


class TestCli:
    def test_fig7_campaign_json(self, tmp_path, capsys):
        artifact = str(tmp_path / "fig7.json")
        assert (
            main(
                [
                    "fig7", "--seeds", "3", "--workers", "1",
                    "--requests", "40", "--faults", "2",
                    "--json", artifact,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 7 campaign" in out
        data = json.loads(open(artifact).read())
        assert len(data["rows"]) == 3
        assert data["aggregate"]["runs"] == 3

    def test_fig7_campaign_matches_library_call(self, tmp_path, capsys):
        artifact = str(tmp_path / "cli.json")
        main(
            [
                "fig7", "--seeds", "2", "--workers", "1",
                "--requests", "40", "--faults", "2", "--seed", "1",
                "--json", artifact,
            ]
        )
        capsys.readouterr()
        direct = run_webserver_campaign(
            web_run_seeds(1, 2), SMOKE_SPEC, workers=1
        )
        assert json.loads(open(artifact).read()) == direct.to_json_dict()

    def test_fig7_openloop_single_run(self, capsys):
        assert (
            main(
                [
                    "fig7", "--arrivals", "open", "--requests", "60",
                    "--load", "1.5", "--phases", "burst",
                    "--fault-class", "reg",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Open-loop web-server run" in out
        assert "goodput" in out
        assert "reg faults" in out

    def test_fig7_openloop_campaign_json(self, tmp_path, capsys):
        artifact = str(tmp_path / "open.json")
        assert (
            main(
                [
                    "fig7", "--seeds", "2", "--workers", "1",
                    "--requests", "60", "--faults", "2",
                    "--arrivals", "open", "--load", "1.5",
                    "--phases", "burst", "--json", artifact,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "open-loop load 1.5" in out
        data = json.loads(open(artifact).read())
        assert data["spec"]["arrivals"] == "open"
        assert data["aggregate"]["slo_ok"] + data["aggregate"]["slo_miss"] == (
            data["aggregate"]["requests"]
        )

    def test_fig7_rejects_bad_phase_spec(self, capsys):
        assert (
            main(
                [
                    "fig7", "--seeds", "1", "--arrivals", "open",
                    "--phases", "a:0.5@1.0",
                ]
            )
            == 1
        )
        assert "invalid fig7 spec" in capsys.readouterr().err
