"""Cluster supervision: differential and determinism guarantees.

Three claims back the cluster layer, each tested differentially:

* a **whole-node reboot** (the pool's dirty-restore of a node's private
  instance-keyed snapshot) leaves the node's System structurally
  indistinguishable from a fresh build — the same bar the flat
  campaigns hold the shared pooled system to;
* **supervision is deterministic** — scenario rows (including the
  supervisor's eviction decisions and the scheduler's failover targets)
  are pure functions of ``(ClusterSpec, scenario_seed)``, identical
  across repeats, cells, and pooling modes; and
* **failover is sound** — a killed node's workload re-executes on a
  survivor with campaign artifacts byte-identical across worker counts,
  and every unit outcome matches what the flat campaign computes for
  the same ``(RunSpec, unit_seed)``.
"""

import json

import pytest

from repro.cluster import (
    Cell,
    ClusterSpec,
    NODE_REBOOT_CYCLES,
    Node,
    Scheduler,
    Supervisor,
    aggregate_cluster_rows,
    cluster_run_seeds,
    execute_scenario,
    run_cluster_campaign,
)
from repro.cluster.campaign import execute_scenario_traced
from repro.observe.events import validate_event
from repro.swifi.campaign import execute_run
from repro.system import SystemPool, system_fingerprint


def _spec(**overrides):
    defaults = dict(
        service="lock",
        ft_mode="superglue",
        n_nodes=3,
        n_kill=1,
        units=6,
        iterations=4,
        horizon=17,
        evict_threshold=2,
        cooldown=2,
    )
    defaults.update(overrides)
    return ClusterSpec(**defaults)


class TestSpec:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            _spec(n_nodes=1)
        with pytest.raises(ValueError):
            _spec(n_kill=3)  # must leave at least one survivor
        with pytest.raises(ValueError):
            _spec(units=0)
        with pytest.raises(ValueError):
            _spec(fault_class="cosmic")

    def test_fingerprint_carries_every_axis(self):
        fp = _spec().fingerprint()
        for fragment in ("cluster/lock", "n3", "k1", "u6", "h17", "e2", "c2"):
            assert fragment in fp

    def test_seed_schedule_matches_campaign_stride(self):
        assert cluster_run_seeds(7, 3) == [7000021, 7000022, 7000023]


class TestWholeNodeReboot:
    def test_reboot_restores_fresh_build_state(self, monkeypatch):
        """A rebooted node is structurally a fresh build (dirty work gone).

        The node runs real injected units (dirtying images, stub tables,
        kernel counters), whole-node reboots, and the restored System's
        structural fingerprint must equal a never-used build's.
        """
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        pool = SystemPool()
        monkeypatch.setattr("repro.cluster.node.GLOBAL_POOL", pool)
        # Pooled units route through the campaign's _drive_run, which
        # resolves the pool via its own module reference.
        monkeypatch.setattr("repro.swifi.campaign.GLOBAL_POOL", pool)
        node = Node(0, "superglue", "ondemand")
        spec = _spec().run_spec()
        for unit_seed in (31, 32, 33):
            node.run_unit(spec, unit_seed)
        node.killed = True
        node.reboot()
        snapshot = pool.snapshot_for(instance=("cluster", 0))
        assert snapshot is not None
        assert snapshot.diff_against_fresh() == []
        assert not node.killed
        assert node.crash_count() == 0

    def test_pool_debug_verifies_every_node_restore(self, monkeypatch):
        """REPRO_POOL_DEBUG=1 fingerprints each node acquire vs fresh."""
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        pool = SystemPool()
        monkeypatch.setattr("repro.cluster.node.GLOBAL_POOL", pool)
        monkeypatch.setattr("repro.swifi.campaign.GLOBAL_POOL", pool)
        node = Node(1, "superglue", "ondemand")
        spec = _spec().run_spec()
        # Each acquire past the first runs the debug diff; a divergent
        # restore would raise ReproError out of run_unit.
        for unit_seed in (41, 42, 43):
            node.run_unit(spec, unit_seed)

    def test_nodes_hold_private_pool_snapshots(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        monkeypatch.setattr("repro.cluster.node.GLOBAL_POOL", SystemPool())
        a = Node(0, "superglue", "ondemand").acquire_system()
        b = Node(1, "superglue", "ondemand").acquire_system()
        assert a is not b
        # Same sealed post-boot state, distinct live objects: this is
        # what makes unit outcomes node-independent.
        assert system_fingerprint(a) == system_fingerprint(b)


class TestSupervisionDeterminism:
    def test_rows_pure_function_of_spec_and_seed(self):
        spec = _spec()
        first = execute_scenario(spec, 9000021)
        second = execute_scenario(spec, 9000021)
        assert first == second

    def test_cell_reuse_does_not_leak_across_scenarios(self):
        spec = _spec()
        cell = Cell(spec)
        reused = [cell.run_scenario(s) for s in (501, 502, 501)]
        assert reused[0] == reused[2]
        assert reused[0] == execute_scenario(spec, 501)

    def test_eviction_decisions_identical_pooled_and_fresh(self, monkeypatch):
        spec = _spec(n_kill=2, units=8)
        seeds = cluster_run_seeds(11, 4)
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "0")
        fresh = [execute_scenario(spec, s) for s in seeds]
        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        pooled = [execute_scenario(spec, s) for s in seeds]
        assert pooled == fresh

    def test_supervisor_reads_only_health_counters(self):
        supervisor = Supervisor(evict_threshold=2)
        node = Node(0, "superglue", "ondemand")
        assert supervisor.healthy(node)
        node.metrics.counter("crashes").inc(2)
        assert not supervisor.healthy(node)
        assert supervisor.verdict(node) == "crash_threshold"
        node.killed = True
        assert supervisor.verdict(node) == "killed"

    def test_scheduler_round_robin_and_failover(self):
        nodes = [Node(i, "superglue", "ondemand") for i in range(3)]
        scheduler = Scheduler(nodes)
        assert [scheduler.place().node_id for _ in range(4)] == [0, 1, 2, 0]
        nodes[1].killed = True
        survivor = scheduler.place_surviving()
        assert survivor is not None and not survivor.killed
        for node in nodes:
            node.killed = True
        assert scheduler.place_surviving() is None


class TestFailover:
    def test_every_scenario_fails_over_and_reboots(self):
        """Acceptance bar: >=1 failover and >=1 whole-node reboot each."""
        spec = _spec()
        for seed in cluster_run_seeds(13, 6):
            row = execute_scenario(spec, seed)
            assert row["outcome"] == "failover"
            assert row["failovers"] >= 1
            assert row["node_reboots"] >= 1
            assert row["victims"]  # the placed node is always a victim
            assert row["duration_cycles"] >= (
                row["node_reboots"] * NODE_REBOOT_CYCLES
            )

    def test_artifacts_byte_identical_across_worker_counts(self):
        spec = _spec(units=4)
        seeds = cluster_run_seeds(17, 4)
        serial = run_cluster_campaign(seeds, spec, workers=1)
        parallel = run_cluster_campaign(seeds, spec, workers=2)
        assert json.dumps(serial.to_json_dict()) == json.dumps(
            parallel.to_json_dict()
        )

    def test_supertraced_rows_identical_to_authoritative(self, monkeypatch):
        """Instance-keyed replay: node outcomes match the two-tier path.

        With pooling + super-traces on, every node replays recordings
        made against its own private snapshot (registry keys carry the
        pool instance).  The scenario rows — outcome mix, failovers,
        reboots, durations — must be identical to the authoritative
        two-tier execution, tails included.
        """
        from repro.composite.supertrace import REGISTRY

        monkeypatch.setenv("REPRO_SYSTEM_POOL", "1")
        spec = _spec(units=4)
        seeds = cluster_run_seeds(31, 3)
        monkeypatch.setenv("REPRO_SUPER_TRACE", "0")
        baseline = [execute_scenario(spec, s) for s in seeds]
        monkeypatch.setenv("REPRO_SUPER_TRACE", "1")
        monkeypatch.setenv("REPRO_TAIL_REPLAY", "1")
        assert [execute_scenario(spec, s) for s in seeds] == baseline
        # The engine really engaged, with per-node recordings: the
        # registry holds instance-keyed entries for the cluster nodes.
        instances = {
            key[-1] for key in REGISTRY._entries if key[-1] is not None
        }
        assert any(
            isinstance(inst, tuple) and inst[0] == "cluster"
            for inst in instances
        )

    def test_unit_outcomes_match_flat_campaign(self):
        """Cluster units == flat campaign runs for the same (spec, seed).

        This is the soundness argument for failover: any node (or the
        flat campaign itself) computes the identical outcome for a unit,
        so re-running a dead node's unit on a survivor loses nothing.
        """
        spec = _spec()
        run_spec = spec.run_spec()
        scenario_seed = 19000021
        row = execute_scenario(spec, scenario_seed)
        flat = {}
        for unit in range(spec.units):
            unit_seed = scenario_seed * 1_000_003 + unit
            outcome = execute_run(run_spec, unit_seed)
            flat[outcome.value] = flat.get(outcome.value, 0) + 1
        assert row["outcomes"] == dict(sorted(flat.items()))


class TestAggregateAndTrace:
    def test_aggregate_is_order_independent(self):
        spec = _spec(units=4)
        rows = [execute_scenario(spec, s) for s in cluster_run_seeds(23, 3)]
        forward = aggregate_cluster_rows(rows)
        backward = aggregate_cluster_rows(list(reversed(rows)))
        assert forward == backward
        assert forward["scenarios"] == 3
        assert forward["units"] == 12

    def test_traced_scenario_validates_and_matches_untraced(self):
        spec = _spec(n_kill=2)
        seed = 29000021
        row, record = execute_scenario_traced(spec, seed)
        assert row == execute_scenario(spec, seed)
        names = set()
        for event in record["events"]:
            validate_event(event["event"], event["data"])
            names.add(event["event"])
        assert {"node_kill", "unit_failover", "node_reboot",
                "unit_done"} <= names
        assert record["outcome"] == row["outcome"]
        assert record["run_seed"] == seed
