"""Tests for the system builder, workloads registry, and analysis helpers."""

import pytest

from repro.analysis import (
    c3_stub_loc,
    loc_of_source,
    loc_table,
    measure_recovery_overhead,
    measure_tracking_overhead,
)
from repro.analysis.loc import format_loc_table
from repro.errors import ConfigurationError
from repro.idl_specs import SERVICES, load_all
from repro.system import build_system, compile_all_interfaces
from repro.workloads import WORKLOADS, workload_for


class TestSystemBuilder:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            build_system(ft_mode="bogus")

    def test_none_mode_has_no_stubs(self):
        system = build_system(ft_mode="none")
        assert system.client_stubs == {}
        assert system.recovery_manager is None

    def test_superglue_mode_wires_all_stubs(self):
        system = build_system(ft_mode="superglue")
        for app in system.apps:
            for service in SERVICES:
                assert system.stub(app, service) is not None
        for service in SERVICES:
            if system.compiled[service].ir.model.desc_global:
                assert system.kernel.server_stub_for(service) is not None

    def test_c3_mode_wires_stubs(self):
        system = build_system(ft_mode="c3")
        for service in SERVICES:
            assert system.stub("app0", service) is not None
        assert system.kernel.server_stub_for("event") is not None

    def test_recovery_manager_knows_interfaces(self):
        system = build_system(ft_mode="superglue")
        assert set(system.recovery_manager.interfaces) == set(SERVICES)

    def test_recovery_mode_validated(self):
        with pytest.raises(ConfigurationError):
            build_system(ft_mode="superglue", recovery_mode="sometimes")

    def test_compile_cache_reused(self):
        first = compile_all_interfaces()
        second = compile_all_interfaces()
        assert first is second

    def test_service_accessor(self):
        system = build_system(ft_mode="none")
        assert system.service("lock").name == "lock"


class TestIdlSpecs:
    def test_all_specs_load(self):
        specs = load_all()
        assert set(specs) == set(SERVICES)
        for source in specs.values():
            assert "service_global_info" in source

    def test_paper_service_set(self):
        # The six fault-injection targets of Section V-B.
        assert set(SERVICES) == {"sched", "mm", "ramfs", "lock", "event", "timer"}


class TestWorkloads:
    def test_registry_covers_all_services(self):
        covered = {w.service for w in WORKLOADS.values()}
        assert covered == set(SERVICES)

    def test_workload_for_unknown(self):
        with pytest.raises(KeyError):
            workload_for("nonexistent")

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_check_fails_on_empty_results(self, name):
        system = build_system(ft_mode="none")
        handle = WORKLOADS[name].install(system, iterations=2)
        # Without running, results are incomplete: check must fail.
        assert not handle.check()

    def test_iterations_respected(self):
        system = build_system(ft_mode="none")
        handle = WORKLOADS["fs"].install(system, iterations=5)
        system.run(max_steps=30_000)
        assert handle.results["rounds"] == 5

    def test_budget_exhausted_run_fails_check(self):
        # Regression: a run cut off by its step budget looked exactly
        # like a completed one; check() must refuse to bless it.
        system = build_system(ft_mode="superglue")
        handle = workload_for("lock").install(system, iterations=3)
        system.run(max_steps=3)  # nowhere near enough
        assert handle.budget_exhausted
        assert handle.check() is False


class TestAnalysis:
    def test_loc_of_source(self):
        assert loc_of_source("a = 1\n# comment\n\n// c\nb = 2\n") == 2

    def test_c3_loc_substantial(self):
        for service in SERVICES:
            assert c3_stub_loc(service) > 80

    def test_loc_table_shape(self):
        table = loc_table()
        assert set(table) == set(SERVICES)
        for row in table.values():
            # The declarative spec is much smaller than the hand-written
            # stub it replaces (Fig. 6c).
            assert row["idl_loc"] * 3 < row["c3_loc"]
            assert row["generated_loc"] > row["idl_loc"]

    def test_format_loc_table(self):
        text = format_loc_table(loc_table())
        assert "IDL LOC" in text and "average" in text

    def test_tracking_overhead_positive(self):
        result = measure_tracking_overhead("lock", "superglue")
        assert result["tracked_ops"] > 0
        assert result["per_op_us"] > 0
        assert result["tracked_us"] > result["base_us"]

    def test_tracking_overhead_c3_similar(self):
        sg = measure_tracking_overhead("lock", "superglue")
        c3 = measure_tracking_overhead("lock", "c3")
        # Fig. 6a: "SuperGlue has the similar amount of overhead as C^3".
        assert 0.5 < sg["per_op_us"] / c3["per_op_us"] < 2.0

    def test_recovery_overhead_measured(self):
        result = measure_recovery_overhead("lock", runs=8)
        assert result["samples"] > 0
        assert result["mean_us"] > 0

    def test_recovery_overhead_reports_dropped_runs(self):
        # Escaped faults must be *counted*, never silently discarded:
        # every run is accounted for as either sampled or dropped.
        result = measure_recovery_overhead("lock", runs=8)
        assert "runs_dropped" in result
        assert 0 <= result["runs_dropped"] <= 8
