"""Additional machine-level edge cases."""

import pytest

from repro.composite.machine import (
    EAX,
    EBP,
    EBX,
    ESP,
    Injection,
    RegisterFile,
    Trace,
    execute_trace,
)
from repro.composite.memory import MemoryImage
from repro.errors import SegmentationFault

BASE = 0x0400_0000


@pytest.fixture
def memory():
    return MemoryImage(BASE, 4096)


@pytest.fixture
def regs():
    r = RegisterFile()
    r.write(ESP, BASE + 4096)
    r.write(EBP, BASE + 4096)
    return r


class TestStackSemantics:
    def test_first_push_lands_below_stack_top(self, regs, memory):
        trace = Trace().li(EAX, 7).push(EAX).ret(EAX)
        execute_trace(trace, regs, memory)
        assert memory.read_word(BASE + 4095) == 7
        assert regs.read(ESP) == BASE + 4095

    def test_pop_taints_from_tainted_stack_slot(self, regs, memory):
        memory.write_word(BASE + 4095, 99, tainted=True)
        regs.write(ESP, BASE + 4095)
        trace = Trace().pop(EBX).ret(EBX)
        result = execute_trace(trace, regs, memory)
        assert result.value == 99
        assert result.tainted

    def test_leave_restores_esp_from_ebp(self, regs, memory):
        # Unbalanced pushes inside the body are cleaned up by the
        # epilogue's mov ESP, EBP.
        trace = (
            Trace().prologue()
            .li(EAX, 1).push(EAX).push(EAX).push(EAX)
            .epilogue(EAX)
        )
        execute_trace(trace, regs, memory)
        assert regs.read(ESP) == BASE + 4096

    def test_stack_overflow_detected(self, regs, memory):
        regs.write(ESP, BASE + 1)
        trace = Trace().li(EAX, 1).push(EAX).push(EAX)
        with pytest.raises(SegmentationFault):
            execute_trace(trace, regs, memory)


class TestEntryRegs:
    def test_entry_regs_visible_from_first_op(self, regs, memory):
        trace = Trace().assert_range(EBX, 5, 5).ret(EBX)
        # entry_regs are applied by Component.execute; emulate here.
        regs.write(EBX, 5)
        assert execute_trace(trace, regs, memory).value == 5

    def test_injection_into_entry_value_caught_by_entry_assert(
        self, regs, memory
    ):
        regs.write(EBX, 5)
        trace = Trace().assert_range(EBX, 5, 5).ret(EBX)
        injection = Injection(reg=EBX, bit=1, op_index=0)
        from repro.errors import AssertionFault

        with pytest.raises(AssertionFault):
            execute_trace(trace, regs, memory, injection=injection)


class TestTraceBuilderChaining:
    def test_builders_return_self(self):
        trace = Trace().li(EAX, 1).mov(EBX, EAX).add(EAX, EBX).ret(EAX)
        assert len(trace) == 4

    def test_label_kept(self):
        assert Trace("mylabel").label == "mylabel"
