"""Unit tests for per-component memory images."""

import pytest

from repro.composite.memory import DEFAULT_IMAGE_WORDS, STACK_WORDS, MemoryImage
from repro.errors import ReproError

BASE = 0x0200_0000


@pytest.fixture
def image():
    return MemoryImage(BASE, 4096)


class TestBounds:
    def test_contains_inside(self, image):
        assert image.contains(BASE)
        assert image.contains(BASE + 4095)

    def test_contains_outside(self, image):
        assert not image.contains(BASE - 1)
        assert not image.contains(BASE + 4096)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ReproError):
            MemoryImage(BASE + 1)

    def test_default_size(self):
        image = MemoryImage(BASE)
        assert image.size == DEFAULT_IMAGE_WORDS

    def test_stack_region(self, image):
        assert image.stack_top == BASE + 4096
        assert image.stack_base == BASE + 4096 - STACK_WORDS


class TestReadWrite:
    def test_roundtrip(self, image):
        image.write_word(BASE + 10, 0xABCD)
        assert image.read_word(BASE + 10) == 0xABCD

    def test_write_masks(self, image):
        image.write_word(BASE, 0x1_0000_0001)
        assert image.read_word(BASE) == 1

    def test_taint_set_and_cleared(self, image):
        image.write_word(BASE + 5, 1, tainted=True)
        assert image.is_tainted(BASE + 5)
        image.write_word(BASE + 5, 2)
        assert not image.is_tainted(BASE + 5)


class TestAllocation:
    def test_alloc_distinct(self, image):
        a = image.alloc(4)
        b = image.alloc(4)
        assert a != b
        assert image.contains(a) and image.contains(b)

    def test_alloc_reserves_header(self, image):
        assert image.alloc(1) >= BASE + 16

    def test_free_reuses(self, image):
        a = image.alloc(4)
        image.free(a, 4)
        assert image.alloc(4) == a

    def test_free_zeroes(self, image):
        a = image.alloc(2)
        image.write_word(a, 7)
        image.free(a, 2)
        assert image.read_word(a) == 0

    def test_alloc_record_writes_magic(self, image):
        addr = image.alloc_record(0xFACE, 3)
        assert image.read_word(addr) == 0xFACE

    def test_heap_exhaustion(self, image):
        with pytest.raises(ReproError):
            image.alloc(image.size)

    def test_alloc_never_overlaps_stack(self, image):
        last = None
        try:
            while True:
                last = image.alloc(64)
        except ReproError:
            pass
        assert last is not None
        assert last + 64 <= image.stack_base


class TestMicroReboot:
    def test_reboot_without_snapshot_fails(self, image):
        with pytest.raises(ReproError):
            image.micro_reboot()

    def test_reboot_restores_words(self, image):
        image.write_word(BASE + 100, 0x1111)
        image.freeze_good_image()
        image.write_word(BASE + 100, 0x2222)
        image.micro_reboot()
        assert image.read_word(BASE + 100) == 0x1111

    def test_reboot_restores_alloc_pointer(self, image):
        a = image.alloc(8)
        image.freeze_good_image()
        image.alloc(8)
        image.micro_reboot()
        # After reboot, allocation resumes from the frozen position.
        assert image.alloc(8) == a + 8

    def test_reboot_clears_taint(self, image):
        image.freeze_good_image()
        image.write_word(BASE + 1, 5, tainted=True)
        image.micro_reboot()
        assert not image.is_tainted(BASE + 1)

    def test_reboot_clears_free_lists(self, image):
        image.freeze_good_image()
        a = image.alloc(4)
        image.free(a, 4)
        image.micro_reboot()
        # Free list from the corrupted epoch must not survive.
        assert image.alloc(4) == a

    def test_reboot_cost_positive(self, image):
        assert image.reboot_cost_cycles > 0

    def test_repr(self, image):
        assert "MemoryImage" in repr(image)
