"""Unit tests for the component base class."""

import pytest

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.component import Component, export
from repro.composite.fastpath import compile_trace
from repro.composite.kernel import Kernel
from repro.composite.machine import (
    EAX,
    EBX,
    OP_CYCLES,
    RegisterFile,
    Trace,
    TraceResult,
    execute_trace,
)
from repro.errors import AssertionFault, CapabilityError, PropagatedFault, ReproError


class Tiny(Component):
    def __init__(self):
        super().__init__("tiny")
        self.state = None

    def reinit(self):
        self.state = {"fresh": True}

    @export
    def ping(self, thread):
        return "pong"

    def hidden(self, thread):
        return "secret"


@pytest.fixture
def kernel():
    k = Kernel()
    k.register_component(AppComponent("app0"))
    k.register_component(Tiny())
    k.grant_all_caps()
    Booter(k)
    return k


class TestExports:
    def test_exported_function_listed(self, kernel):
        assert "ping" in kernel.component("tiny").exports

    def test_unexported_function_not_listed(self, kernel):
        assert "hidden" not in kernel.component("tiny").exports

    def test_dispatch_checks_exports(self, kernel):
        tiny = kernel.component("tiny")
        with pytest.raises(CapabilityError):
            tiny.dispatch("hidden", None, ())

    def test_dispatch_calls_method(self, kernel):
        assert kernel.component("tiny").dispatch("ping", None, ()) == "pong"


class TestLifecycle:
    def test_attach_initialises_state_and_image(self, kernel):
        tiny = kernel.component("tiny")
        assert tiny.state == {"fresh": True}
        assert tiny.image is not None

    def test_micro_reboot_resets(self, kernel):
        tiny = kernel.component("tiny")
        tiny.state["fresh"] = False
        tiny.image.write_word(tiny.image.base + 20, 99)
        cost = tiny.micro_reboot()
        assert cost > 0
        assert tiny.state == {"fresh": True}
        assert tiny.image.read_word(tiny.image.base + 20) == 0
        assert tiny.reboot_epoch == 1

    def test_require_image_before_attach(self):
        with pytest.raises(ReproError):
            Tiny().require_image()

    def test_repr(self, kernel):
        assert "tiny" in repr(kernel.component("tiny"))


class TestExecute:
    def test_execute_charges_thread(self, kernel):
        tiny = kernel.component("tiny")
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        trace = Trace().li(EAX, 7).ret(EAX)
        result = tiny.execute(thread, trace)
        assert result.value == 7
        assert thread.cycles > 0

    def test_execute_applies_entry_regs(self, kernel):
        tiny = kernel.component("tiny")
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        trace = Trace().ret(EAX)
        trace.entry_regs = {EAX: 123}
        assert tiny.execute(thread, trace).value == 123


class TestFaultCycleCharge:
    """A faulting trace is charged for the ops that actually ran."""

    def _thread(self, kernel):
        return kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )

    def _first_op_fault_trace(self):
        # Fails at op 0 (EAX starts at 0); the padding ops never run,
        # so the old 3 * len(trace) estimate overcharged ~30x.
        trace = Trace().assert_eq(EAX, 1)
        for _ in range(20):
            trace.li(EBX, 1)
        return trace.ret(EAX)

    def test_first_op_fault_charges_only_first_op(self, kernel):
        tiny = kernel.component("tiny")
        thread = self._thread(kernel)
        trace = self._first_op_fault_trace()
        before = thread.cycles
        with pytest.raises(AssertionFault) as excinfo:
            tiny.execute(thread, trace)
        charged = thread.cycles - before
        assert excinfo.value.op_index == 0
        assert charged == OP_CYCLES["assert_eq"]
        assert charged < 3 * len(trace)

    def test_mid_trace_fault_charges_through_faulting_op(self, kernel):
        tiny = kernel.component("tiny")
        thread = self._thread(kernel)
        trace = Trace().li(EBX, 5).li(EBX, 6).assert_eq(EAX, 1).ret(EAX)
        before = thread.cycles
        with pytest.raises(AssertionFault) as excinfo:
            tiny.execute(thread, trace)
        charged = thread.cycles - before
        assert excinfo.value.op_index == 2
        assert charged == 2 * OP_CYCLES["li"] + OP_CYCLES["assert_eq"]

    def test_fault_without_cycle_stamp_falls_back_to_estimate(
        self, kernel, monkeypatch
    ):
        # An exception raised before any op ran carries no cycle stamp:
        # the conservative whole-trace estimate still applies.
        import repro.composite.component as component_mod

        def exploding(*args, **kwargs):
            raise RuntimeError("raised before any op ran")

        monkeypatch.setattr(component_mod, "try_execute_fast", exploding)
        tiny = kernel.component("tiny")
        thread = self._thread(kernel)
        trace = Trace().ret(EAX)
        before = thread.cycles
        with pytest.raises(RuntimeError):
            tiny.execute(thread, trace)
        assert thread.cycles - before == 3 * len(trace)

    def test_fast_path_stamps_same_cycles_as_interpreter(self, kernel):
        tiny = kernel.component("tiny")
        trace = self._first_op_fault_trace()
        with pytest.raises(AssertionFault) as slow:
            execute_trace(trace, RegisterFile(), tiny.image,
                          component_name="tiny")
        program = compile_trace(trace, tiny.image, "tiny")
        with pytest.raises(AssertionFault) as fast:
            program.run([0] * 8, tiny.image.words, tiny.image._dirty)
        assert slow.value.cycles_consumed == fast.value.cycles_consumed
        assert slow.value.op_index == fast.value.op_index == 0


class TestCheckReturn:
    def test_clean_value_passes(self, kernel):
        tiny = kernel.component("tiny")
        result = TraceResult(5, tainted=False, cycles=1, stores_tainted=0)
        assert tiny.check_return(result, lambda v: True) == 5

    def test_tainted_plausible_propagates(self, kernel):
        tiny = kernel.component("tiny")
        result = TraceResult(5, tainted=True, cycles=1, stores_tainted=0)
        with pytest.raises(PropagatedFault):
            tiny.check_return(result, lambda v: True)

    def test_tainted_implausible_caught_at_boundary(self, kernel):
        tiny = kernel.component("tiny")
        result = TraceResult(5, tainted=True, cycles=1, stores_tainted=0)
        with pytest.raises(AssertionFault) as excinfo:
            tiny.check_return(result, lambda v: False)
        assert excinfo.value.recoverable


class TestAppComponent:
    def test_register_handler_dispatch(self, kernel):
        app = kernel.component("app0")
        app.register_handler("h", lambda thread, x: x * 2)
        assert app.dispatch("h", None, (21,)) == 42

    def test_handlers_listing(self, kernel):
        app = kernel.component("app0")
        app.register_handler("h", lambda thread: None)
        assert "h" in app.handlers

    def test_unknown_handler_falls_through(self, kernel):
        with pytest.raises(CapabilityError):
            kernel.component("app0").dispatch("nope", None, ())
