"""Differential tests: compiled fast path vs authoritative interpreter.

The fast path (:mod:`repro.composite.fastpath`) is only correct if it is
*indistinguishable* from :func:`repro.composite.machine.execute_trace` on
every clean trace: same ``TraceResult`` fields, same final register and
memory state, and — when the trace faults — the same exception type with
the same message.  These tests hold the two tiers to that contract over
a large seeded-random trace population, plus handwritten edge cases for
every op and every fault family.
"""

from __future__ import annotations

import random

import pytest

from repro.composite import fastpath
from repro.composite.fastpath import compile_trace, try_execute_fast
from repro.composite.machine import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDX,
    EDI,
    ESI,
    ESP,
    HANG_LIMIT,
    Injection,
    RegisterFile,
    Trace,
    execute_trace,
)
from repro.composite.memory import MemoryImage
from repro.errors import SimulatedFault

BASE = 0x0200_0000
WORDS = 2048
MAGIC = 0x5EC0FFEE

#: General-purpose registers a random trace computes with (stack registers
#: are exercised separately through push/pop and the harness entry values).
GP_REGS = (EAX, EBX, ECX, EDX, ESI, EDI)


def fresh_image() -> MemoryImage:
    image = MemoryImage(BASE, WORDS)
    record = image.alloc_record(MAGIC, 8)
    for off in range(1, 9):
        image.write_word(record + off, off * 3)
    return image


def fresh_regs(image: MemoryImage, entry: dict) -> RegisterFile:
    regs = RegisterFile()
    regs.write(ESP, image.stack_top)
    regs.write(EBP, image.stack_top)
    for reg, value in entry.items():
        regs.write(reg, value)
    return regs


def random_trace(rng: random.Random, image: MemoryImage) -> Trace:
    """A random but *mostly valid* trace over the machine's full ISA.

    Valid-biased: address registers usually point into the record, checks
    usually pass.  A deliberate minority of ops is broken (bad address,
    wrong magic, failing assertion, hang-sized loop) so the fault paths
    are exercised too — parity matters on both.
    """
    record = image.base + 16  # first record allocated by fresh_image
    trace = Trace(f"rand{rng.randrange(1 << 16)}")
    trace.entry_regs = {
        EAX: record,
        EBX: rng.randrange(1 << 8),
        ECX: rng.randrange(1 << 8),
        EDX: rng.randrange(1 << 8),
        ESI: rng.randrange(1 << 8),
        EDI: rng.randrange(1 << 8),
    }
    if rng.random() < 0.8:
        trace.prologue()
    depth = 0  # words pushed so far (keeps most pops balanced)
    for __ in range(rng.randrange(1, 40)):
        choice = rng.random()
        reg = rng.choice(GP_REGS)
        src = rng.choice(GP_REGS)
        if choice < 0.18:
            trace.li(reg, rng.randrange(1 << 32))
        elif choice < 0.30:
            trace.mov(reg, src)
        elif choice < 0.42:
            # Re-point a register at the record so loads/stores mostly hit.
            if rng.random() < 0.85:
                trace.li(EAX, record)
                trace.ld(reg, EAX, rng.randrange(9))
            else:
                trace.ld(reg, src, rng.randrange(16))
        elif choice < 0.52:
            if rng.random() < 0.85:
                trace.li(EAX, record)
                trace.st(reg, EAX, rng.randrange(1, 9))
            else:
                trace.st(reg, src, rng.randrange(16))
        elif choice < 0.62:
            trace.add(reg, src) if rng.random() < 0.5 else trace.addi(
                reg, rng.randrange(-8, 64)
            )
        elif choice < 0.68:
            trace.xor(reg, src)
        elif choice < 0.76:
            if rng.random() < 0.85:
                trace.li(EAX, record)
                trace.chk(EAX, 0, MAGIC)
            else:
                trace.chk(src, rng.randrange(4), rng.randrange(1 << 32))
        elif choice < 0.84:
            # Mostly-true assertion: set then assert the same value.
            value = rng.randrange(1 << 16)
            if rng.random() < 0.8:
                trace.li(reg, value)
                trace.assert_range(reg, value, value + rng.randrange(4))
            else:
                trace.assert_eq(reg, rng.randrange(1 << 16))
        elif choice < 0.90:
            bound = (
                rng.randrange(64)
                if rng.random() < 0.9
                else HANG_LIMIT + rng.randrange(1 << 8)
            )
            trace.li(ESI, bound)
            trace.loop(ESI, rng.randrange(1, 5))
        elif choice < 0.96:
            trace.push(reg)
            depth += 1
        else:
            if depth > 0 or rng.random() < 0.2:
                trace.pop(reg)
                depth = max(depth - 1, 0)
    if rng.random() < 0.9:
        trace.li(EAX, rng.randrange(1 << 16))
        if rng.random() < 0.5 and trace.ops and trace.ops[0][0] == "push":
            trace.epilogue(EAX)
        else:
            trace.ret(EAX)
    return trace


def run_slow(trace: Trace):
    image = fresh_image()
    regs = fresh_regs(image, trace.entry_regs)
    try:
        result = execute_trace(trace, regs, image, component_name="diff")
    except SimulatedFault as fault:
        return ("fault", type(fault).__name__, str(fault)), None, None
    return (
        ("ok", result.value, result.tainted, result.cycles,
         result.stores_tainted),
        list(regs.values),
        list(image.words),
    )


def run_fast(trace: Trace):
    image = fresh_image()
    regs = fresh_regs(image, trace.entry_regs)
    trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS  # past warm-up: compile now
    trace._compiled = None
    try:
        result = try_execute_fast(trace, regs, image, "diff")
    except SimulatedFault as fault:
        return ("fault", type(fault).__name__, str(fault)), None, None
    assert result is not None, "fast path unexpectedly ineligible"
    return (
        ("ok", result.value, result.tainted, result.cycles,
         result.stores_tainted),
        list(regs.values),
        list(image.words),
    )


class TestDifferentialRandomTraces:
    def test_five_hundred_random_traces_agree(self):
        rng = random.Random(0xD1FF)
        faults = 0
        for __ in range(500):
            trace = random_trace(rng, fresh_image())
            slow, slow_regs, slow_words = run_slow(trace)
            fast, fast_regs, fast_words = run_fast(trace)
            assert slow == fast
            assert slow_regs == fast_regs
            assert slow_words == fast_words
            if slow[0] == "fault":
                faults += 1
        # The population must exercise both outcomes to mean anything.
        assert 0 < faults < 500

    def test_random_traces_with_injection_agree_through_dispatch(self):
        """With an injection pending, both tiers are the slow tier.

        ``Component.execute`` sends injected runs to ``execute_trace``
        unconditionally; the engine-level contract is that an injected
        run behaves identically whether or not the fast path exists.  A
        pre-compiled program must not leak into an injected execution.
        """
        rng = random.Random(0xFA57)
        for __ in range(100):
            trace = random_trace(rng, fresh_image())
            injection_site = rng.randrange(max(len(trace), 1))
            spec = (rng.randrange(8), rng.randrange(32), injection_site)

            def injected_run(precompile: bool):
                image = fresh_image()
                regs = fresh_regs(image, trace.entry_regs)
                if precompile:
                    trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
                    trace._compiled = None
                    compile_trace(trace, image, "diff")
                try:
                    result = execute_trace(
                        trace, regs, image, component_name="diff",
                        injection=Injection(*spec),
                    )
                except SimulatedFault as fault:
                    return ("fault", type(fault).__name__, str(fault))
                return (
                    "ok", result.value, result.tainted, result.cycles,
                    result.stores_tainted,
                )

            assert injected_run(False) == injected_run(True)


class TestEligibility:
    def _simple_trace(self) -> Trace:
        trace = Trace("simple")
        trace.entry_regs = {EBX: 5}
        trace.li(EAX, 7).add(EAX, EBX).ret(EAX)
        return trace

    def test_warmup_novel_tuple_defers_compile(self, monkeypatch):
        # No pre-compiled program anywhere: the trace must earn a novel
        # compile with NOVEL_COMPILE_RUNS clean executions.
        monkeypatch.setattr(fastpath, "_PROGRAM_CACHE", {})
        image = fresh_image()
        trace = self._simple_trace()
        regs = fresh_regs(image, trace.entry_regs)
        for __ in range(fastpath.NOVEL_COMPILE_RUNS):
            assert try_execute_fast(trace, regs, image, "t") is None
            assert trace._compiled is None
        result = try_execute_fast(trace, regs, image, "t")
        assert result is not None and result.value == 12
        assert trace._compiled is not None

    def test_warmup_cached_tuple_attaches_on_second_run(self, monkeypatch):
        # An identical op tuple already in the program cache attaches on
        # the second clean execution — a dict lookup, not a compile.
        monkeypatch.setattr(fastpath, "_PROGRAM_CACHE", {})
        image = fresh_image()
        donor = self._simple_trace()
        program = compile_trace(donor, image, "t")
        trace = self._simple_trace()
        regs = fresh_regs(image, trace.entry_regs)
        assert try_execute_fast(trace, regs, image, "t") is None
        result = try_execute_fast(trace, regs, image, "t")
        assert result is not None and result.value == 12
        assert trace._compiled is program

    def test_disabled_flag_declines(self, monkeypatch):
        monkeypatch.setattr(fastpath, "FAST_INTERP_ENABLED", False)
        image = fresh_image()
        trace = self._simple_trace()
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        assert try_execute_fast(
            trace, fresh_regs(image, trace.entry_regs), image, "t"
        ) is None

    def test_tainted_register_declines(self):
        image = fresh_image()
        trace = self._simple_trace()
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        regs = fresh_regs(image, trace.entry_regs)
        regs.flip_bit(ECX, 3)
        assert try_execute_fast(trace, regs, image, "t") is None

    def test_tainted_memory_declines(self):
        image = fresh_image()
        trace = self._simple_trace()
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        image.write_word(image.base + 2, 0xBAD, tainted=True)
        assert image.taint_count == 1
        assert try_execute_fast(
            trace, fresh_regs(image, trace.entry_regs), image, "t"
        ) is None
        # Micro-reboot clears the taint census; eligibility returns.
        image.freeze_good_image()
        image.micro_reboot()
        assert image.taint_count == 0
        assert try_execute_fast(
            trace, fresh_regs(image, trace.entry_regs), image, "t"
        ) is not None


class TestCompiledProgramLifecycle:
    def test_program_cached_on_trace(self):
        image = fresh_image()
        trace = Trace("cached")
        trace.li(EAX, 1).ret(EAX)
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        regs = fresh_regs(image, {})
        try_execute_fast(trace, regs, image, "t")
        program = trace._compiled
        assert program is not None
        try_execute_fast(trace, regs, image, "t")
        assert trace._compiled is program  # no recompilation

    def test_appending_ops_invalidates_program(self):
        image = fresh_image()
        trace = Trace("grow")
        trace.li(EAX, 1).ret(EAX)
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        regs = fresh_regs(image, {})
        assert try_execute_fast(trace, regs, image, "t").value == 1
        stale = trace._compiled
        trace.ops.insert(1, ("addi", EAX, 8))
        result = try_execute_fast(trace, regs, image, "t")
        assert trace._compiled is not stale
        assert result.value == 9

    def test_different_memory_recompiles(self):
        image_a = fresh_image()
        image_b = MemoryImage(BASE + 0x1000, WORDS)
        trace = Trace("move")
        trace.li(EAX, 3).ret(EAX)
        trace._clean_runs = fastpath.NOVEL_COMPILE_RUNS
        try_execute_fast(trace, fresh_regs(image_a, {}), image_a, "t")
        in_a = trace._compiled
        try_execute_fast(trace, fresh_regs(image_b, {}), image_b, "t")
        assert trace._compiled is not in_a
        assert trace._compiled.base == image_b.base

    def test_fall_off_end_returns_zero(self):
        trace = Trace("noend")
        trace.li(EBX, 42)
        slow = run_slow(trace)
        assert slow == run_fast(trace)
        assert slow[0][1] == 0

    def test_ops_after_ret_are_dead(self):
        trace = Trace("deadtail")
        trace.li(EAX, 6).ret(EAX)
        trace.li(EAX, 99)  # unreachable in the straight-line ISA
        assert run_slow(trace) == run_fast(trace)

    def test_loop_cycles_match(self):
        for bound in (0, 1, 63, 4096):
            trace = Trace("loopcyc")
            trace.li(ESI, bound).loop(ESI, 3).li(EAX, 0).ret(EAX)
            assert run_slow(trace) == run_fast(trace)

    def test_hang_parity(self):
        trace = Trace("hang")
        trace.li(ESI, HANG_LIMIT + 1).loop(ESI, 2)
        slow = run_slow(trace)[0]
        fast = run_fast(trace)[0]
        assert slow == fast
        assert slow[1] == "SystemHang"


class TestFaultMessageParity:
    @pytest.mark.parametrize("build,expected", [
        (lambda t: t.li(EBX, 0x10).ld(ECX, EBX, 0), "SegmentationFault"),
        (lambda t: t.li(EBX, BASE).chk(EBX, 0, 0x1234), "CorruptionDetected"),
        (lambda t: t.li(EBX, 7).assert_eq(EBX, 8), "AssertionFault"),
        (lambda t: t.li(EBX, 7).assert_range(EBX, 9, 12), "AssertionFault"),
        (lambda t: t.push(EAX).pop(EBX).pop(ECX), "SegmentationFault"),
    ])
    def test_fault_type_and_message_identical(self, build, expected):
        trace = Trace("faulty")
        build(trace)
        slow = run_slow(trace)[0]
        fast = run_fast(trace)[0]
        assert slow == fast
        assert slow[0] == "fault" and slow[1] == expected
