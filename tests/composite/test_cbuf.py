"""Unit tests for the zero-copy buffer manager."""

import pytest

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.cbuf import CbufManager
from repro.composite.kernel import Kernel
from repro.errors import ReproError


@pytest.fixture
def setup():
    kernel = Kernel()
    kernel.register_component(AppComponent("app0"))
    cbuf = CbufManager()
    kernel.register_component(cbuf)
    kernel.grant_all_caps()
    Booter(kernel)
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    return kernel, cbuf, thread


class TestCbuf:
    def test_alloc_ids_unique(self, setup):
        __, cbuf, thread = setup
        a = cbuf.cbuf_alloc(thread, "app0", 16)
        b = cbuf.cbuf_alloc(thread, "app0", 16)
        assert a != b

    def test_owner_write_read(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 8)
        assert cbuf.cbuf_write(thread, "app0", cbid, 0, b"abc") == 3
        assert cbuf.cbuf_read(thread, "app0", cbid, 0, 3) == b"abc"

    def test_write_extends_buffer(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 0)
        cbuf.cbuf_write(thread, "app0", cbid, 4, b"xy")
        assert cbuf.cbuf_size(thread, "app0", cbid) == 6

    def test_nonowner_write_rejected(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 8)
        cbuf.cbuf_map(thread, "other", cbid)
        with pytest.raises(ReproError):
            cbuf.cbuf_write(thread, "other", cbid, 0, b"z")

    def test_unmapped_read_rejected(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 8)
        with pytest.raises(ReproError):
            cbuf.cbuf_read(thread, "stranger", cbid, 0, 1)

    def test_mapped_reader_allowed(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 8)
        cbuf.cbuf_write(thread, "app0", cbid, 0, b"hi")
        assert cbuf.cbuf_map(thread, "reader", cbid) == 0
        assert cbuf.cbuf_read(thread, "reader", cbid, 0, 2) == b"hi"

    def test_map_unknown_buffer(self, setup):
        __, cbuf, thread = setup
        assert cbuf.cbuf_map(thread, "app0", 999) == -1

    def test_free_by_owner_only(self, setup):
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 8)
        assert cbuf.cbuf_free(thread, "other", cbid) == -1
        assert cbuf.cbuf_free(thread, "app0", cbid) == 0
        assert cbuf.cbuf_size(thread, "app0", cbid) == -1

    def test_contents_survive_foreign_reboot(self, setup):
        # Protected component: its reinit must not clear live buffers.
        __, cbuf, thread = setup
        cbid = cbuf.cbuf_alloc(thread, "app0", 4)
        cbuf.cbuf_write(thread, "app0", cbid, 0, b"keep")
        cbuf.reinit()
        assert cbuf.cbuf_read(thread, "app0", cbid, 0, 4) == b"keep"

    def test_charges_cycles(self, setup):
        kernel, cbuf, thread = setup
        before = kernel.clock.now
        cbuf.cbuf_alloc(thread, "app0", 8)
        assert kernel.clock.now > before
