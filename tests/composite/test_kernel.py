"""Unit tests for the kernel: invocation, blocking, faults, run loop."""

import pytest

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.component import Component, export
from repro.composite.kernel import FAULT, Kernel
from repro.composite.thread import Invoke, ThreadState, Yield
from repro.errors import (
    AssertionFault,
    BlockThread,
    CapabilityError,
    ConfigurationError,
    SystemHang,
)


class EchoService(Component):
    """Minimal test service."""

    def __init__(self):
        super().__init__("echo")
        self.calls = []

    def reinit(self):
        self.calls = []

    @export
    def echo(self, thread, value):
        self.calls.append(value)
        return value

    @export
    def boom(self, thread):
        raise AssertionFault("synthetic", component=self.name)

    @export
    def park(self, thread, token):
        raise BlockThread(self.name, token, on_wake=lambda t, tok, to: "woken")

    @export
    def park_timeout(self, thread, token, expiry):
        raise BlockThread(
            self.name, token, timeout=expiry,
            on_wake=lambda t, tok, timed_out: "timeout" if timed_out else "woken",
        )

    @export
    def wake(self, thread, token):
        return self.kernel.wake_token(self.name, token)


def make_kernel(ft_mode="superglue"):
    kernel = Kernel(ft_mode=ft_mode)
    kernel.register_component(AppComponent("app0"))
    kernel.register_component(EchoService())
    kernel.grant_all_caps()
    Booter(kernel)
    return kernel


class TestConfiguration:
    def test_unknown_ft_mode(self):
        with pytest.raises(ConfigurationError):
            Kernel(ft_mode="bogus")

    def test_duplicate_component(self):
        kernel = Kernel()
        kernel.register_component(AppComponent("a"))
        with pytest.raises(ConfigurationError):
            kernel.register_component(AppComponent("a"))

    def test_unknown_component_lookup(self):
        with pytest.raises(ConfigurationError):
            Kernel().component("nope")

    def test_images_do_not_overlap(self):
        kernel = Kernel()
        kernel.register_component(AppComponent("a"))
        kernel.register_component(AppComponent("b"))
        a = kernel.component("a").image
        b = kernel.component("b").image
        assert a.base + a.size <= b.base or b.base + b.size <= a.base


class TestInvocation:
    def test_basic_invoke(self):
        kernel = make_kernel()
        results = []

        def body(system, thread):
            results.append((yield Invoke("echo", "echo", 41)))

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run()
        assert results == [41]

    def test_capability_denied(self):
        kernel = Kernel()
        kernel.register_component(AppComponent("app0"))
        kernel.register_component(EchoService())
        Booter(kernel)  # no caps granted

        def body(system, thread):
            yield Invoke("echo", "echo", 1)

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        with pytest.raises(CapabilityError):
            kernel.run()

    def test_invocation_charges_cycles(self):
        kernel = make_kernel()

        def body(system, thread):
            yield Invoke("echo", "echo", 1)

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run()
        assert kernel.clock.now > 0
        assert kernel.stats["invocations"] == 1

    def test_unknown_fn_raises(self):
        kernel = make_kernel()

        def body(system, thread):
            yield Invoke("echo", "nonexistent")

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        with pytest.raises(CapabilityError):
            kernel.run()

    def test_yield_action(self):
        kernel = make_kernel()
        order = []

        def body_a(system, thread):
            order.append("a1")
            yield Yield()
            order.append("a2")

        def body_b(system, thread):
            order.append("b1")
            yield Yield()
            order.append("b2")

        kernel.create_thread("a", prio=1, home="app0", body_factory=body_a)
        kernel.create_thread("b", prio=1, home="app0", body_factory=body_b)
        kernel.run()
        assert sorted(order) == ["a1", "a2", "b1", "b2"]


class TestBlocking:
    def test_block_and_wake(self):
        kernel = make_kernel()
        results = {}

        def sleeper(system, thread):
            results["slept"] = yield Invoke("echo", "park", "tok")

        def waker(system, thread):
            yield Yield()  # let the sleeper block first
            results["woken_count"] = yield Invoke("echo", "wake", "tok")

        kernel.create_thread("s", prio=5, home="app0", body_factory=sleeper)
        kernel.create_thread("w", prio=5, home="app0", body_factory=waker)
        kernel.run()
        assert results["slept"] == "woken"
        assert results["woken_count"] == 1

    def test_block_timeout_fires(self):
        kernel = make_kernel()
        results = {}

        def sleeper(system, thread):
            results["value"] = yield Invoke(
                "echo", "park_timeout", "tok", 5_000
            )

        kernel.create_thread("s", prio=5, home="app0", body_factory=sleeper)
        kernel.run()
        assert results["value"] == "timeout"
        assert kernel.clock.now >= 5_000

    def test_deadlock_detected(self):
        kernel = make_kernel()

        def sleeper(system, thread):
            yield Invoke("echo", "park", "never")

        kernel.create_thread("s", prio=5, home="app0", body_factory=sleeper)
        with pytest.raises(SystemHang):
            kernel.run()

    def test_blocked_threads_in(self):
        kernel = make_kernel()

        def sleeper(system, thread):
            yield Invoke("echo", "park", "tok")

        kernel.create_thread("s", prio=5, home="app0", body_factory=sleeper)
        try:
            kernel.run()
        except SystemHang:
            pass
        assert len(kernel.blocked_threads_in("echo")) == 1

    def test_wake_all_in_redo(self):
        kernel = make_kernel()
        attempts = []

        def sleeper(system, thread):
            attempts.append("call")
            yield Invoke("echo", "park", "tok")

        kernel.create_thread("s", prio=5, home="app0", body_factory=sleeper)
        try:
            kernel.run(max_steps=3)
        except SystemHang:
            pass
        woken = kernel.wake_all_in("echo", redo=True)
        assert woken == 1
        thread = next(iter(kernel.threads.values()))
        assert thread.pending[0] == "redo"


class TestFaults:
    def test_fault_vectors_to_booter_and_returns_fault(self):
        kernel = make_kernel(ft_mode="superglue")
        echo = kernel.component("echo")

        def body(system, thread):
            yield Invoke("echo", "echo", 1)

        thread = kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        result = kernel.raw_invoke(thread, "echo", "boom", ())
        assert result is FAULT
        assert echo.reboot_epoch == 1
        assert kernel.stats["micro_reboots"] == 1

    def test_fault_in_none_mode_is_fatal(self):
        kernel = make_kernel(ft_mode="none")

        def body(system, thread):
            yield Invoke("echo", "boom")

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run()
        assert kernel.crashed is not None
        thread = next(iter(kernel.threads.values()))
        assert thread.state is ThreadState.CRASHED

    def test_reboot_resets_component_state(self):
        kernel = make_kernel()
        echo = kernel.component("echo")

        def body(system, thread):
            yield Invoke("echo", "echo", 1)
            yield Invoke("echo", "boom")

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run(max_steps=5)
        assert echo.calls == []  # reinit cleared them

    def test_fault_observer_called(self):
        kernel = make_kernel()
        seen = []
        kernel.fault_observers.append(lambda comp, fault: seen.append(comp.name))
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        kernel.raw_invoke(thread, "echo", "boom", ())
        assert seen == ["echo"]


class TestReflection:
    def test_reflect_threads(self):
        kernel = make_kernel()
        kernel.create_thread("t1", prio=3, home="app0",
                             body_factory=lambda s, t: iter(()))
        info = kernel.reflect_threads()
        assert len(info) == 1
        assert info[0]["prio"] == 3
        assert info[0]["state"] == "ready"


class TestUpcalls:
    def test_upcall_into_app_component(self):
        kernel = make_kernel()
        app = kernel.component("app0")
        seen = []
        app.register_handler("notify", lambda thread, value: seen.append(value))
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        kernel.upcall(thread, "app0", "notify", 42)
        assert seen == [42]
        assert kernel.stats["upcalls"] == 1


class TestRunLoop:
    def test_max_cycles_budget(self):
        kernel = make_kernel()

        def body(system, thread):
            while True:
                yield Invoke("echo", "echo", 1)

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run(max_cycles=5_000)
        assert kernel.clock.now >= 5_000

    def test_max_steps_budget(self):
        kernel = make_kernel()

        def body(system, thread):
            while True:
                yield Yield()

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        steps = kernel.run(max_steps=10)
        assert steps == 10

    def test_budget_exhaustion_is_flagged(self):
        # Regression: a run cut off by max_steps used to return exactly
        # like a clean completion, hiding livelocks from callers.
        kernel = make_kernel()

        def body(system, thread):
            while True:
                yield Yield()

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        assert kernel.run(max_steps=10) == 10
        assert kernel.budget_exhausted
        assert kernel.stats["budget_exhausted"] == 1

    def test_clean_completion_is_not_flagged(self):
        kernel = make_kernel()

        def body(system, thread):
            yield Invoke("echo", "echo", 1)

        kernel.create_thread("t", prio=1, home="app0", body_factory=body)
        kernel.run(max_steps=10_000)
        assert not kernel.budget_exhausted
        assert kernel.stats["budget_exhausted"] == 0

    def test_finishing_exactly_at_budget_is_not_exhaustion(self):
        # The flag means "budget hit with live work remaining", not
        # "steps == max_steps": a workload that finishes on its very
        # last permitted step completed cleanly.
        def body(system, thread):
            yield Invoke("echo", "echo", 1)

        probe = make_kernel()
        probe.create_thread("t", prio=1, home="app0", body_factory=body)
        needed = probe.run(max_steps=10_000)
        exact = make_kernel()
        exact.create_thread("t", prio=1, home="app0", body_factory=body)
        assert exact.run(max_steps=needed) == needed
        assert not exact.budget_exhausted


class TestSleep:
    """The kernel-level ``Sleep`` action (open-loop arrival pacing)."""

    def test_sleep_wakes_at_instant_charging_no_cycles(self):
        from repro.composite.thread import Sleep

        kernel = make_kernel()
        seen = {}

        def body(system, thread):
            yield Sleep(50_000)
            seen["woke_at"] = kernel.clock.now
            seen["cycles"] = thread.cycles

        kernel.create_thread("sleeper", prio=5, home="app0", body_factory=body)
        kernel.run(max_steps=100)
        assert seen["woke_at"] == 50_000
        assert seen["cycles"] == 0

    def test_sleep_in_past_resumes_immediately(self):
        from repro.composite.thread import Sleep

        kernel = make_kernel()
        seen = {}

        def body(system, thread):
            yield Invoke("echo", "echo", 1)  # advances the clock
            before = kernel.clock.now
            yield Sleep(before - 1)
            seen["elapsed"] = kernel.clock.now - before

        kernel.create_thread("t", prio=5, home="app0", body_factory=body)
        kernel.run(max_steps=100)
        assert seen["elapsed"] == 0

    def test_sleeping_alone_is_not_a_hang(self):
        # A lone sleeper must ride skip_to_next_expiry, not trip the
        # all-blocked-no-timer deadlock detector.
        from repro.composite.thread import Sleep

        kernel = make_kernel()

        def body(system, thread):
            yield Sleep(10_000)

        kernel.create_thread("t", prio=5, home="app0", body_factory=body)
        kernel.run(max_steps=100)  # SystemHang would propagate
        assert kernel.clock.now == 10_000

    def test_sleep_parks_outside_any_component(self):
        # Fault wakeups (wake_all_in) sweep threads blocked *in* a
        # component; a sleeper must be invisible to them.
        from repro.composite.thread import Sleep

        kernel = make_kernel()
        seen = {}

        def sleeper(system, thread):
            yield Sleep(50_000)

        def observer(system, thread):
            while target.state is not ThreadState.BLOCKED:
                yield Yield()
            seen["blocked_in"] = target.blocked_in
            seen["echo_blocked"] = kernel.blocked_threads_in("echo")
            seen["woken_by_sweep"] = kernel.wake_all_in("echo")

        target = kernel.create_thread(
            "sleeper", prio=4, home="app0", body_factory=sleeper
        )
        kernel.create_thread(
            "observer", prio=5, home="app0", body_factory=observer
        )
        kernel.run(max_steps=200)
        assert seen["blocked_in"] is None
        assert seen["echo_blocked"] == []
        assert seen["woken_by_sweep"] == 0

    def test_ready_threads_run_while_another_sleeps(self):
        from repro.composite.thread import Sleep

        kernel = make_kernel()
        order = []

        def sleeper(system, thread):
            order.append("sleep-start")
            yield Sleep(1_000_000)
            order.append("sleep-end")

        def worker(system, thread):
            for i in range(3):
                yield Invoke("echo", "echo", i)
            order.append("worked")

        kernel.create_thread("s", prio=4, home="app0", body_factory=sleeper)
        kernel.create_thread("w", prio=5, home="app0", body_factory=worker)
        kernel.run(max_steps=200)
        assert order == ["sleep-start", "worked", "sleep-end"]
