"""Dirty-page tracking and O(dirty) restore for memory images."""

import pytest

from repro.composite.memory import (
    INITIAL_ALLOC_PTR,
    PAGE_WORDS,
    MemoryImage,
)
from repro.errors import ReproError

BASE = 0x0200_0000
SIZE = 4096


@pytest.fixture
def image():
    return MemoryImage(BASE, SIZE)


@pytest.fixture
def frozen():
    image = MemoryImage(BASE, SIZE)
    addr = image.alloc(8)
    for off in range(8):
        image.write_word(addr + off, 0x1000 + off)
    image.freeze_good_image()
    return image, addr


class TestDirtyBitmap:
    def test_freeze_clears_dirty(self, frozen):
        image, __ = frozen
        assert image.dirty_page_count == 0

    def test_write_marks_page(self, frozen):
        image, addr = frozen
        image.write_word(addr, 0xDEAD)
        assert image.dirty_page_count == 1
        assert image.is_page_dirty(addr - image.base)

    def test_writes_same_page_count_once(self, frozen):
        image, addr = frozen
        for off in range(8):
            image.write_word(addr + off, off)
        assert image.dirty_page_count == 1

    def test_writes_distinct_pages(self, frozen):
        image, __ = frozen
        image.write_word(BASE, 1)
        image.write_word(BASE + PAGE_WORDS, 2)
        image.write_word(BASE + 3 * PAGE_WORDS, 3)
        assert image.dirty_page_count == 3

    def test_corrupt_word_marks_dirty(self, frozen):
        # The taint-subset-of-dirty invariant: taint only enters via
        # writes, and every write marks its page.
        image, addr = frozen
        image.corrupt_word(addr, 0xBAD)
        assert image.taint_count == 1
        assert image.is_page_dirty(addr - image.base)


class TestRestore:
    def test_restore_copies_only_dirty_pages(self, frozen):
        image, addr = frozen
        image.write_word(addr, 0xDEAD)
        image.write_word(BASE + 2 * PAGE_WORDS, 0xBEEF)
        assert image.restore() == 2
        assert image.read_word(addr) == 0x1000
        assert image.read_word(BASE + 2 * PAGE_WORDS) == 0
        assert image.dirty_page_count == 0

    def test_restore_clears_taint(self, frozen):
        image, addr = frozen
        image.corrupt_word(addr, 0xBAD)
        image.corrupt_word(BASE + 2 * PAGE_WORDS + 7, 0xBAD)
        image.restore()
        assert image.taint_count == 0
        assert not image.is_tainted(addr)

    def test_restore_matches_full_good_image(self, frozen):
        # The O(dirty) restore must be indistinguishable from the old
        # whole-image memcpy.
        image, __ = frozen
        reference = image.words[:]
        for index in (0, 17, PAGE_WORDS + 3, SIZE - 1):
            image.write_word(BASE + index, 0xFFFF_FFFF, tainted=(index == 17))
        image.restore()
        assert image.words == reference
        assert image.taint_count == 0

    def test_restore_keeps_good_alloc_ptr(self, frozen):
        image, __ = frozen
        before = image._alloc_ptr
        image.alloc(16)
        image.restore()
        assert image._alloc_ptr == before

    def test_restore_initial_rewinds_allocator(self, frozen):
        # Pool restores replay reinit allocations at fresh-build
        # addresses, unlike micro-reboot (which keeps the post-init
        # allocator so reinit's re-allocations creep upward).
        image, __ = frozen
        image.restore_initial()
        assert image._alloc_ptr == INITIAL_ALLOC_PTR
        assert image.alloc(4) == BASE + INITIAL_ALLOC_PTR

    def test_restore_without_freeze_raises(self, image):
        with pytest.raises(ReproError):
            image.restore()

    def test_micro_reboot_uses_dirty_restore(self, frozen):
        image, addr = frozen
        image.write_word(addr, 0xDEAD)
        image.micro_reboot()
        assert image.read_word(addr) == 0x1000
        assert image.dirty_page_count == 0


class TestFreeSlice:
    def test_free_zeroes_block(self, frozen):
        image, addr = frozen
        image.free(addr, 8)
        assert all(image.read_word(addr + off) == 0 for off in range(8))

    def test_free_keeps_taint_census_exact(self, frozen):
        # Regression: free() used to clear words one write_word call at
        # a time; the slice-assignment path must keep the O(1) taint
        # census in perfect agreement with the per-word bits.
        image, addr = frozen
        image.corrupt_word(addr + 1, 0xBAD)
        image.corrupt_word(addr + 5, 0xBAD)
        outside = image.alloc(2)
        image.corrupt_word(outside, 0xBAD)
        assert image.taint_count == 3
        image.free(addr, 8)
        assert image.taint_count == 1
        assert image._taint.count(1) == image.taint_count
        assert not image.is_tainted(addr + 1)
        assert image.is_tainted(outside)

    def test_free_untainted_block(self, frozen):
        image, addr = frozen
        image.free(addr, 8)
        assert image.taint_count == 0
        assert image._taint.count(1) == 0

    def test_free_marks_pages_dirty(self, frozen):
        image, addr = frozen
        image.freeze_good_image()  # re-freeze with the block present
        image.free(addr, 8)
        assert image.dirty_page_count >= 1
        assert image.is_page_dirty(addr - image.base)

    def test_free_recycles_block(self, frozen):
        image, addr = frozen
        image.free(addr, 8)
        assert image.alloc(8) == addr
