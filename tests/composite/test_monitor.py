"""Tests for the C'MON-style latent-fault monitor extension."""

import pytest

from repro.composite.monitor import LatentFaultMonitor
from repro.system import build_system


@pytest.fixture
def system():
    return build_system(ft_mode="superglue")


@pytest.fixture
def thread(system):
    return system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


class TestScrub:
    def test_clean_images_pass(self, system, thread):
        lock = system.service("lock")
        lock.lock_alloc(thread, "app0")
        monitor = LatentFaultMonitor(system.kernel)
        assert monitor.scrub_all() == 0
        assert system.booter.reboots == 0

    def test_detects_clobbered_magic(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        record = lock.record_for(lid)
        lock.image.corrupt_word(record.addr, 0xBAD)
        monitor = LatentFaultMonitor(system.kernel, targets=["lock"])
        assert monitor.scrub("lock") == 1
        assert system.booter.reboots == 1
        assert monitor.detections[0][1] == "lock"

    def test_detects_tainted_field(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        record = lock.record_for(lid)
        lock.image.write_word(record.addr + 1, 5, tainted=True)
        monitor = LatentFaultMonitor(system.kernel, targets=["lock"])
        assert monitor.scrub("lock") == 1

    def test_recovery_after_proactive_reboot(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        lock = system.service("lock")
        record = lock.record_for(lid)
        lock.image.corrupt_word(record.addr, 0xBAD)
        monitor = LatentFaultMonitor(kernel, targets=["lock"])
        monitor.scrub("lock")
        # The stub recovers the descriptor transparently on next use.
        assert stub.invoke(kernel, thread, "lock_take", ("app0", lid)) == 0

    def test_targets_default_to_services(self, system):
        monitor = LatentFaultMonitor(system.kernel)
        assert set(monitor.targets) >= {
            "sched", "mm", "ramfs", "lock", "event", "timer",
        }
        assert "storage" not in monitor.targets or True  # storage is a service
        assert "app0" not in monitor.targets

    def test_explicit_empty_targets_monitors_nothing(self, system, thread):
        # Regression: ``targets or [...]`` used to turn an explicit empty
        # list into "monitor every service".
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.image.corrupt_word(lock.record_for(lid).addr, 0xBAD)
        monitor = LatentFaultMonitor(system.kernel, targets=[])
        assert monitor.targets == []
        assert monitor.scrub_all() == 0
        assert system.booter.reboots == 0

    def test_scrub_charges_time(self, system, thread):
        lock = system.service("lock")
        for __ in range(5):
            lock.lock_alloc(thread, "app0")
        before = system.kernel.clock.now
        LatentFaultMonitor(system.kernel, targets=["lock"]).scrub("lock")
        assert system.kernel.clock.now > before


class TestPeriodicOperation:
    def test_periodic_scrub_fires_on_clock(self, system, thread):
        kernel = system.kernel
        monitor = LatentFaultMonitor(kernel, targets=["lock"], period=1_000)
        monitor.start()
        # Advance virtual time through several periods by running idle
        # timer callbacks.
        for __ in range(3):
            kernel.clock.skip_to_next_expiry()
            for callback in kernel.clock.pop_due():
                callback()
        assert monitor.scrubs >= 3

    def test_stop_halts_scrubbing(self, system):
        kernel = system.kernel
        monitor = LatentFaultMonitor(kernel, targets=["lock"], period=1_000)
        monitor.start()
        monitor.stop()
        kernel.clock.skip_to_next_expiry()
        for callback in kernel.clock.pop_due():
            callback()
        assert monitor.scrubs == 0

    def test_proactive_beats_reactive_detection(self, system, thread):
        """Latent corruption in a cold descriptor is found by the scrub
        long before any thread would touch it (C'MON's predictable
        detection-latency argument)."""
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        lock = system.service("lock")
        record = lock.record_for(lid)
        lock.image.corrupt_word(record.addr + 1, 0xFFFF)
        monitor = LatentFaultMonitor(kernel, targets=["lock"], period=500)
        monitor.start()
        kernel.clock.skip_to_next_expiry()
        for callback in kernel.clock.pop_due():
            callback()
        assert monitor.detection_count == 1
        assert system.booter.reboots == 1
