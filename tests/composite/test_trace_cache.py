"""Tier-1 trace compilation cache: hit behaviour, gating, determinism.

The cache memoizes finished ``checked_create``/``checked_touch`` traces
per (operation, label, record address, image words, argument words, …)
key, so steady-state invocations reuse the prebuilt op list.  Correctness
hinges on two properties tested here: a hit is bit-identical to the trace
the builder would have produced (so campaign outcomes cannot move), and
shared cached traces never grow (sealing).
"""

from __future__ import annotations

from repro.composite import fastpath
from repro.composite.machine import Trace
from repro.composite.services.common import TraceCache
from repro.composite.thread import Invoke
from repro.swifi.campaign import CampaignRunner
from repro.system import build_system


def run_lock_workload(iterations: int = 25):
    """Drive a take/release loop through the full invocation path."""
    system = build_system(ft_mode="superglue")

    def body(sys_, thread):
        lock_id = yield Invoke("lock", "lock_alloc", "app0")
        for __ in range(iterations):
            yield Invoke("lock", "lock_take", "app0", lock_id)
            yield Invoke("lock", "lock_release", "app0", lock_id)

    system.kernel.create_thread("w", prio=5, home="app0", body_factory=body)
    system.run(max_steps=20 * iterations + 100)
    return system


class TestTraceCacheBehaviour:
    def test_steady_state_workload_hits_cache(self):
        system = run_lock_workload(25)
        stats = system.kernel.stats
        # First take/release builds the traces; the other 24 pairs reuse
        # them (plus the alloc miss).
        assert stats["trace_cache_hits"] >= 40
        assert stats["trace_cache_misses"] <= 6
        assert stats["invocations"] > 0

    def test_cached_traces_are_sealed_and_bounded(self):
        system = run_lock_workload(2)
        lock = system.kernel.component("lock")
        cache = lock._trace_cache
        assert cache is not None and cache.hits > 0
        for trace in cache.entries.values():
            assert trace.sealed
            assert trace.ops[-1][0] == "ret"  # epilogue appended exactly once
        assert len(cache.entries) <= cache.capacity

    def test_env_gate_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        system = run_lock_workload(5)
        lock = system.kernel.component("lock")
        assert lock._trace_cache is None
        assert system.kernel.stats["trace_cache_hits"] == 0
        assert system.kernel.stats["trace_cache_misses"] == 0

    def test_fifo_eviction_bounds_entries(self):
        cache = TraceCache(capacity=4)
        for index in range(10):
            cache.put(("k", index), Trace(f"t{index}"))
        assert len(cache.entries) == 4
        # Oldest entries evicted first.
        assert cache.get(("k", 0)) is None
        assert cache.get(("k", 9)) is not None

    def test_double_finish_cannot_grow_cached_trace(self):
        system = run_lock_workload(2)
        lock = system.kernel.component("lock")
        trace = next(iter(lock._trace_cache.entries.values()))
        before = len(trace.ops)
        lock.finish(trace, retval=0)  # legacy call pattern on a cache hit
        assert len(trace.ops) == before


class TestStubTrackingTraceCache:
    def test_tracking_traces_are_reused(self):
        system = run_lock_workload(10)
        reused = False
        for stub in system.kernel._stubs.values():
            cache = getattr(stub, "_track_traces", None)
            if cache is not None and cache.hits > 0:
                reused = True
        assert reused


class TestDeterminism:
    """Campaign outcomes are invariant under both engine tiers.

    The seed fixes the injection schedule; the cache and the compiled
    fast path must not move a single outcome.  This is the engine-level
    version of the acceptance criterion that full ``table2`` rows stay
    bit-identical.
    """

    def _campaign_counts(self):
        result = CampaignRunner("lock", n_faults=8, seed=3).run(workers=1)
        return {o.value: c for o, c in result.counter.counts.items()}

    def test_outcomes_identical_with_engine_disabled(self, monkeypatch):
        with_engine = self._campaign_counts()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        monkeypatch.setattr(fastpath, "FAST_INTERP_ENABLED", False)
        without_engine = self._campaign_counts()
        assert with_engine == without_engine
        assert sum(with_engine.values()) == 8
