"""Unit tests for the simulated machine: registers, micro-ops, injection."""

import pytest

from repro.composite.machine import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDX,
    ESI,
    ESP,
    GP_REGS,
    HANG_LIMIT,
    NUM_REGS,
    REG_NAMES,
    WORD_MASK,
    Injection,
    RegisterFile,
    Trace,
    execute_trace,
)
from repro.composite.memory import MemoryImage
from repro.errors import (
    AssertionFault,
    CorruptionDetected,
    SegmentationFault,
    SystemCrash,
    SystemHang,
)

BASE = 0x0100_0000


@pytest.fixture
def memory():
    return MemoryImage(BASE, 4096)


@pytest.fixture
def regs():
    r = RegisterFile()
    r.write(ESP, BASE + 4096)
    r.write(EBP, BASE + 4096)
    return r


class TestRegisterFile:
    def test_initial_state(self):
        r = RegisterFile()
        assert r.values == [0] * NUM_REGS
        assert not any(r.taint)

    def test_write_masks_to_32_bits(self):
        r = RegisterFile()
        r.write(EAX, 0x1_FFFF_FFFF)
        assert r.read(EAX) == 0xFFFF_FFFF

    def test_flip_bit_changes_value_and_taints(self):
        r = RegisterFile()
        r.write(EBX, 0b1000)
        r.flip_bit(EBX, 3)
        assert r.read(EBX) == 0
        assert r.taint[EBX]

    def test_flip_bit_is_involutive(self):
        r = RegisterFile()
        r.write(ECX, 12345)
        r.flip_bit(ECX, 7)
        r.flip_bit(ECX, 7)
        assert r.read(ECX) == 12345

    def test_clear_taint(self):
        r = RegisterFile()
        r.flip_bit(EAX, 0)
        r.clear_taint()
        assert not any(r.taint)

    def test_snapshot(self):
        r = RegisterFile()
        r.write(EDX, 7)
        snap = r.snapshot()
        r.write(EDX, 9)
        assert snap[EDX] == 7

    def test_register_names(self):
        assert len(REG_NAMES) == NUM_REGS
        assert REG_NAMES[ESP] == "ESP"
        assert len(GP_REGS) == 6


class TestBasicOps:
    def test_li_and_ret(self, regs, memory):
        trace = Trace().li(EAX, 42).ret(EAX)
        result = execute_trace(trace, regs, memory)
        assert result.value == 42
        assert not result.tainted

    def test_mov_copies_value(self, regs, memory):
        trace = Trace().li(EBX, 7).mov(EAX, EBX).ret(EAX)
        assert execute_trace(trace, regs, memory).value == 7

    def test_store_and_load(self, regs, memory):
        addr = memory.alloc(4)
        trace = (
            Trace()
            .li(EAX, addr)
            .li(EBX, 0xDEAD)
            .st(EBX, EAX, 2)
            .ld(ECX, EAX, 2)
            .ret(ECX)
        )
        assert execute_trace(trace, regs, memory).value == 0xDEAD
        assert memory.read_word(addr + 2) == 0xDEAD

    def test_add_and_addi(self, regs, memory):
        trace = Trace().li(EAX, 10).li(EBX, 5).add(EAX, EBX).addi(EAX, 3).ret(EAX)
        assert execute_trace(trace, regs, memory).value == 18

    def test_add_wraps_32_bits(self, regs, memory):
        trace = Trace().li(EAX, WORD_MASK).addi(EAX, 2).ret(EAX)
        assert execute_trace(trace, regs, memory).value == 1

    def test_xor(self, regs, memory):
        trace = Trace().li(EAX, 0b1100).li(EBX, 0b1010).xor(EAX, EBX).ret(EAX)
        assert execute_trace(trace, regs, memory).value == 0b0110

    def test_push_pop_roundtrip(self, regs, memory):
        trace = Trace().li(EAX, 99).push(EAX).li(EAX, 0).pop(EBX).ret(EBX)
        assert execute_trace(trace, regs, memory).value == 99

    def test_prologue_epilogue_balance(self, regs, memory):
        trace = Trace().prologue().li(EAX, 5).epilogue(EAX)
        result = execute_trace(trace, regs, memory)
        assert result.value == 5
        assert regs.read(ESP) == BASE + 4096

    def test_cycles_accumulate(self, regs, memory):
        trace = Trace().li(EAX, 1).li(EBX, 2).ret(EAX)
        result = execute_trace(trace, regs, memory)
        assert result.cycles == 1 + 1 + 1

    def test_loop_charges_per_iteration(self, regs, memory):
        trace = Trace().li(ESI, 10).loop(ESI, 4).ret(EAX)
        result = execute_trace(trace, regs, memory)
        assert result.cycles >= 10 * 4

    def test_ret_stops_execution(self, regs, memory):
        trace = Trace().li(EAX, 1).ret(EAX).li(EAX, 2)
        assert execute_trace(trace, regs, memory).value == 1

    def test_entry_regs_attribute(self):
        trace = Trace()
        trace.entry_regs = {EAX: 5}
        assert trace.entry_regs[EAX] == 5


class TestChecks:
    def test_chk_passes_on_magic(self, regs, memory):
        addr = memory.alloc_record(0xFEED, 2)
        trace = Trace().li(EAX, addr).chk(EAX, 0, 0xFEED).ret(EAX)
        execute_trace(trace, regs, memory)

    def test_chk_raises_on_corruption(self, regs, memory):
        addr = memory.alloc_record(0xFEED, 2)
        memory.corrupt_word(addr, 0xBAD)
        trace = Trace().li(EAX, addr).chk(EAX, 0, 0xFEED)
        with pytest.raises(CorruptionDetected):
            execute_trace(trace, regs, memory, component_name="svc")

    def test_assert_eq_passes(self, regs, memory):
        trace = Trace().li(EAX, 5).assert_eq(EAX, 5).ret(EAX)
        execute_trace(trace, regs, memory)

    def test_assert_eq_fails(self, regs, memory):
        trace = Trace().li(EAX, 5).assert_eq(EAX, 6)
        with pytest.raises(AssertionFault):
            execute_trace(trace, regs, memory)

    def test_assert_range(self, regs, memory):
        trace = Trace().li(EAX, 5).assert_range(EAX, 1, 10).ret(EAX)
        execute_trace(trace, regs, memory)
        bad = Trace().li(EAX, 50).assert_range(EAX, 1, 10)
        with pytest.raises(AssertionFault):
            execute_trace(bad, regs, memory)

    def test_fault_carries_component_name(self, regs, memory):
        trace = Trace().li(EAX, 5).assert_eq(EAX, 6)
        with pytest.raises(AssertionFault) as excinfo:
            execute_trace(trace, regs, memory, component_name="lock")
        assert excinfo.value.component == "lock"
        assert excinfo.value.recoverable


class TestMemoryFaults:
    def test_load_out_of_bounds_segfaults(self, regs, memory):
        trace = Trace().li(EAX, 0xDEAD0000).ld(EBX, EAX, 0)
        with pytest.raises(SegmentationFault):
            execute_trace(trace, regs, memory)

    def test_store_out_of_bounds_segfaults(self, regs, memory):
        trace = Trace().li(EAX, 0xDEAD0000).li(EBX, 1).st(EBX, EAX, 0)
        with pytest.raises(SegmentationFault):
            execute_trace(trace, regs, memory)

    def test_untainted_stack_fault_is_recoverable_segfault(self, regs, memory):
        # A wrong (but untainted) ESP is a plain recoverable segfault.
        regs.write(ESP, 0x5)
        trace = Trace().push(EAX)
        with pytest.raises(SegmentationFault) as excinfo:
            execute_trace(trace, regs, memory)
        assert excinfo.value.recoverable

    def test_tainted_stack_access_is_system_crash(self, regs, memory):
        trace = Trace().push(EAX)
        injection = Injection(reg=ESP, bit=31, op_index=0)
        with pytest.raises(SystemCrash) as excinfo:
            execute_trace(trace, regs, memory, injection=injection)
        assert not excinfo.value.recoverable


class TestHang:
    def test_huge_loop_bound_hangs(self, regs, memory):
        trace = Trace().li(ESI, HANG_LIMIT + 1).loop(ESI)
        with pytest.raises(SystemHang) as excinfo:
            execute_trace(trace, regs, memory)
        assert not excinfo.value.recoverable

    def test_loop_at_limit_ok(self, regs, memory):
        trace = Trace().li(ESI, 100).loop(ESI).ret(EAX)
        execute_trace(trace, regs, memory)


class TestInjection:
    def test_injection_applies_at_op_index(self, regs, memory):
        # Flip bit 0 of EAX after it is loaded with 4: value becomes 5.
        trace = Trace().li(EAX, 4).ret(EAX)
        injection = Injection(reg=EAX, bit=0, op_index=1)
        result = execute_trace(trace, regs, memory, injection=injection)
        assert result.value == 5
        assert result.tainted
        assert injection.applied

    def test_injection_before_overwrite_is_dead(self, regs, memory):
        # Flip happens before the li overwrites the register: no effect.
        trace = Trace().li(EAX, 4).ret(EAX)
        injection = Injection(reg=EAX, bit=0, op_index=0)
        result = execute_trace(trace, regs, memory, injection=injection)
        assert result.value == 4
        assert not result.tainted

    def test_taint_propagates_through_mov_and_add(self, regs, memory):
        trace = (
            Trace().li(EAX, 1).li(EBX, 2).mov(ECX, EAX).add(ECX, EBX).ret(ECX)
        )
        injection = Injection(reg=EAX, bit=4, op_index=2)
        result = execute_trace(trace, regs, memory, injection=injection)
        assert result.tainted

    def test_tainted_store_marks_memory(self, regs, memory):
        addr = memory.alloc(2)
        trace = Trace().li(EAX, addr).li(EBX, 1).st(EBX, EAX, 0).ret(EAX)
        injection = Injection(reg=EBX, bit=2, op_index=2)
        result = execute_trace(trace, regs, memory, injection=injection)
        assert result.stores_tainted == 1
        assert memory.is_tainted(addr)

    def test_tainted_load_propagates_from_memory(self, regs, memory):
        addr = memory.alloc(2)
        memory.write_word(addr, 7, tainted=True)
        trace = Trace().li(EAX, addr).ld(EBX, EAX, 0).ret(EBX)
        result = execute_trace(trace, regs, memory)
        assert result.tainted

    def test_high_bit_address_flip_segfaults(self, regs, memory):
        addr = memory.alloc(2)
        trace = Trace().li(EAX, addr).ld(EBX, EAX, 0).ret(EBX)
        injection = Injection(reg=EAX, bit=30, op_index=1)
        with pytest.raises(SegmentationFault):
            execute_trace(trace, regs, memory, injection=injection)

    def test_corrupted_loop_counter_hangs(self, regs, memory):
        trace = Trace().li(ESI, 4).loop(ESI).ret(EAX)
        injection = Injection(reg=ESI, bit=31, op_index=1)
        with pytest.raises(SystemHang):
            execute_trace(trace, regs, memory, injection=injection)

    def test_injection_clamped_to_trace_length(self, regs, memory):
        trace = Trace().li(EAX, 1).ret(EAX)
        injection = Injection(reg=EAX, bit=0, op_index=99)
        execute_trace(trace, regs, memory, injection=injection)
        assert injection.applied

    def test_applied_injection_not_reapplied(self, regs, memory):
        trace = Trace().li(EAX, 4).ret(EAX)
        injection = Injection(reg=EAX, bit=0, op_index=1)
        execute_trace(trace, regs, memory, injection=injection)
        # Second execution must not flip again.
        result = execute_trace(trace, regs, memory, injection=injection)
        assert result.value == 4

    def test_repr(self):
        injection = Injection(reg=EAX, bit=3, op_index=2)
        assert "EAX" in repr(injection)
