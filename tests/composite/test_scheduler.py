"""Unit tests for the virtual clock and the fixed-priority run queue."""

import pytest

from repro.composite.scheduler import (
    CYCLES_PER_US,
    RunQueue,
    VirtualClock,
    cycles_to_us,
)
from repro.composite.thread import SimThread, ThreadState


def make_thread(tid, prio):
    return SimThread(tid, f"t{tid}", prio, "app0", lambda s, t: iter(()))


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now == 150

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_timers_fire_in_order(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(200, lambda: fired.append("b"))
        clock.schedule(100, lambda: fired.append("a"))
        clock.advance(150)
        for cb in clock.pop_due():
            cb()
        assert fired == ["a"]
        clock.advance(100)
        for cb in clock.pop_due():
            cb()
        assert fired == ["a", "b"]

    def test_same_expiry_fifo(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(10, lambda: fired.append(1))
        clock.schedule(10, lambda: fired.append(2))
        clock.advance(10)
        for cb in clock.pop_due():
            cb()
        assert fired == [1, 2]

    def test_next_expiry(self):
        clock = VirtualClock()
        assert clock.next_expiry() is None
        clock.schedule(42, lambda: None)
        assert clock.next_expiry() == 42

    def test_skip_to_next_expiry(self):
        clock = VirtualClock()
        assert not clock.skip_to_next_expiry()
        clock.schedule(500, lambda: None)
        assert clock.skip_to_next_expiry()
        assert clock.now == 500

    def test_skip_does_not_rewind(self):
        clock = VirtualClock()
        clock.advance(1000)
        clock.schedule(500, lambda: None)
        clock.skip_to_next_expiry()
        assert clock.now == 1000

    def test_cycles_to_us(self):
        assert cycles_to_us(CYCLES_PER_US) == 1.0
        assert cycles_to_us(2400 * 10) == 10.0


class TestRunQueue:
    def test_empty_pick(self):
        assert RunQueue().pick() is None

    def test_priority_order(self):
        q = RunQueue()
        low = make_thread(1, prio=10)
        high = make_thread(2, prio=1)
        q.add(low)
        q.add(high)
        assert q.pick() is high

    def test_blocked_threads_skipped(self):
        q = RunQueue()
        t1 = make_thread(1, prio=1)
        t2 = make_thread(2, prio=5)
        q.add(t1)
        q.add(t2)
        t1.state = ThreadState.BLOCKED
        assert q.pick() is t2

    def test_round_robin_among_equal_priorities(self):
        q = RunQueue()
        a = make_thread(1, prio=5)
        b = make_thread(2, prio=5)
        q.add(a)
        q.add(b)
        picks = {q.pick(), q.pick()}
        assert picks == {a, b}

    def test_all_done(self):
        q = RunQueue()
        t = make_thread(1, prio=1)
        q.add(t)
        assert not q.all_done()
        t.state = ThreadState.DONE
        assert q.all_done()
        crashed = make_thread(2, prio=1)
        crashed.state = ThreadState.CRASHED
        q.add(crashed)
        assert q.all_done()

    def test_blocked_listing(self):
        q = RunQueue()
        t = make_thread(1, prio=1)
        q.add(t)
        assert q.blocked() == []
        t.state = ThreadState.BLOCKED
        assert q.blocked() == [t]

    def test_remove(self):
        q = RunQueue()
        t = make_thread(1, prio=1)
        q.add(t)
        q.remove(t)
        assert q.pick() is None
