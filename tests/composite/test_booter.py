"""Tests for the booter and the recovery manager hand-off."""

import pytest

from repro.core.runtime.recovery import RecoveryManager
from repro.errors import AssertionFault, ConfigurationError
from repro.system import build_system


def synthetic_fault():
    return AssertionFault("synthetic", component="lock")


class TestBooter:
    def test_reboot_log_grows(self):
        system = build_system(ft_mode="superglue")
        lock = system.kernel.component("lock")
        system.booter.handle_fault(lock, synthetic_fault())
        assert system.booter.reboots == 1
        clock, name, kind = system.booter.reboot_log[0]
        assert name == "lock" and kind == "assertion"

    def test_reboot_bumps_epoch_and_charges_time(self):
        system = build_system(ft_mode="superglue")
        lock = system.kernel.component("lock")
        before = system.kernel.clock.now
        system.booter.handle_fault(lock, synthetic_fault())
        assert lock.reboot_epoch == 1
        assert system.kernel.clock.now > before

    def test_post_reboot_init_upcall(self):
        system = build_system(ft_mode="superglue")
        sched = system.kernel.component("sched")
        thread = system.kernel.create_thread(
            "t", prio=2, home="app0", body_factory=lambda s, t: iter(())
        )
        fault = AssertionFault("synthetic", component="sched")
        system.booter.handle_fault(sched, fault)
        # Reflection ran: the kernel thread is back in the sched table.
        assert sched.is_registered(thread.tid)

    def test_vector_fault_requires_booter_in_ft_mode(self):
        from repro.composite.kernel import Kernel
        from repro.composite.app import AppComponent

        kernel = Kernel(ft_mode="superglue")
        kernel.register_component(AppComponent("app0"))
        with pytest.raises(ConfigurationError):
            kernel.vector_fault(
                kernel.component("app0"), synthetic_fault()
            )


class TestRecoveryManager:
    def test_mode_validation(self):
        system = build_system(ft_mode="superglue")
        with pytest.raises(ConfigurationError):
            RecoveryManager(system.kernel, mode="lazy-ish")

    def test_reboot_events_recorded(self):
        system = build_system(ft_mode="superglue")
        lock = system.kernel.component("lock")
        system.booter.handle_fault(lock, synthetic_fault())
        events = system.recovery_manager.reboot_events
        assert len(events) == 1
        assert events[0][1] == "lock"

    def test_mean_recovery_cycles_empty(self):
        system = build_system(ft_mode="superglue")
        assert system.recovery_manager.mean_recovery_cycles("lock") is None

    def test_record_and_mean(self):
        system = build_system(ft_mode="superglue")
        manager = system.recovery_manager
        manager.record_descriptor_recovery("lock", 100)
        manager.record_descriptor_recovery("lock", 300)
        assert manager.mean_recovery_cycles("lock") == 200
        assert manager.total_recoveries == 2
