"""Unit tests for the six system services (python-level semantics)."""

import pytest

from repro.composite.services.ramfs import ROOT_FD, path_hash
from repro.errors import BlockThread, InvalidDescriptor
from repro.system import build_system


@pytest.fixture
def system():
    return build_system(ft_mode="none")


@pytest.fixture
def thread(system):
    return system.kernel.create_thread(
        "tester", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


@pytest.fixture
def thread2(system):
    return system.kernel.create_thread(
        "tester2", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


# ---------------------------------------------------------------------------
class TestLockService:
    def test_alloc_ids_monotonic(self, system, thread):
        lock = system.service("lock")
        assert lock.lock_alloc(thread, "app0") == 1
        assert lock.lock_alloc(thread, "app0") == 2

    def test_take_free_lock(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        assert lock.lock_take(thread, "app0", lid) == 0
        assert lock.owner_of(lid) == thread.tid

    def test_retake_owned_is_noop(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.lock_take(thread, "app0", lid)
        assert lock.lock_take(thread, "app0", lid) == 0
        assert lock.owner_of(lid) == thread.tid

    def test_contended_take_blocks(self, system, thread, thread2):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.lock_take(thread, "app0", lid)
        with pytest.raises(BlockThread):
            lock.lock_take(thread2, "app0", lid)
        assert thread2.tid in lock.waiters_of(lid)

    def test_release_not_owner_eperm(self, system, thread, thread2):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.lock_take(thread, "app0", lid)
        assert lock.lock_release(thread2, "app0", lid) == -1

    def test_release_no_waiters(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.lock_take(thread, "app0", lid)
        assert lock.lock_release(thread, "app0", lid) == 0
        assert lock.owner_of(lid) == 0

    def test_release_hands_off_to_waiter(self, system, thread, thread2):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        lock.lock_take(thread, "app0", lid)
        with pytest.raises(BlockThread):
            lock.lock_take(thread2, "app0", lid)
        lock.lock_release(thread, "app0", lid)
        assert lock.owner_of(lid) == thread2.tid
        assert lock.waiters_of(lid) == []

    def test_free_removes_lock(self, system, thread):
        lock = system.service("lock")
        lid = lock.lock_alloc(thread, "app0")
        assert lock.lock_free(thread, "app0", lid) == 0
        with pytest.raises(InvalidDescriptor):
            lock.lock_take(thread, "app0", lid)

    def test_unknown_descriptor(self, system, thread):
        lock = system.service("lock")
        with pytest.raises(InvalidDescriptor):
            lock.lock_take(thread, "app0", 404)

    def test_reinit_clears_everything(self, system, thread):
        lock = system.service("lock")
        lock.lock_alloc(thread, "app0")
        lock.reinit()
        assert lock.locks == {}


# ---------------------------------------------------------------------------
class TestSchedService:
    def test_register_returns_tid(self, system, thread):
        sched = system.service("sched")
        assert sched.sched_register(thread, "app0") == thread.tid
        assert sched.is_registered(thread.tid)

    def test_register_idempotent(self, system, thread):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        assert sched.sched_register(thread, "app0") == thread.tid

    def test_blk_requires_registration(self, system, thread):
        sched = system.service("sched")
        with pytest.raises(InvalidDescriptor):
            sched.sched_blk(thread, "app0", thread.tid)

    def test_blk_only_self(self, system, thread, thread2):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        assert sched.sched_blk(thread, "app0", thread2.tid) == -1

    def test_blk_blocks(self, system, thread):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        with pytest.raises(BlockThread):
            sched.sched_blk(thread, "app0", thread.tid)

    def test_wakeup_before_block_latches(self, system, thread, thread2):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        sched.sched_register(thread2, "app0")
        assert sched.sched_wakeup(thread2, "app0", thread.tid) == 0
        # The latched wakeup makes the next block return immediately.
        assert sched.sched_blk(thread, "app0", thread.tid) == 0

    def test_latch_survives_reboot_via_storage(self, system, thread, thread2):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        sched.sched_register(thread2, "app0")
        sched.sched_wakeup(thread2, "app0", thread.tid)
        sched.micro_reboot()
        sched.post_reboot_init()
        assert thread.tid in sched.pending_wakeups

    def test_exit_unregisters(self, system, thread):
        sched = system.service("sched")
        sched.sched_register(thread, "app0")
        assert sched.sched_exit(thread, "app0", thread.tid) == 0
        assert not sched.is_registered(thread.tid)

    def test_reflection_rebuilds_table(self, system, thread):
        sched = system.service("sched")
        sched.micro_reboot()
        sched.post_reboot_init()
        assert sched.is_registered(thread.tid)


# ---------------------------------------------------------------------------
class TestTimerService:
    def test_alloc_and_period(self, system, thread):
        timer = system.service("timer")
        tmid = timer.timer_alloc(thread, "app0", 1000)
        assert timer.period_of(tmid) == 1000

    def test_alloc_rejects_bad_period(self, system, thread):
        timer = system.service("timer")
        assert timer.timer_alloc(thread, "app0", 0) == -1
        assert timer.timer_alloc(thread, "app0", -5) == -1

    def test_block_blocks_with_timeout(self, system, thread):
        timer = system.service("timer")
        tmid = timer.timer_alloc(thread, "app0", 1000)
        with pytest.raises(BlockThread) as excinfo:
            timer.timer_block(thread, "app0", tmid)
        assert excinfo.value.timeout is not None
        assert excinfo.value.timeout > system.kernel.clock.now
        assert excinfo.value.timeout % 1000 == 0

    def test_free_removes(self, system, thread):
        timer = system.service("timer")
        tmid = timer.timer_alloc(thread, "app0", 1000)
        assert timer.timer_free(thread, "app0", tmid) == 0
        with pytest.raises(InvalidDescriptor):
            timer.timer_block(thread, "app0", tmid)

    def test_expire_unknown(self, system, thread):
        timer = system.service("timer")
        with pytest.raises(InvalidDescriptor):
            timer.timer_expire(thread, "app0", 7)


# ---------------------------------------------------------------------------
class TestEventService:
    def test_split_and_ids(self, system, thread):
        event = system.service("event")
        a = event.evt_split(thread, "app0", 0, 1)
        b = event.evt_split(thread, "app0", 0, 2)
        assert a != b

    def test_split_unknown_parent(self, system, thread):
        event = system.service("event")
        with pytest.raises(InvalidDescriptor):
            event.evt_split(thread, "app0", 99, 1)

    def test_split_with_parent(self, system, thread):
        event = system.service("event")
        parent = event.evt_split(thread, "app0", 0, 1)
        child = event.evt_split(thread, "app0", parent, 2)
        assert event.events[child].parent == parent

    def test_wait_blocks_when_no_pending(self, system, thread):
        event = system.service("event")
        evtid = event.evt_split(thread, "app0", 0, 1)
        with pytest.raises(BlockThread):
            event.evt_wait(thread, "app0", evtid)
        assert thread.tid in event.waiters_of(evtid)

    def test_trigger_pends_without_waiter(self, system, thread):
        event = system.service("event")
        evtid = event.evt_split(thread, "app0", 0, 1)
        assert event.evt_trigger(thread, "app0", evtid) == 0
        assert event.pending_of(evtid) == 1

    def test_wait_consumes_pending(self, system, thread):
        event = system.service("event")
        evtid = event.evt_split(thread, "app0", 0, 1)
        event.evt_trigger(thread, "app0", evtid)
        assert event.evt_wait(thread, "app0", evtid) == 0
        assert event.pending_of(evtid) == 0

    def test_pending_survives_reboot_via_storage(self, system, thread):
        event = system.service("event")
        evtid = event.evt_split(thread, "app0", 0, 1)
        event.evt_trigger(thread, "app0", evtid)
        event.micro_reboot()
        new_id = event.evt_split(thread, "app0", 0, 1)
        assert event.pending_of(new_id) == 1

    def test_free_cleans_storage(self, system, thread):
        event = system.service("event")
        evtid = event.evt_split(thread, "app0", 0, 1)
        event.evt_trigger(thread, "app0", evtid)
        event.evt_free(thread, "app0", evtid)
        new_id = event.evt_split(thread, "app0", 0, 1)
        assert event.pending_of(new_id) == 0


# ---------------------------------------------------------------------------
class TestMMService:
    def test_get_page_returns_vaddr(self, system, thread):
        mm = system.service("mm")
        assert mm.mman_get_page(thread, "app0", 0x4000) == 0x4000
        assert mm.has_mapping("app0", 0x4000)

    def test_get_page_idempotent(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        frame = mm.frame_of("app0", 0x4000)
        assert mm.mman_get_page(thread, "app0", 0x4000) == 0x4000
        assert mm.frame_of("app0", 0x4000) == frame

    def test_alias_shares_frame(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        assert mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000) == 0x8000
        assert mm.frame_of("app1", 0x8000) == mm.frame_of("app0", 0x4000)
        assert mm.parent_of("app1", 0x8000) == ("app0", 0x4000)

    def test_alias_unknown_parent(self, system, thread):
        mm = system.service("mm")
        with pytest.raises(InvalidDescriptor):
            mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)

    def test_alias_idempotent_same_parent(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)
        assert mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000) == 0x8000

    def test_alias_conflicting_parent_rejected(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_get_page(thread, "app0", 0x5000)
        mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)
        assert mm.mman_alias_page(thread, "app0", 0x5000, "app1", 0x8000) == -1

    def test_get_page_over_alias_rejected(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)
        assert mm.mman_get_page(thread, "app1", 0x8000) == -1

    def test_release_revokes_subtree(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)
        mm.mman_alias_page(thread, "app1", 0x8000, "app2", 0xC000)
        assert mm.mman_release_page(thread, "app0", 0x4000) == 0
        assert not mm.has_mapping("app0", 0x4000)
        assert not mm.has_mapping("app1", 0x8000)
        assert not mm.has_mapping("app2", 0xC000)

    def test_release_middle_keeps_root(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_alias_page(thread, "app0", 0x4000, "app1", 0x8000)
        mm.mman_release_page(thread, "app1", 0x8000)
        assert mm.has_mapping("app0", 0x4000)
        assert not mm.has_mapping("app1", 0x8000)

    def test_release_unknown(self, system, thread):
        mm = system.service("mm")
        with pytest.raises(InvalidDescriptor):
            mm.mman_release_page(thread, "app0", 0x4000)

    def test_frames_unique_per_root(self, system, thread):
        mm = system.service("mm")
        mm.mman_get_page(thread, "app0", 0x4000)
        mm.mman_get_page(thread, "app0", 0x5000)
        assert mm.frame_of("app0", 0x4000) != mm.frame_of("app0", 0x5000)


# ---------------------------------------------------------------------------
class TestRamFSService:
    def test_root_exists(self, system):
        ramfs = system.service("ramfs")
        assert ramfs.path_of(ROOT_FD) == "/"

    def test_tsplit_creates_file(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        assert ramfs.path_of(fd) == "/a.txt"
        assert ramfs.offset_of(fd) == 0

    def test_tsplit_unknown_parent(self, system, thread):
        ramfs = system.service("ramfs")
        with pytest.raises(InvalidDescriptor):
            ramfs.tsplit(thread, "app0", 99, "a.txt")

    def test_write_read_roundtrip(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        assert ramfs.twrite(thread, "app0", fd, b"hello") == 5
        ramfs.tseek(thread, "app0", fd, 0)
        assert ramfs.tread(thread, "app0", fd, 5) == b"hello"

    def test_offset_advances(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        ramfs.twrite(thread, "app0", fd, b"ab")
        assert ramfs.offset_of(fd) == 2
        ramfs.tseek(thread, "app0", fd, 1)
        assert ramfs.tread(thread, "app0", fd, 1) == b"b"
        assert ramfs.offset_of(fd) == 2

    def test_read_past_end_truncates(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        ramfs.twrite(thread, "app0", fd, b"xy")
        ramfs.tseek(thread, "app0", fd, 0)
        assert ramfs.tread(thread, "app0", fd, 100) == b"xy"

    def test_release_keeps_data(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        ramfs.twrite(thread, "app0", fd, b"data")
        assert ramfs.trelease(thread, "app0", fd) == 0
        fd2 = ramfs.tsplit(thread, "app0", ROOT_FD, "a.txt")
        assert ramfs.tread(thread, "app0", fd2, 4) == b"data"

    def test_release_root_rejected(self, system, thread):
        ramfs = system.service("ramfs")
        assert ramfs.trelease(thread, "app0", ROOT_FD) == -1

    def test_data_survives_reboot_via_storage(self, system, thread):
        ramfs = system.service("ramfs")
        fd = ramfs.tsplit(thread, "app0", ROOT_FD, "keep.txt")
        ramfs.twrite(thread, "app0", fd, b"persist")
        ramfs.micro_reboot()
        fd2 = ramfs.tsplit(thread, "app0", ROOT_FD, "keep.txt")
        assert ramfs.tread(thread, "app0", fd2, 7) == b"persist"

    def test_path_hash_stable(self):
        assert path_hash("/a") == path_hash("/a")
        assert path_hash("/a") != path_hash("/b")

    def test_nested_split(self, system, thread):
        ramfs = system.service("ramfs")
        dir_fd = ramfs.tsplit(thread, "app0", ROOT_FD, "dir")
        file_fd = ramfs.tsplit(thread, "app0", dir_fd, "f.txt")
        assert ramfs.path_of(file_fd) == "/dir/f.txt"


# ---------------------------------------------------------------------------
class TestStorageService:
    def test_put_get_del(self, system, thread):
        storage = system.service("storage")
        storage.store_put(thread, "ns", "k", 42)
        assert storage.store_get(thread, "ns", "k") == 42
        storage.store_del(thread, "ns", "k")
        assert storage.store_get(thread, "ns", "k") is None

    def test_namespaces_isolated(self, system, thread):
        storage = system.service("storage")
        storage.store_put(thread, "a", "k", 1)
        storage.store_put(thread, "b", "k", 2)
        assert storage.store_get(thread, "a", "k") == 1
        assert storage.store_get(thread, "b", "k") == 2

    def test_store_list(self, system, thread):
        storage = system.service("storage")
        storage.store_put(thread, "ns", "x", 1)
        storage.store_put(thread, "ns", "y", 2)
        assert sorted(storage.store_list(thread, "ns")) == [("x", 1), ("y", 2)]

    def test_creator_records(self, system, thread):
        storage = system.service("storage")
        storage.record_creator(thread, "event", 5, "app0")
        assert storage.lookup_creator(thread, "event", 5) == "app0"
        assert storage.lookup_creator(thread, "event", 6) is None

    def test_alias_chain_resolution(self, system, thread):
        storage = system.service("storage")
        storage.record_alias(thread, "event", 1, 4)
        storage.record_alias(thread, "event", 4, 9)
        assert storage.resolve_alias(thread, "event", 1) == 9

    def test_alias_cycle_terminates(self, system, thread):
        storage = system.service("storage")
        storage.record_alias(thread, "event", 1, 2)
        storage.record_alias(thread, "event", 2, 1)
        assert storage.resolve_alias(thread, "event", 1) in (1, 2)

    def test_contents_survive_reinit(self, system, thread):
        storage = system.service("storage")
        storage.store_put(thread, "ns", "k", 1)
        storage.reinit()
        assert storage.store_get(thread, "ns", "k") == 1
