"""Additional unit tests for the SWIFI helpers and analysis formatting."""

from repro.swifi.campaign import CampaignResult, format_table2
from repro.swifi.classify import MAX_DETAILS, Outcome, OutcomeCounter
from repro.swifi.injector import FULL_MASK, PlannedInjection, SwifiController
from repro.system import build_system


class TestPlannedInjection:
    def test_repr(self):
        plan = PlannedInjection("lock", reg=2, bit=5, after_executions=3)
        text = repr(plan)
        assert "lock" in text and "bit=5" in text


class TestControllerBookkeeping:
    def test_trace_counts_accumulate(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=0)
        from repro.workloads import workload_for

        workload_for("ramfs").install(system, iterations=2)
        system.run(max_steps=20_000)
        assert swifi.trace_counts.get("ramfs", 0) > 0
        # Client-side tracking traces execute in app components and are
        # counted there, never delivered (not a target).
        assert swifi.delivered_count == 0

    def test_full_mask_covers_all_bits(self):
        assert FULL_MASK == 0xFFFFFFFF

    def test_seeded_reproducibility(self):
        system1 = build_system(ft_mode="superglue")
        system2 = build_system(ft_mode="superglue")
        a = SwifiController(system1.kernel, seed=9).arm("lock")
        b = SwifiController(system2.kernel, seed=9).arm("lock")
        assert (a.reg, a.bit) == (b.reg, b.bit)


class TestResultRow:
    def test_row_and_format(self):
        counter = OutcomeCounter()
        for __ in range(7):
            counter.add(Outcome.RECOVERED)
        counter.add(Outcome.NOT_RECOVERED_SEGFAULT, detail="boom")
        counter.add(Outcome.UNDETECTED)
        result = CampaignResult(
            service="lock", counter=counter, seed=1, ft_mode="superglue"
        )
        row = result.row()
        assert row["injected"] == 9
        assert row["recovered"] == 7
        assert result.injected == 9
        table = format_table2([result])
        assert "lock" in table
        assert counter.details == ["not_recovered_segfault: boom"]

    def test_details_growth_is_capped(self):
        # Regression: details grew one string per detailed outcome with
        # no bound, so huge campaigns accumulated unbounded memory.
        counter = OutcomeCounter()
        for i in range(MAX_DETAILS + 25):
            counter.add(Outcome.NOT_RECOVERED_OTHER, detail=f"run {i}")
        assert len(counter.details) == MAX_DETAILS
        assert counter.details_dropped == 25
        # The statistics themselves are unaffected by the cap.
        assert counter.injected == MAX_DETAILS + 25
        assert counter.count(Outcome.NOT_RECOVERED_OTHER) == MAX_DETAILS + 25


class TestAnalysisFormatting:
    def test_tracking_overhead_requires_working_workload(self):
        from repro.analysis.overhead import _run_workload

        system = _run_workload("superglue", "lock", iterations=2)
        assert system.kernel.crashed is None

    def test_schedulability_bound_dataclass(self):
        from repro.analysis.schedulability import RecoveryBound

        bound = RecoveryBound("lock", "s", ["a"], cycles=2400)
        assert bound.us == 1.0
