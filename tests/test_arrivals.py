"""Open-loop arrival schedules: purity, phases, heavy tails."""

import pytest

from repro.composite.scheduler import CYCLES_PER_US
from repro.webserver.arrivals import (
    EST_BASE_CYCLES,
    EST_CHUNK_CYCLES,
    PHASE_PRESETS,
    Arrival,
    ArrivalSpec,
    bounded_pareto,
    offered_rps,
    parse_phases,
)

SITE = ("about.html", "data.bin", "index.html")


class TestParsePhases:
    def test_presets_resolve(self):
        for name in PHASE_PRESETS:
            phases = parse_phases(name)
            assert phases
            assert abs(sum(p.fraction for p in phases) - 1.0) < 1e-9

    def test_custom_spec(self):
        phases = parse_phases("warm:0.25@0.5,storm:0.5@3.0,cool:0.25@0.5")
        assert [p.name for p in phases] == ["warm", "storm", "cool"]
        assert phases[1].rate == 3.0

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1.0"):
            parse_phases("a:0.5@1.0,b:0.4@1.0")

    def test_malformed_entries_rejected(self):
        for bad in ("a:@1", "a:0.5", "nonsense", "a:x@y", ""):
            with pytest.raises(ValueError):
                parse_phases(bad)

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            parse_phases("a:1.0@0")


class TestBoundedPareto:
    def test_stays_in_bounds(self):
        for i in range(1000):
            u = i / 1000.0
            w = bounded_pareto(u, 1.5, 1, 32)
            assert 1 <= w <= 32

    def test_monotone_in_u(self):
        samples = [bounded_pareto(i / 100.0, 1.5, 1, 32) for i in range(100)]
        assert samples == sorted(samples)

    def test_degenerate_range(self):
        assert bounded_pareto(0.99, 1.5, 4, 4) == 4

    def test_heavy_tail_present(self):
        # The top of the u range must actually reach large weights.
        assert bounded_pareto(0.999, 1.5, 1, 32) > 16


class TestArrivalSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(n_requests=0)
        with pytest.raises(ValueError):
            ArrivalSpec(load=0)
        with pytest.raises(ValueError):
            ArrivalSpec(alpha_milli=1000)  # infinite mean
        with pytest.raises(ValueError):
            ArrivalSpec(weight_min=5, weight_max=2)
        with pytest.raises(ValueError):
            ArrivalSpec(phases="b:0.9@1.0")

    def test_phase_counts_apportion_exactly(self):
        spec = ArrivalSpec(n_requests=101, phases="burst")
        counts = spec.phase_counts()
        assert sum(c for __, c in counts) == 101

    def test_build_is_pure(self):
        spec = ArrivalSpec(n_requests=150, load=1.3, phases="diurnal", seed=5)
        assert spec.build(SITE) == spec.build(SITE)

    def test_seed_changes_schedule(self):
        a = ArrivalSpec(n_requests=100, seed=0).build(SITE)
        b = ArrivalSpec(n_requests=100, seed=1).build(SITE)
        assert a != b

    def test_arrival_seed_independent_of_equal_specs(self):
        # Two equal specs are the *same* schedule object-for-object —
        # this is what lets one super-trace recording serve all SWIFI
        # seeds of a campaign.
        a = ArrivalSpec(n_requests=80, load=2.0, seed=3)
        b = ArrivalSpec(n_requests=80, load=2.0, seed=3)
        assert a.build(SITE) == b.build(SITE)

    def test_times_strictly_increase(self):
        arrivals = ArrivalSpec(n_requests=200, load=5.0).build(SITE)
        times = [a.at for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_weights_bounded(self):
        spec = ArrivalSpec(n_requests=300, weight_min=2, weight_max=8)
        assert all(2 <= a.weight <= 8 for a in spec.build(SITE))

    def test_load_scales_span(self):
        lo = ArrivalSpec(n_requests=200, load=0.5, seed=2).build(SITE)
        hi = ArrivalSpec(n_requests=200, load=2.0, seed=2).build(SITE)
        # Same weights, same gap draws: 4x the load compresses the span
        # by exactly 4 up to integer truncation.
        assert lo[-1].at > 3.5 * hi[-1].at

    def test_load_one_offers_about_estimated_demand(self):
        spec = ArrivalSpec(n_requests=500, load=1.0, seed=0)
        arrivals = spec.build(SITE)
        demand = sum(
            EST_BASE_CYCLES + (a.weight - 1) * EST_CHUNK_CYCLES
            for a in arrivals
        )
        span = arrivals[-1].at
        # Poisson noise: the realized span sits near the calibrated one.
        assert 0.7 < span / demand < 1.3

    def test_paths_cycle_site(self):
        arrivals = ArrivalSpec(n_requests=6).build(SITE)
        assert [a.path for a in arrivals] == list(SITE) * 2


class TestOfferedRps:
    def test_empty(self):
        assert offered_rps([], CYCLES_PER_US) == 0.0

    def test_rate_math(self):
        arrivals = [
            Arrival(at=(i + 1) * CYCLES_PER_US, path="index.html", weight=1)
            for i in range(100)
        ]
        # One request per virtual microsecond = 1e6 per virtual second.
        assert offered_rps(arrivals, CYCLES_PER_US) == pytest.approx(1e6)
