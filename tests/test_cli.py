"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


class TestCompileCommand:
    def test_compile_known_service(self, capsys):
        assert main(["compile", "lock"]) == 0
        out = capsys.readouterr().out
        assert "interface     : lock" in out
        assert "mechanisms" in out

    def test_compile_unknown(self, capsys):
        assert main(["compile", "nope"]) == 1

    def test_compile_from_file(self, tmp_path, capsys):
        idl = tmp_path / "x.idl"
        idl.write_text(
            "service = x;\n"
            "service_global_info = { desc_has_data = true };\n"
            "sm_creation(mk);\n"
            "desc_data_retval(long, xid)\n"
            "mk(desc_data(componentid_t c));\n"
        )
        assert main(["compile", str(idl)]) == 0
        assert "interface     : x" in capsys.readouterr().out

    def test_compile_show_source(self, capsys):
        assert main(["compile", "lock", "--show-source"]) == 0
        assert "GeneratedClientStub" in capsys.readouterr().out


class TestCampaignCommand:
    def test_tiny_campaign(self, capsys):
        assert main(["table2", "--faults", "4"]) == 0
        out = capsys.readouterr().out
        assert "sched" in out and "SuccRate" in out


class TestFig7Command:
    def test_small_run(self, capsys):
        assert main(["fig7", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "apache (model)" in out
        assert "superglue + faults" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
