"""Unit tests for the IDL front end: lexer, parser, validator."""

import pytest

from repro.core.idl import build_ir, parse_idl
from repro.core.idl.lexer import TokenStream, tokenize
from repro.core.model import ParentKind
from repro.errors import IDLSyntaxError, IDLValidationError
from repro.idl_specs import SERVICES, load_idl


# ---------------------------------------------------------------------------
class TestLexer:
    def test_identifiers_and_punct(self):
        tokens = tokenize("foo(bar, baz);")
        kinds = [(t.kind, t.value) for t in tokens]
        assert ("ident", "foo") in kinds
        assert ("punct", "(") in kinds
        assert ("punct", ";") in kinds
        assert kinds[-1][0] == "eof"

    def test_numbers(self):
        tokens = tokenize("x = 42")
        assert any(t.kind == "number" and t.value == "42" for t in tokens)

    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment\nb")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(IDLSyntaxError):
            tokenize("a /* oops")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        lines = [t.line for t in tokens if t.kind == "ident"]
        assert lines == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(IDLSyntaxError):
            tokenize("a @ b")

    def test_stream_expect_and_accept(self):
        stream = TokenStream(tokenize("a(b)"))
        assert stream.expect("ident").value == "a"
        assert stream.accept("punct", "(")
        assert not stream.accept("punct", "(")
        assert stream.expect("ident", "b").value == "b"

    def test_stream_expect_failure(self):
        stream = TokenStream(tokenize("a"))
        with pytest.raises(IDLSyntaxError):
            stream.expect("punct", ";")


# ---------------------------------------------------------------------------
MINI_IDL = """
service = demo;
service_global_info = {
        desc_has_parent = solo,
        desc_block      = true,
        desc_has_data   = true
};
sm_transition(d_open, d_use);
sm_transition(d_use,  d_use);
sm_transition(d_open, d_close);
sm_transition(d_use,  d_close);
sm_creation(d_open);
sm_terminal(d_close);
sm_block(d_use);
sm_wakeup(d_kick);
sm_readonly(d_kick);

desc_data_retval(long, did)
d_open(desc_data(componentid_t compid));
int d_use(componentid_t compid, desc(long did));
int d_kick(componentid_t compid, desc(long did));
int d_close(componentid_t compid, desc(long did));
"""


class TestParser:
    def test_parse_mini(self):
        spec = parse_idl(MINI_IDL)
        assert spec.name == "demo"
        assert spec.info.get_bool("desc_block")
        assert len(spec.functions) == 4

    def test_name_override(self):
        spec = parse_idl(
            "service_global_info = {};\nsm_creation(f);"
            "\nlong f(componentid_t c);",
            name="x",
        )
        assert spec.name == "x"

    def test_missing_name_rejected(self):
        with pytest.raises(IDLSyntaxError):
            parse_idl("sm_creation(f);\nlong f(componentid_t c);")

    def test_ret_track_binding(self):
        spec = parse_idl(MINI_IDL)
        fn = spec.function("d_open")
        assert fn.ret_track == ("long", "did", "set")
        assert spec.function("d_use").ret_track is None

    def test_ret_track_add_mode(self):
        source = MINI_IDL.replace(
            "int d_use(componentid_t compid, desc(long did));",
            "desc_data_retval(long, off, add)\n"
            "int d_use(componentid_t compid, desc(long did));",
        )
        spec = parse_idl(source)
        assert spec.function("d_use").ret_track == ("long", "off", "add")

    def test_ret_track_bad_mode(self):
        with pytest.raises(IDLSyntaxError):
            parse_idl("service = s;\ndesc_data_retval(long, x, weird)\nf();")

    def test_dangling_ret_track(self):
        with pytest.raises(IDLSyntaxError):
            parse_idl("service = s;\ndesc_data_retval(long, x)")

    def test_param_annotations(self):
        spec = parse_idl(MINI_IDL)
        open_fn = spec.function("d_open")
        assert open_fn.params[0].tracked
        assert open_fn.params[0].is_principal
        use_fn = spec.function("d_use")
        assert use_fn.desc_param_index() == 1
        assert not use_fn.params[0].is_desc

    def test_nested_annotation(self):
        source = """
service = s;
sm_creation(mk);
desc_data_retval(long, id)
mk(desc_data(componentid_t c), desc_data(parent_desc(long pid)));
"""
        spec = parse_idl(source)
        param = spec.function("mk").params[1]
        assert param.is_parent and param.tracked

    def test_sm_declarations_collected(self):
        spec = parse_idl(MINI_IDL)
        kinds = {d.kind for d in spec.sm_decls}
        assert kinds == {"transition", "creation", "terminal", "block",
                         "wakeup", "readonly"}

    def test_transitions_two_args(self):
        decls = [d for d in parse_idl(MINI_IDL).sm_decls if d.kind == "transition"]
        assert all(len(d.args) == 2 for d in decls)

    def test_loc_counts_code_lines_only(self):
        spec = parse_idl(
            "// comment\n\nservice = s;\nsm_creation(f);"
            "\nlong f(componentid_t c);\n"
        )
        assert spec.loc == 3

    def test_multiword_types(self):
        spec = parse_idl(
            "service = s;\nsm_creation(f);\n"
            "unsigned long f(componentid_t c, unsigned long n);"
        )
        fn = spec.function("f")
        assert fn.ret_ctype == "unsigned long"
        assert fn.params[1].ctype == "unsigned long"

    def test_paper_fig3_event_idl_parses(self):
        spec = parse_idl(load_idl("event"), name="event")
        assert spec.name == "event"
        assert spec.info.get_bool("desc_is_global")
        names = [f.name for f in spec.functions]
        assert names == ["evt_split", "evt_wait", "evt_trigger", "evt_free"]


# ---------------------------------------------------------------------------
class TestValidator:
    def test_all_service_specs_validate(self):
        for service in SERVICES:
            ir = build_ir(parse_idl(load_idl(service), name=service))
            assert ir.name == service

    def test_mini_ir_contents(self):
        ir = build_ir(parse_idl(MINI_IDL))
        assert ir.model.blocking
        assert ir.model.parent is ParentKind.SOLO
        assert ir.functions["d_open"].is_creation
        assert ir.functions["d_close"].is_terminal
        assert ir.functions["d_use"].is_block
        assert ir.functions["d_kick"].is_wakeup and ir.functions["d_kick"].is_readonly

    def test_block_mismatch_rejected(self):
        source = MINI_IDL.replace("desc_block      = true", "desc_block      = false")
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_block_without_wakeup_rejected(self):
        source = MINI_IDL.replace("sm_wakeup(d_kick);\n", "")
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_parent_without_parent_param_rejected(self):
        source = MINI_IDL.replace(
            "desc_has_parent = solo", "desc_has_parent = parent"
        )
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_parent_param_without_parent_model_rejected(self):
        source = MINI_IDL.replace(
            "d_open(desc_data(componentid_t compid));",
            "d_open(desc_data(componentid_t compid), "
            "desc_data(parent_desc(long pid)));",
        )
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_non_creation_needs_desc(self):
        source = MINI_IDL.replace(
            "int d_kick(componentid_t compid, desc(long did));",
            "int d_kick(componentid_t compid, long did);",
        )
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_tracking_requires_desc_has_data(self):
        source = MINI_IDL.replace("desc_has_data   = true", "desc_has_data   = false")
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_global_requires_ret_track(self):
        source = MINI_IDL.replace(
            "        desc_block      = true,",
            "        desc_block      = true,\n        desc_is_global  = true,",
        ).replace("desc_data_retval(long, did)\n", "")
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))

    def test_ir_meta_names(self):
        ir = build_ir(parse_idl(MINI_IDL))
        assert "did" in ir.meta_names()

    def test_bad_transition_arity(self):
        source = MINI_IDL.replace(
            "sm_transition(d_open, d_use);", "sm_transition(d_open);"
        )
        with pytest.raises(IDLValidationError):
            build_ir(parse_idl(source))
