"""Structural checks on the compiler's emitted source code."""

import pytest

from repro.idl_specs import SERVICES
from repro.system import build_system, compile_all_interfaces


@pytest.fixture(scope="module")
def compiled():
    return compile_all_interfaces()


class TestClientSource:
    @pytest.mark.parametrize("service", SERVICES)
    def test_redo_loop_in_every_method(self, compiled, service):
        source = compiled[service].client_source
        # One Fig. 4 redo loop per interface function.
        assert source.count("while True:  # redo: (Fig. 4)") == len(
            compiled[service].ir.functions
        )

    @pytest.mark.parametrize("service", SERVICES)
    def test_fault_update_in_every_method(self, compiled, service):
        source = compiled[service].client_source
        assert source.count("self.fault_update(kernel, thread)") == len(
            compiled[service].ir.functions
        )

    def test_unblock_methods_only_for_block_fns(self, compiled):
        lock_src = compiled["lock"].client_source
        assert "def unblock_lock_take(" in lock_src
        assert "def unblock_lock_release(" not in lock_src
        mm_src = compiled["mm"].client_source
        assert "def unblock_" not in mm_src  # MM never blocks

    def test_sticky_owner_tracking_emitted(self, compiled):
        lock_src = compiled["lock"].client_source
        assert "__entry.meta['_owner'] = thread.tid" in lock_src
        # Non-sticky interfaces do not impersonate on updates.
        assert "__entry.meta['_owner'] = thread.tid" not in (
            compiled["mm"].client_source
        )

    def test_offset_accumulation_emitted_for_ramfs(self, compiled):
        source = compiled["ramfs"].client_source
        assert "__entry.meta.get('offset', 0)" in source
        assert "len(__ret)" in source  # bytes returns add their length

    def test_d0_subtree_only_for_mm(self, compiled):
        assert "self.table.subtree(" in compiled["mm"].client_source
        for service in ("lock", "sched", "timer", "event", "ramfs"):
            assert "self.table.subtree(" not in (
                compiled[service].client_source
            )

    def test_parent_recovery_only_for_parented(self, compiled):
        for service in ("ramfs", "event", "mm"):
            assert "__parent" in compiled[service].client_source
        for service in ("lock", "sched", "timer"):
            assert "__parent" not in compiled[service].client_source

    def test_desc_translation_emitted(self, compiled):
        source = compiled["event"].client_source
        assert "__entry.sid if __entry is not None else evtid" in source


class TestServerSource:
    def test_g0_marker_only_for_global(self, compiled):
        assert "[S-g0]" in compiled["event"].server_source
        assert "[S-plain]" in compiled["lock"].server_source
        assert "[S-g0]" not in compiled["lock"].server_source

    def test_g1_marker_for_data_services(self, compiled):
        assert "[S-g1]" in compiled["ramfs"].server_source
        assert "[S-g1]" not in compiled["sched"].server_source


class TestG0AliasFastPath:
    def test_already_recovered_id_resolved_without_upcall(self):
        """If the creator already recovered the descriptor, a stale id from
        another component resolves through the storage alias chain alone."""
        system = build_system(ft_mode="superglue")
        kernel = system.kernel
        creator = kernel.create_thread(
            "creator", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        other = kernel.create_thread(
            "other", prio=1, home="app1", body_factory=lambda s, t: iter(())
        )
        app0 = system.stub("app0", "event")
        app1 = system.stub("app1", "event")
        first = app0.invoke(kernel, creator, "evt_split", ("app0", 0, 1))
        app0.invoke(kernel, creator, "evt_split", ("app0", 0, 2))
        kernel.component("event").micro_reboot()
        # Creator touches the SECOND event first so `first`'s replayed id
        # differs, then recovers `first` itself (recording the alias).
        app0.invoke(kernel, creator, "evt_trigger", ("app0", first))
        replays_before = kernel.server_stub_for("event").stats["replays"]
        # The other component's stale id now resolves via the alias chain
        # (no creator upcall needed).
        assert app1.invoke(kernel, other, "evt_wait", ("app1", first)) == 0
        assert (
            kernel.server_stub_for("event").stats["replays"] == replays_before
        )
