"""Unit tests for the SuperGlue compiler back end."""

import pytest

from repro.core.compiler import (
    PREDICATES,
    SuperGlueCompiler,
    TEMPLATES,
    evaluate_predicates,
)
from repro.core.compiler.templates import CLIENT_TEMPLATES, SERVER_TEMPLATES
from repro.core.runtime.stubs import ClientStubRuntime, ServerStubRuntime
from repro.errors import IDLSyntaxError
from repro.idl_specs import SERVICES, load_idl


@pytest.fixture(scope="module")
def all_compiled():
    compiler = SuperGlueCompiler()
    return {
        name: compiler.compile_source(load_idl(name), name=name)
        for name in SERVICES
    }


class TestPredicates:
    def test_predicate_registry_nonempty(self):
        assert len(PREDICATES) >= 25

    def test_always_true(self, all_compiled):
        ir = all_compiled["lock"].ir
        assert PREDICATES["always"](ir, None)

    def test_model_predicates(self, all_compiled):
        lock = all_compiled["lock"].ir
        event = all_compiled["event"].ir
        assert PREDICATES["model_blocking"](lock, None)
        assert PREDICATES["model_local"](lock, None)
        assert PREDICATES["model_global"](event, None)
        assert not PREDICATES["model_global"](lock, None)

    def test_fn_predicates_need_fn(self, all_compiled):
        ir = all_compiled["lock"].ir
        assert not PREDICATES["fn_creation"](ir, None)
        alloc = ir.functions["lock_alloc"]
        assert PREDICATES["fn_creation"](ir, alloc)

    def test_mechanism_predicates(self, all_compiled):
        mm = all_compiled["mm"].ir
        release = mm.functions["mman_release_page"]
        alias = mm.functions["mman_alias_page"]
        assert PREDICATES["mech_d0_terminal"](mm, release)
        assert PREDICATES["mech_d1_create"](mm, alias)
        get = mm.functions["mman_get_page"]
        assert not PREDICATES["mech_d1_create"](mm, get)

    def test_evaluate_predicates_table(self, all_compiled):
        table = evaluate_predicates(all_compiled["event"].ir)
        assert table["model_global"]
        assert table["mech_g0_dispatch"]
        assert table["fn_block"]


class TestTemplates:
    def test_template_network_size(self):
        # The paper's compiler has 72 predicate-template pairs; ours is a
        # reduced but genuine network.
        assert len(TEMPLATES) >= 20
        assert len(CLIENT_TEMPLATES) > len(SERVER_TEMPLATES)

    def test_templates_have_known_predicates(self):
        for template in TEMPLATES:
            assert template.predicate in PREDICATES, template.name

    def test_templates_used_differ_by_model(self, all_compiled):
        lock_used = set(all_compiled["lock"].templates_used["server"])
        event_used = set(all_compiled["event"].templates_used["server"])
        assert "server-plain" in lock_used
        assert "server-g0" in event_used
        assert "server-plain" not in event_used

    def test_d0_template_only_for_close_children(self, all_compiled):
        mm_used = all_compiled["mm"].templates_used["client"]
        lock_used = all_compiled["lock"].templates_used["client"]
        assert any(u.startswith("d0-children") for u in mm_used)
        assert not any(u.startswith("d0-children") for u in lock_used)


class TestCodegen:
    def test_all_services_compile(self, all_compiled):
        assert set(all_compiled) == set(SERVICES)

    def test_generated_classes_subclass_runtime(self, all_compiled):
        for compiled in all_compiled.values():
            assert issubclass(compiled.client_class, ClientStubRuntime)
            assert issubclass(compiled.server_class, ServerStubRuntime)

    def test_generated_client_has_stub_methods(self, all_compiled):
        lock = all_compiled["lock"]
        for fn in ("lock_alloc", "lock_take", "lock_release", "lock_free"):
            assert hasattr(lock.client_class, f"stub_{fn}")

    def test_loc_expansion(self, all_compiled):
        # Declarative spec expands into substantially more generated code.
        for compiled in all_compiled.values():
            assert compiled.generated_loc > 2 * compiled.idl_loc

    def test_idl_loc_in_paper_ballpark(self, all_compiled):
        for compiled in all_compiled.values():
            assert 15 <= compiled.idl_loc <= 50  # paper average: 37

    def test_make_client_stub(self, all_compiled):
        stub = all_compiled["lock"].make_client_stub("app0")
        assert stub.client == "app0"
        assert stub.server == "lock"
        assert stub.SERVICE == "lock"

    def test_compile_source_bad_idl(self):
        with pytest.raises(IDLSyntaxError):
            SuperGlueCompiler().compile_source("not idl at all !!!", name="x")

    def test_compiler_caches_compiled(self):
        compiler = SuperGlueCompiler()
        compiler.compile_source(load_idl("lock"), name="lock")
        assert "lock" in compiler.compiled

    def test_generated_source_mentions_mechanisms(self, all_compiled):
        event = all_compiled["event"]
        module_docstringish = event.server_source
        assert "G0" in module_docstringish or "g0" in module_docstringish
