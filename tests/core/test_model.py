"""Unit tests for the descriptor-resource model (Eq. 1)."""

import pytest

from repro.core.model import DescriptorResourceModel, ParentKind
from repro.errors import IDLValidationError


class TestParentKind:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("solo", ParentKind.SOLO),
            ("Parent", ParentKind.PARENT),
            ("XCPARENT", ParentKind.XCPARENT),
            ("  parent ", ParentKind.PARENT),
        ],
    )
    def test_from_str(self, text, expected):
        assert ParentKind.from_str(text) is expected

    def test_from_str_invalid(self):
        with pytest.raises(IDLValidationError):
            ParentKind.from_str("sibling")


class TestValidation:
    def test_default_model_valid(self):
        DescriptorResourceModel().validate()

    def test_close_children_requires_parent(self):
        model = DescriptorResourceModel(close_children=True)
        with pytest.raises(IDLValidationError):
            model.validate()

    def test_close_children_with_parent_ok(self):
        DescriptorResourceModel(
            parent=ParentKind.XCPARENT, close_children=True
        ).validate()

    def test_y_and_c_exclusive(self):
        model = DescriptorResourceModel(
            parent=ParentKind.PARENT,
            close_children=True,
            close_removes_dependency=True,
        )
        with pytest.raises(IDLValidationError):
            model.validate()

    def test_close_remove_requires_parent(self):
        model = DescriptorResourceModel(close_removes_dependency=True)
        with pytest.raises(IDLValidationError):
            model.validate()


class TestMechanismMapping:
    def test_r0_t1_always(self):
        mechanisms = DescriptorResourceModel().mechanisms()
        assert "R0" in mechanisms and "T1" in mechanisms

    def test_blocking_implies_t0(self):
        assert "T0" in DescriptorResourceModel(blocking=True).mechanisms()
        assert "T0" not in DescriptorResourceModel().mechanisms()

    def test_close_children_implies_d0(self):
        model = DescriptorResourceModel(
            parent=ParentKind.PARENT, close_children=True
        )
        assert "D0" in model.mechanisms()

    def test_parent_implies_d1(self):
        model = DescriptorResourceModel(parent=ParentKind.PARENT)
        assert "D1" in model.mechanisms()
        assert model.needs_parent_ordering
        assert not model.parent_spans_components

    def test_xcparent_spans_components(self):
        model = DescriptorResourceModel(parent=ParentKind.XCPARENT)
        assert model.parent_spans_components

    def test_global_implies_g0_u0(self):
        model = DescriptorResourceModel(desc_global=True)
        assert "G0" in model.mechanisms()
        assert "U0" in model.mechanisms()

    def test_resource_data_implies_g1(self):
        model = DescriptorResourceModel(resource_has_data=True)
        assert "G1" in model.mechanisms()

    def test_event_model_engages_most_mechanisms(self):
        # The paper: "the event server relies on all mentioned recovery
        # mechanisms, except (D0)".
        model = DescriptorResourceModel(
            blocking=True,
            resource_has_data=True,
            desc_global=True,
            parent=ParentKind.PARENT,
            close_removes_dependency=True,
            desc_has_data=True,
        )
        mechanisms = set(model.mechanisms())
        assert mechanisms == {"R0", "T1", "T0", "D1", "G0", "G1", "U0"}
        assert "D0" not in mechanisms
