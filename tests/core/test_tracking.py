"""Unit tests for client-side descriptor tracking structures."""

import pytest

from repro.core.runtime.tracking import DescriptorEntry, TrackingTable
from repro.core.state_machine import INIT_STATE
from repro.errors import RecoveryError


def entry(cdesc, sid=None, epoch=0):
    return DescriptorEntry(cdesc=cdesc, sid=sid or cdesc, create_fn="mk", epoch=epoch)


class TestEntry:
    def test_initial_state(self):
        e = entry(1)
        assert e.state == INIT_STATE
        assert e.meta == {}
        assert not e.closed


class TestTable:
    def test_add_lookup(self):
        table = TrackingTable()
        e = entry(1)
        table.add(e)
        assert table.lookup(1) is e
        assert table.lookup(2) is None
        assert len(table) == 1

    def test_require(self):
        table = TrackingTable()
        with pytest.raises(RecoveryError):
            table.require(1)
        e = entry(1)
        table.add(e)
        assert table.require(1) is e

    def test_remove_unlinks_parent(self):
        table = TrackingTable()
        parent = entry(1)
        child = entry(2)
        table.add(parent)
        table.add(child)
        table.link_parent(2, 1)
        assert 2 in parent.children
        table.remove(2)
        assert 2 not in parent.children

    def test_subtree_collects_descendants(self):
        table = TrackingTable()
        for cdesc in (1, 2, 3, 4):
            table.add(entry(cdesc))
        table.link_parent(2, 1)
        table.link_parent(3, 2)
        # 4 unrelated
        subtree = {e.cdesc for e in table.subtree(1)}
        assert subtree == {1, 2, 3}

    def test_subtree_handles_missing_root(self):
        assert TrackingTable().subtree(9) == []

    def test_entries_by_sid(self):
        table = TrackingTable()
        e = entry(1)
        e.sid = 77
        table.add(e)
        assert table.entries_by_sid(77) == [e]
        assert table.entries_by_sid(1) == []

    def test_iteration_and_all_cdescs(self):
        table = TrackingTable()
        table.add(entry(1))
        table.add(entry(2))
        assert sorted(e.cdesc for e in table) == [1, 2]
        assert sorted(table.all_cdescs()) == [1, 2]

    def test_link_parent_to_untracked_parent(self):
        table = TrackingTable()
        table.add(entry(2))
        table.link_parent(2, 99)  # parent not tracked: link recorded anyway
        assert table.lookup(2).parent_cdesc == 99
