"""Tests for the IDL emitter round-trip and the schedulability bounds."""

import pytest

from repro.analysis.schedulability import (
    all_service_bounds,
    descriptor_walk_bound,
    task_recovery_bound,
    worst_case_state,
)
from repro.core.idl import parse_idl
from repro.core.idl.emitter import emit_idl, specs_equivalent
from repro.core.state_machine import INIT_STATE
from repro.idl_specs import SERVICES, load_idl
from repro.system import compile_all_interfaces


class TestEmitterRoundTrip:
    @pytest.mark.parametrize("service", SERVICES)
    def test_round_trip_all_services(self, service):
        original = parse_idl(load_idl(service), name=service)
        emitted = emit_idl(original)
        reparsed = parse_idl(emitted)
        assert specs_equivalent(original, reparsed), emitted

    def test_round_trip_is_fixed_point(self):
        spec = parse_idl(load_idl("event"), name="event")
        once = emit_idl(spec)
        twice = emit_idl(parse_idl(once))
        assert once == twice

    def test_emitted_compiles(self):
        from repro.core.compiler import SuperGlueCompiler

        spec = parse_idl(load_idl("lock"), name="lock")
        compiled = SuperGlueCompiler().compile_source(emit_idl(spec))
        assert compiled.ir.name == "lock"

    def test_specs_equivalent_detects_differences(self):
        a = parse_idl(load_idl("lock"), name="lock")
        b = parse_idl(load_idl("timer"), name="timer")
        assert not specs_equivalent(a, b)
        assert specs_equivalent(a, a)


class TestSchedulabilityBounds:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_all_interfaces()

    def test_worst_case_state_lock(self, compiled):
        # lock_release has the longest walk: alloc -> take -> release.
        assert worst_case_state(compiled["lock"].ir) == "lock_release"

    def test_worst_case_state_fs_is_init(self, compiled):
        # All RamFS mutators are read-only in SM terms.
        assert worst_case_state(compiled["ramfs"].ir) == INIT_STATE

    def test_bounds_positive_and_finite(self, compiled):
        for name, bound in all_service_bounds().items():
            assert bound.cycles > 0
            assert bound.us < 50  # microseconds, not milliseconds

    def test_task_bound_scales_with_descriptors(self, compiled):
        ir = compiled["lock"].ir
        one = task_recovery_bound(ir, 1).total_cycles
        five = task_recovery_bound(ir, 5).total_cycles
        assert five > one
        assert five - one == 4 * descriptor_walk_bound(
            ir, worst_case_state(ir)
        ).cycles

    @pytest.mark.parametrize("service", SERVICES)
    def test_measured_recovery_within_static_bound(self, service, compiled):
        """The predictability property: measured per-descriptor recovery
        never exceeds the compile-time bound."""
        from repro.analysis import measure_recovery_overhead

        bound = descriptor_walk_bound(
            compiled[service].ir, worst_case_state(compiled[service].ir)
        )
        measured = measure_recovery_overhead(service, "superglue", runs=15)
        if measured["samples"] == 0:
            pytest.skip("no recovery samples for this seed")
        assert measured["mean_us"] <= bound.us
        # And the bound is not vacuous (within ~50x of reality).
        assert bound.us < measured["mean_us"] * 50
