"""Unit tests for descriptor state machines (Eq. 2)."""

import pytest

from repro.core.state_machine import (
    FAULT_STATE,
    INIT_STATE,
    DescriptorStateMachine,
    RestoreSpec,
)
from repro.errors import IDLValidationError, RecoveryError


def lock_sm():
    return DescriptorStateMachine(
        functions=["alloc", "take", "release", "free"],
        transitions=[
            ("alloc", "take"),
            ("take", "release"),
            ("release", "take"),
            ("take", "take"),
            ("alloc", "free"),
            ("release", "free"),
        ],
        creation_fns=["alloc"],
        terminal_fns=["free"],
        block_fns=["take"],
        wakeup_fns=["release"],
        sticky_fns=["take"],
    )


def fs_sm():
    return DescriptorStateMachine(
        functions=["tsplit", "tread", "twrite", "tseek", "trelease"],
        transitions=[
            ("tsplit", "tread"),
            ("tsplit", "twrite"),
            ("tsplit", "tseek"),
            ("tsplit", "trelease"),
        ],
        creation_fns=["tsplit"],
        terminal_fns=["trelease"],
        readonly_fns=["tread", "twrite", "tseek"],
        restores=[RestoreSpec("tseek")],
    )


class TestStates:
    def test_states_include_init_and_fault(self):
        states = lock_sm().states()
        assert INIT_STATE in states and FAULT_STATE in states

    def test_readonly_fns_not_states(self):
        assert "tread" not in fs_sm().states()

    def test_sticky_block_fn_is_state(self):
        assert "take" in lock_sm().states()

    def test_changes_state(self):
        sm = lock_sm()
        assert sm.changes_state("take")  # sticky
        assert sm.changes_state("release")
        assert not fs_sm().changes_state("tread")

    def test_nonsticky_block_not_state(self):
        sm = DescriptorStateMachine(
            functions=["create", "wait", "notify", "free"],
            transitions=[("create", "wait"), ("wait", "notify"),
                         ("notify", "wait"), ("create", "free")],
            creation_fns=["create"],
            terminal_fns=["free"],
            block_fns=["wait"],
            wakeup_fns=["notify"],
        )
        assert not sm.changes_state("wait")


class TestSigma:
    def test_creation_from_init(self):
        sm = lock_sm()
        assert sm.sigma(INIT_STATE, "alloc") == INIT_STATE

    def test_valid_transition(self):
        sm = lock_sm()
        assert sm.sigma(INIT_STATE, "take") == "take"
        assert sm.sigma("take", "release") == "release"

    def test_invalid_transition(self):
        sm = lock_sm()
        assert sm.sigma("release", "release") is None

    def test_valid_next(self):
        sm = lock_sm()
        assert sm.valid_next("take") == {"release", "take"}


class TestWalks:
    def test_walk_to_init_is_creation_only(self):
        assert lock_sm().recovery_walk(INIT_STATE) == ["alloc"]

    def test_walk_to_taken(self):
        assert lock_sm().recovery_walk("take") == ["alloc", "take"]

    def test_walk_to_released(self):
        assert lock_sm().recovery_walk("release") == ["alloc", "take", "release"]

    def test_fs_walk_always_creation(self):
        assert fs_sm().recovery_walk(INIT_STATE) == ["tsplit"]

    def test_walk_unreachable_raises(self):
        sm = lock_sm()
        with pytest.raises(RecoveryError):
            sm.recovery_walk("nonexistent")

    def test_walk_cached(self):
        sm = lock_sm()
        assert sm.walk_to("take") == ["take"]
        assert sm.walk_to("take") == ["take"]  # cached path copy

    def test_walk_with_explicit_creation_fn(self):
        sm = DescriptorStateMachine(
            functions=["get", "alias", "release"],
            transitions=[("get", "alias"), ("alias", "alias"),
                         ("get", "release"), ("alias", "release")],
            creation_fns=["get", "alias"],
            terminal_fns=["release"],
        )
        assert sm.recovery_walk(INIT_STATE, creation_fn="alias") == ["alias"]

    def test_walk_bad_creation_fn(self):
        with pytest.raises(RecoveryError):
            lock_sm().recovery_walk(INIT_STATE, creation_fn="take")


class TestValidation:
    def test_valid_machines(self):
        lock_sm().validate()
        fs_sm().validate()

    def test_unknown_function_in_transition(self):
        sm = DescriptorStateMachine(
            functions=["a"],
            transitions=[("a", "zz")],
            creation_fns=["a"],
            terminal_fns=[],
        )
        with pytest.raises(IDLValidationError):
            sm.validate()

    def test_no_creation_function(self):
        sm = DescriptorStateMachine(
            functions=["a"], transitions=[], creation_fns=[], terminal_fns=[]
        )
        with pytest.raises(IDLValidationError):
            sm.validate()

    def test_unknown_group_member(self):
        sm = DescriptorStateMachine(
            functions=["a"],
            transitions=[],
            creation_fns=["a"],
            terminal_fns=["zz"],
        )
        with pytest.raises(IDLValidationError):
            sm.validate()

    def test_unreachable_state_rejected(self):
        sm = DescriptorStateMachine(
            functions=["a", "b", "c"],
            transitions=[("a", "b")],  # c unreachable
            creation_fns=["a"],
            terminal_fns=[],
        )
        with pytest.raises(IDLValidationError):
            sm.validate()

    def test_unknown_restore_fn(self):
        sm = DescriptorStateMachine(
            functions=["a"],
            transitions=[],
            creation_fns=["a"],
            terminal_fns=[],
            restores=[RestoreSpec("zz")],
        )
        with pytest.raises(IDLValidationError):
            sm.validate()
