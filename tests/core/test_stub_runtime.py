"""Unit tests for the stub runtime: TidProxy, tracking hooks, recovery."""

import pytest

from repro.core.runtime.stubs import OWNER_KEY, TidProxy
from repro.core.state_machine import INIT_STATE
from repro.system import build_system


@pytest.fixture
def system():
    return build_system(ft_mode="superglue")


@pytest.fixture
def thread(system):
    return system.kernel.create_thread(
        "tester", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


def drive(system, body_factory, **kwargs):
    system.kernel.create_thread(
        "driver", prio=1, home="app0", body_factory=body_factory
    )
    system.run(max_steps=kwargs.get("max_steps", 10_000))


class TestTidProxy:
    def test_tid_overridden(self, thread):
        proxy = TidProxy(thread, 42)
        assert proxy.tid == 42
        assert thread.tid != 42

    def test_other_attributes_forwarded(self, thread):
        proxy = TidProxy(thread, 42)
        assert proxy.name == thread.name
        assert proxy.regs is thread.regs

    def test_attribute_writes_forwarded(self, thread):
        proxy = TidProxy(thread, 42)
        proxy.cycles += 10
        assert thread.cycles == 10

    def test_executing_in_forwarded(self, thread):
        proxy = TidProxy(thread, 42)
        proxy.executing_in = "lock"
        assert thread.executing_in == "lock"


class TestTrackingHooks:
    def test_create_tracks_descriptor(self, system, thread):
        stub = system.stub("app0", "lock")
        lid = stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
        entry = stub.table.lookup(lid)
        assert entry is not None
        assert entry.sid == lid
        assert entry.state == INIT_STATE
        assert entry.meta[OWNER_KEY] == thread.tid
        assert entry.meta["lockid"] == lid

    def test_sticky_updates_owner_and_state(self, system, thread):
        stub = system.stub("app0", "lock")
        lid = stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(system.kernel, thread, "lock_take", ("app0", lid))
        entry = stub.table.lookup(lid)
        assert entry.state == "lock_take"
        assert entry.meta[OWNER_KEY] == thread.tid

    def test_terminal_removes_tracking(self, system, thread):
        stub = system.stub("app0", "lock")
        lid = stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(system.kernel, thread, "lock_free", ("app0", lid))
        assert stub.table.lookup(lid) is None

    def test_readonly_does_not_change_state(self, system, thread):
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(system.kernel, thread, "tsplit", ("app0", 1, "x"))
        stub.invoke(system.kernel, thread, "twrite", ("app0", fd, b"ab"))
        assert stub.table.lookup(fd).state == INIT_STATE

    def test_retval_add_accumulates_offset(self, system, thread):
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(system.kernel, thread, "tsplit", ("app0", 1, "x"))
        stub.invoke(system.kernel, thread, "twrite", ("app0", fd, b"abc"))
        stub.invoke(system.kernel, thread, "twrite", ("app0", fd, b"de"))
        assert stub.table.lookup(fd).meta["offset"] == 5

    def test_tseek_sets_offset_meta(self, system, thread):
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(system.kernel, thread, "tsplit", ("app0", 1, "x"))
        stub.invoke(system.kernel, thread, "twrite", ("app0", fd, b"abc"))
        stub.invoke(system.kernel, thread, "tseek", ("app0", fd, 1))
        assert stub.table.lookup(fd).meta["offset"] == 1

    def test_parent_link_tracked(self, system, thread):
        stub = system.stub("app0", "mm")
        va = stub.invoke(system.kernel, thread, "mman_get_page", ("app0", 0x4000))
        dst = stub.invoke(
            system.kernel, thread,
            "mman_alias_page", ("app0", 0x4000, "app1", 0x8000),
        )
        entry = stub.table.lookup(dst)
        assert entry.parent_cdesc == va
        assert entry.create_fn == "mman_alias_page"

    def test_d0_removes_subtree_tracking(self, system, thread):
        stub = system.stub("app0", "mm")
        stub.invoke(system.kernel, thread, "mman_get_page", ("app0", 0x4000))
        stub.invoke(
            system.kernel, thread,
            "mman_alias_page", ("app0", 0x4000, "app1", 0x8000),
        )
        stub.invoke(system.kernel, thread, "mman_release_page", ("app0", 0x4000))
        assert stub.table.lookup(0x4000) is None
        assert stub.table.lookup(0x8000) is None

    def test_tracked_ops_counted(self, system, thread):
        stub = system.stub("app0", "lock")
        stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
        assert stub.stats["tracked_ops"] >= 1


class TestRecoveryEngine:
    def test_recover_after_reboot_translates_sid(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        # Create a second lock so the replayed alloc gets a different id.
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        kernel.component("lock").micro_reboot()
        assert stub.invoke(kernel, thread, "lock_take", ("app0", lid)) == 0
        entry = stub.table.lookup(lid)
        assert entry.cdesc == lid  # client-visible id stable
        assert entry.recovered_epoch == 1

    def test_recovery_restores_taken_state(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        kernel.component("lock").micro_reboot()
        # Releasing after the reboot requires the walk to have re-taken
        # the lock on behalf of the tracked owner.
        assert stub.invoke(kernel, thread, "lock_release", ("app0", lid)) == 0

    def test_recovery_restores_file_offset(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(kernel, thread, "tsplit", ("app0", 1, "f"))
        stub.invoke(kernel, thread, "twrite", ("app0", fd, b"abcdef"))
        stub.invoke(kernel, thread, "tseek", ("app0", fd, 2))
        kernel.component("ramfs").micro_reboot()
        # Restore step replays tseek with the tracked offset.
        data = stub.invoke(kernel, thread, "tread", ("app0", fd, 2))
        assert data == b"cd"

    def test_d1_parent_recovered_first(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "mm")
        stub.invoke(kernel, thread, "mman_get_page", ("app0", 0x4000))
        # Same-component alias chain (an alias into another component is
        # revoked through its root, as in the MM workload).
        stub.invoke(
            kernel, thread, "mman_alias_page", ("app0", 0x4000, "app0", 0x8000)
        )
        kernel.component("mm").micro_reboot()
        assert (
            stub.invoke(kernel, thread, "mman_release_page", ("app0", 0x8000))
            == 0
        )
        mm = kernel.component("mm")
        # Parent recovered (D1) and still present; child released.
        assert mm.has_mapping("app0", 0x4000)
        assert not mm.has_mapping("app0", 0x8000)

    def test_recover_all_eager(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        for __ in range(3):
            stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        kernel.component("lock").micro_reboot()
        assert stub.recover_all(kernel, thread) == 3

    def test_recovery_samples_recorded(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        kernel.component("lock").micro_reboot()
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        samples = system.recovery_manager.recovery_samples.get("lock")
        assert samples and all(c > 0 for c in samples)

    def test_untracked_fn_passthrough(self, system, thread):
        stub = system.stub("app0", "storage")
        # No stub registered for storage; but lock stub passes through
        # unknown functions too.
        lock_stub = system.stub("app0", "lock")
        result = lock_stub.invoke(
            system.kernel, thread, "lock_alloc", ("app0",)
        )
        assert isinstance(result, int)


class TestG0GlobalDescriptors:
    def test_cross_component_stale_id_recovered(self, system):
        kernel = system.kernel
        creator = kernel.create_thread(
            "creator", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        other = kernel.create_thread(
            "other", prio=1, home="app1", body_factory=lambda s, t: iter(())
        )
        app0_stub = system.stub("app0", "event")
        app1_stub = system.stub("app1", "event")
        evtid = app0_stub.invoke(kernel, creator, "evt_split", ("app0", 0, 1))
        # Another component triggers the same (global) descriptor.
        assert app1_stub.invoke(
            kernel, other, "evt_trigger", ("app1", evtid)
        ) == 0
        kernel.component("event").micro_reboot()
        # app1 holds a stale id and no tracking: the server stub resolves
        # it through storage and an upcall into app0's stub (G0 + U0).
        assert app1_stub.invoke(
            kernel, other, "evt_trigger", ("app1", evtid)
        ) == 0
        server_stub = kernel.server_stub_for("event")
        assert server_stub.stats["einval_recoveries"] >= 1

    def test_creator_recorded_in_storage(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "event")
        evtid = stub.invoke(kernel, thread, "evt_split", ("app0", 0, 1))
        storage = kernel.component("storage")
        assert storage.lookup_creator(thread, "event", evtid) == "app0"
