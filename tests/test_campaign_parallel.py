"""Tests for the parallel deterministic SWIFI campaign engine."""

import json

import pytest

from repro.__main__ import main
from repro.swifi.campaign import (
    CampaignRunner,
    RunSpec,
    execute_run,
    format_table2,
    injection_point,
    write_table2_json,
)
from repro.swifi.classify import Outcome
from repro.swifi.parallel import (
    CampaignJournal,
    chunk_seeds,
    default_workers,
    run_campaign,
)


class TestDeterminism:
    def test_injection_point_is_pure(self):
        assert injection_point(7, 100) == injection_point(7, 100)
        assert injection_point(7, 1) == 0  # degenerate horizon

    def test_empty_horizon_rejected(self):
        # Regression: horizon<1 was silently masked to 1, injecting at
        # trace execution 0 of a workload that never ran in the target.
        with pytest.raises(ValueError):
            injection_point(7, 0)
        with pytest.raises(ValueError):
            injection_point(7, -5)
        with pytest.raises(ValueError):
            RunSpec("lock", "superglue", 4, 0)
        with pytest.raises(ValueError):
            RunSpec("lock", "superglue", 4, -1)

    def test_run_outcome_is_pure_function_of_spec_and_seed(self):
        runner = CampaignRunner("lock", n_faults=1, seed=0)
        spec = runner.spec()
        seed = runner.run_seeds()[0]
        assert execute_run(spec, seed) is execute_run(spec, seed)

    def test_serial_and_parallel_rows_identical(self):
        serial = CampaignRunner("lock", n_faults=10, seed=1).run(workers=1)
        pooled = CampaignRunner("lock", n_faults=10, seed=1).run(workers=4)
        assert serial.row() == pooled.row()

    def test_run_seeds_schedule(self):
        runner = CampaignRunner("lock", n_faults=3, seed=2)
        assert runner.run_seeds() == [2_000_006, 2_000_007, 2_000_008]

    def test_progress_reports_every_run(self):
        seen = []
        runner = CampaignRunner("lock", n_faults=3, seed=5)
        runner.run(progress=lambda i, n, o: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestChunking:
    def test_chunks_cover_all_seeds_in_order(self):
        seeds = list(range(23))
        chunks = chunk_seeds(seeds, workers=4)
        assert [s for chunk in chunks for s in chunk] == seeds
        assert len(chunks) <= 4 * 4

    def test_empty_and_tiny(self):
        assert chunk_seeds([], 4) == []
        assert chunk_seeds([9], 4) == [[9]]

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestJournal:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        runner = CampaignRunner("timer", n_faults=8, seed=3)
        spec = runner.spec()
        seeds = runner.run_seeds()
        # Simulate an interruption: only half the campaign completes.
        run_campaign(spec, seeds[:4], workers=1, journal=journal)
        assert len(CampaignJournal(journal).load(spec)) == 4
        resumed = runner.run(workers=2, journal=journal)
        uninterrupted = CampaignRunner("timer", n_faults=8, seed=3).run()
        assert resumed.row() == uninterrupted.row()

    def test_resumed_runs_are_not_reexecuted(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        runner = CampaignRunner("lock", n_faults=4, seed=4)
        runner.run(journal=journal)
        lines = open(journal).read().splitlines()
        assert len(lines) == 4
        runner.run(journal=journal)  # full replay: nothing appended
        assert open(journal).read().splitlines() == lines

    def test_journal_ignores_truncated_and_foreign_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = RunSpec("lock", "superglue", 4, 100)
        good = {
            "fingerprint": spec.fingerprint(),
            "run_seed": 11,
            "outcome": "recovered",
        }
        other = dict(good, fingerprint="other/spec", run_seed=12)
        path.write_text(
            json.dumps(good) + "\n" + json.dumps(other) + "\n" + '{"trunc'
        )
        done = CampaignJournal(str(path)).load(spec)
        assert done == {11: Outcome.RECOVERED}

    def test_fingerprint_distinguishes_specs(self):
        a = RunSpec("lock", "superglue", 4, 100)
        b = RunSpec("lock", "c3", 4, 100)
        assert a.fingerprint() != b.fingerprint()


class TestArtifacts:
    def test_format_and_json_shape(self, tmp_path):
        results = [CampaignRunner("lock", n_faults=5, seed=1).run()]
        table = format_table2(results)
        assert "lock" in table and "SuccRate" in table
        path = tmp_path / "table2.json"
        write_table2_json(results, str(path))
        rows = json.loads(path.read_text())
        assert isinstance(rows, list) and len(rows) == 1
        assert rows[0]["component"] == "lock"
        assert rows[0]["injected"] == 5
        for key in (
            "recovered",
            "not_recovered_segfault",
            "not_recovered_propagated",
            "not_recovered_other",
            "undetected",
            "activation_ratio",
            "recovery_success_rate",
        ):
            assert key in rows[0]

    def test_json_matches_rows(self, tmp_path):
        results = [CampaignRunner("timer", n_faults=4, seed=2).run()]
        path = tmp_path / "t.json"
        write_table2_json(results, str(path))
        assert json.loads(path.read_text()) == [r.row() for r in results]


class TestCli:
    def test_table2_workers_and_json(self, tmp_path, capsys):
        artifact = str(tmp_path / "out.json")
        assert (
            main(
                [
                    "table2",
                    "--faults",
                    "3",
                    "--workers",
                    "2",
                    "--json",
                    artifact,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 worker(s)" in out
        rows = json.loads(open(artifact).read())
        assert {row["component"] for row in rows} == {
            "sched",
            "mm",
            "ramfs",
            "lock",
            "event",
            "timer",
        }

    def test_table2_resume_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        args = ["table2", "--faults", "2", "--workers", "1", "--resume", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # replayed entirely from the journal
        assert capsys.readouterr().out == first
        assert len(open(journal).read().splitlines()) == 2 * 6
