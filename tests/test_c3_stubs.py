"""Tests for the hand-written C^3 baseline stubs."""

import pytest

from repro.c3 import make_c3_stubs
from repro.c3.base import C3ClientStubBase
from repro.system import build_system


@pytest.fixture
def system():
    return build_system(ft_mode="c3")


@pytest.fixture
def thread(system):
    return system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )


class TestFactories:
    def test_make_c3_stubs_covers_all_services(self):
        irs, client_factory, server_factory = make_c3_stubs()
        from repro.idl_specs import SERVICES

        for service in SERVICES:
            stub = client_factory(service, "app0", irs[service])
            assert isinstance(stub, C3ClientStubBase)
            assert stub.SERVICE == service
        assert server_factory("event", None, irs["event"]) is not None
        assert server_factory("lock", None, irs["lock"]) is None


class TestLockStub:
    def test_tracks_and_translates(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        assert stub.descs[lid]["state"] == "available"
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        assert stub.descs[lid]["state"] == "taken"
        assert stub.descs[lid]["owner"] == thread.tid
        stub.invoke(kernel, thread, "lock_release", ("app0", lid))
        assert stub.descs[lid]["state"] == "available"

    def test_recovery_restores_held_lock(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        kernel.component("lock").micro_reboot()
        # The hand-written recovery re-allocs and re-takes for the owner.
        assert stub.invoke(kernel, thread, "lock_release", ("app0", lid)) == 0

    def test_free_drops_tracking(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_free", ("app0", lid))
        assert lid not in stub.descs


class TestRamFSStub:
    def test_offset_tracked_from_returns(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(kernel, thread, "tsplit", ("app0", 1, "f"))
        stub.invoke(kernel, thread, "twrite", ("app0", fd, b"abcd"))
        assert stub.descs[fd]["offset"] == 4
        stub.invoke(kernel, thread, "tseek", ("app0", fd, 1))
        assert stub.descs[fd]["offset"] == 1
        data = stub.invoke(kernel, thread, "tread", ("app0", fd, 2))
        assert data == b"bc"
        assert stub.descs[fd]["offset"] == 3

    def test_recovery_restores_offset(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "ramfs")
        fd = stub.invoke(kernel, thread, "tsplit", ("app0", 1, "f"))
        stub.invoke(kernel, thread, "twrite", ("app0", fd, b"abcdef"))
        stub.invoke(kernel, thread, "tseek", ("app0", fd, 2))
        kernel.component("ramfs").micro_reboot()
        assert stub.invoke(kernel, thread, "tread", ("app0", fd, 2)) == b"cd"


class TestMMStub:
    def test_subtree_tracked_and_dropped(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "mm")
        stub.invoke(kernel, thread, "mman_get_page", ("app0", 0x4000))
        stub.invoke(
            kernel, thread, "mman_alias_page", ("app0", 0x4000, "app0", 0x8000)
        )
        assert 0x8000 in stub.descs[0x4000]["children"]
        stub.invoke(kernel, thread, "mman_release_page", ("app0", 0x4000))
        assert 0x4000 not in stub.descs
        assert 0x8000 not in stub.descs

    def test_alias_recovery_is_parent_first(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "mm")
        stub.invoke(kernel, thread, "mman_get_page", ("app0", 0x4000))
        stub.invoke(
            kernel, thread, "mman_alias_page", ("app0", 0x4000, "app0", 0x8000)
        )
        kernel.component("mm").micro_reboot()
        assert (
            stub.invoke(kernel, thread, "mman_release_page", ("app0", 0x8000))
            == 0
        )
        mm = kernel.component("mm")
        assert mm.has_mapping("app0", 0x4000)


class TestEventStubG0:
    def test_cross_component_recovery_via_server_stub(self, system):
        kernel = system.kernel
        creator = kernel.create_thread(
            "creator", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        other = kernel.create_thread(
            "other", prio=1, home="app1", body_factory=lambda s, t: iter(())
        )
        app0 = system.stub("app0", "event")
        app1 = system.stub("app1", "event")
        evtid = app0.invoke(kernel, creator, "evt_split", ("app0", 0, 3))
        kernel.component("event").micro_reboot()
        assert app1.invoke(kernel, other, "evt_trigger", ("app1", evtid)) == 0
        assert kernel.server_stub_for("event").stats["einval_recoveries"] >= 1

    def test_alias_recorded_after_sid_change(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "event")
        first = stub.invoke(kernel, thread, "evt_split", ("app0", 0, 1))
        stub.invoke(kernel, thread, "evt_split", ("app0", 0, 2))
        kernel.component("event").micro_reboot()
        # Touch the second descriptor first so the first one's replayed id
        # differs from its original.
        stub.invoke(kernel, thread, "evt_trigger", ("app0", first))
        storage = kernel.component("storage")
        resolved = storage.resolve_alias(thread, "event", first)
        assert resolved == stub.descs[first]["sid"]


class TestStubBase:
    def test_unknown_fn_passthrough(self, system, thread):
        stub = system.stub("app0", "lock")
        # lock component has no such export: capability error surfaces.
        from repro.errors import CapabilityError

        with pytest.raises(CapabilityError):
            stub.invoke(system.kernel, thread, "bogus_fn", ())

    def test_stats_shape(self, system, thread):
        stub = system.stub("app0", "lock")
        stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
        assert stub.stats["tracked_ops"] >= 1
        assert stub.stats["recoveries"] == 0

    def test_recover_all(self, system, thread):
        kernel = system.kernel
        stub = system.stub("app0", "timer")
        stub.invoke(kernel, thread, "timer_alloc", ("app0", 500))
        stub.invoke(kernel, thread, "timer_alloc", ("app0", 900))
        kernel.component("timer").micro_reboot()
        assert stub.recover_all(kernel, thread) == 2
