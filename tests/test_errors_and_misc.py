"""Tests for the error hierarchy and small shared pieces."""

import repro
from repro.errors import (
    AssertionFault,
    BlockThread,
    CapabilityError,
    ConfigurationError,
    CorruptionDetected,
    IDLSyntaxError,
    IDLValidationError,
    InvalidDescriptor,
    PropagatedFault,
    RecoveryError,
    ReproError,
    SegmentationFault,
    SimulatedFault,
    SystemCrash,
    SystemHang,
)


class TestHierarchy:
    def test_library_errors_are_repro_errors(self):
        for cls in (
            ConfigurationError,
            CapabilityError,
            IDLSyntaxError,
            IDLValidationError,
            RecoveryError,
            InvalidDescriptor,
        ):
            assert issubclass(cls, ReproError)

    def test_simulated_faults_are_not_repro_errors(self):
        # Fault-model exceptions are a separate family: they model the
        # hardware, not bugs in the library.
        assert not issubclass(SimulatedFault, ReproError)

    def test_fault_kinds(self):
        assert SegmentationFault("x").kind == "segfault"
        assert AssertionFault("x").kind == "assertion"
        assert CorruptionDetected("x").kind == "corruption"
        assert SystemHang("x").kind == "hang"
        assert SystemCrash("x").kind == "crash"
        assert PropagatedFault("x").kind == "propagated"

    def test_recoverability_defaults(self):
        assert SegmentationFault("x").recoverable
        assert AssertionFault("x").recoverable
        assert not SystemHang("x").recoverable
        assert not SystemCrash("x").recoverable
        assert not PropagatedFault("x").recoverable

    def test_fault_component_attribute(self):
        fault = AssertionFault("x", component="lock")
        assert fault.component == "lock"

    def test_invalid_descriptor_payload(self):
        error = InvalidDescriptor(42, component="mm")
        assert error.desc_id == 42
        assert error.component == "mm"
        assert "42" in str(error)

    def test_idl_syntax_error_position(self):
        error = IDLSyntaxError("bad", line=3, column=7)
        assert error.line == 3
        assert "line 3" in str(error)


class TestBlockThread:
    def test_payload(self):
        on_wake = lambda t, tok, to: 1  # noqa: E731
        block = BlockThread("lock", ("lock", 1), timeout=99, on_wake=on_wake)
        assert block.component == "lock"
        assert block.token == ("lock", 1)
        assert block.timeout == 99
        assert block.on_wake is on_wake

    def test_is_not_a_fault(self):
        assert not issubclass(BlockThread, SimulatedFault)


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_thread_repr(self):
        from repro.composite.thread import Invoke, SimThread, Yield

        thread = SimThread(1, "t", 5, "app0", lambda s, t: iter(()))
        assert "tid=1" in repr(thread)
        assert "lock.lock_take" in repr(Invoke("lock", "lock_take", 1))
        assert repr(Yield()) == "Yield()"

    def test_fault_sentinel_repr(self):
        from repro.composite.kernel import FAULT

        assert repr(FAULT) == "<FAULT>"
