"""Tests for the multi-class fault engine (mem / idl / burst).

Covers the ISSUE's mandated edge cases — a memory flip targeting a
never-dirtied image, an IDL fuzz on a function carrying no integer
arguments, and a burst window cut short by a micro-reboot's virtual-time
cost — plus per-class campaign determinism and spec plumbing.
"""

import pytest

from repro.composite.memory import MemoryImage, PAGE_WORDS
from repro.errors import ReproError, SimulatedFault
from repro.swifi.campaign import CampaignRunner, RunSpec, execute_run
from repro.swifi.injector import (
    BURST_K,
    FAULT_CLASSES,
    IdlFuzz,
    MemFlip,
    SwifiController,
)
from repro.system import build_system

BASE = 0x0300_0000


# ---------------------------------------------------------------------------
# MemoryImage targeting helpers
# ---------------------------------------------------------------------------
class TestImageTargetingHelpers:
    def test_dirty_page_indices_track_writes_since_freeze(self):
        image = MemoryImage(BASE, 2048)
        image.write_word(BASE + 20, 5)
        image.freeze_good_image()
        assert image.dirty_page_indices() == []
        image.write_word(BASE + PAGE_WORDS + 44, 9)  # page 1
        assert image.dirty_page_indices() == [1]

    def test_modified_word_offsets_excludes_restored_values(self):
        image = MemoryImage(BASE, 2048)
        image.freeze_good_image()
        offset = PAGE_WORDS + 44
        image.write_word(BASE + offset, 9)
        assert image.modified_word_offsets(1) == [offset]
        # Writing the boot-time value back leaves the page dirty but the
        # word is no longer *live* — it matches the good image again.
        image.write_word(BASE + offset, 0)
        assert image.dirty_page_indices() == [1]
        assert image.modified_word_offsets(1) == []

    def test_modified_word_offsets_empty_before_freeze(self):
        image = MemoryImage(BASE, 2048)
        image.write_word(BASE + 30, 1)
        assert image.modified_word_offsets(0) == []


# ---------------------------------------------------------------------------
# mem: memory-image bit flips
# ---------------------------------------------------------------------------
class TestMemFlips:
    def test_flip_on_never_dirtied_image_degrades_to_uniform(self):
        # Edge case: the target image has no dirty pages at fire time
        # (cold state) — the injector must still deliver, drawing the
        # page uniformly instead of from the (empty) dirty set.
        system = build_system(ft_mode="superglue")
        image = system.kernel.component("lock").image
        image.freeze_good_image()  # clears the dirty bitmap
        assert image.dirty_page_count == 0
        swifi = SwifiController(system.kernel, seed=11)
        swifi.arm_mem("lock")
        assert swifi.take_injection("lock", 8) is None
        [flip] = swifi.delivered
        assert isinstance(flip, MemFlip)
        assert flip.page_dirty is False
        assert image.is_tainted(flip.addr)
        assert image.taint_count == 1

    def test_flip_prefers_dirty_heap_page_and_live_word(self):
        system = build_system(ft_mode="superglue")
        image = system.kernel.component("lock").image
        image.freeze_good_image()
        # Dirty one heap word with a value that differs from boot.
        addr = BASE if image.contains(BASE) else image.base + 40
        image.write_word(addr, 0xDEAD)
        swifi = SwifiController(system.kernel, seed=11)
        swifi.arm_mem("lock")
        swifi.take_injection("lock", 8)
        [flip] = swifi.delivered
        assert flip.page_dirty is True
        assert flip.addr == addr  # the only live word on the only dirty page
        assert image.read_word(addr) == 0xDEAD ^ (1 << flip.bit)

    def test_mem_flip_is_one_shot(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=3)
        swifi.arm_mem("lock")
        swifi.take_injection("lock", 8)
        swifi.take_injection("lock", 8)
        assert swifi.delivered_count == 1
        assert swifi.pending is None

    def test_pool_restore_undoes_mem_flip(self):
        # The dirty-restore contract: a flip written tainted lands on a
        # dirty page, so restore() provably removes both value and taint.
        system = build_system(ft_mode="superglue")
        image = system.kernel.component("lock").image
        image.freeze_good_image()
        frozen = list(image.words)
        swifi = SwifiController(system.kernel, seed=7)
        swifi.arm_mem("lock")
        swifi.take_injection("lock", 8)
        assert list(image.words) != frozen
        image.restore()
        assert list(image.words) == frozen
        assert image.taint_count == 0


# ---------------------------------------------------------------------------
# idl: interface-boundary fuzzing
# ---------------------------------------------------------------------------
class TestIdlFuzz:
    @staticmethod
    def _stub_setup():
        system = build_system(ft_mode="superglue")
        kernel = system.kernel
        thread = kernel.create_thread(
            "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
        )
        return system, kernel, thread, system.stub("app0", "lock")

    def test_zero_int_arg_function_converts_to_ret_fuzz(self):
        # Edge case: lock_alloc("app0") carries no integer argument, so
        # the armed corruption must convert to a return-value flip
        # instead of silently fizzling.
        system, kernel, thread, stub = self._stub_setup()
        swifi = SwifiController(kernel, seed=5)
        swifi.arm_idl("lock")
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        [fuzz] = swifi.delivered
        assert isinstance(fuzz, IdlFuzz)
        assert fuzz.target == "ret" and fuzz.index == -1
        # The caller-visible lid is the true descriptor with one bit
        # flipped; un-flipping it recovers a valid table entry.
        assert stub.table.lookup(lid ^ (1 << fuzz.bit)) is not None
        assert swifi._idl_ret_pending is None  # one-shot

    def test_int_arg_is_flipped_in_flight(self):
        system, kernel, thread, stub = self._stub_setup()
        swifi = SwifiController(kernel, seed=5)
        lid = stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        swifi.arm_idl("lock")
        try:
            stub.invoke(kernel, thread, "lock_take", ("app0", lid))
        except (ReproError, SimulatedFault):
            pass  # a corrupted descriptor is allowed to fault
        [fuzz] = swifi.delivered
        assert fuzz.target == "arg"
        assert fuzz.index == 1  # the lid, not the principal string

    def test_unarmed_invocations_still_counted(self):
        system, kernel, thread, stub = self._stub_setup()
        swifi = SwifiController(kernel, seed=5)
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        assert swifi.invoke_counts["lock"] == 1
        assert swifi.delivered_count == 0

    def test_arm_threshold_delays_delivery(self):
        system, kernel, thread, stub = self._stub_setup()
        swifi = SwifiController(kernel, seed=5)
        swifi.arm_idl("lock", after_invocations=2)
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        assert swifi.delivered_count == 0
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        assert swifi.delivered_count == 1


# ---------------------------------------------------------------------------
# burst: correlated multi-flip faults
# ---------------------------------------------------------------------------
class TestBurst:
    def test_follow_ups_cross_components_within_window(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=7)
        plan = swifi.arm_burst("lock", k=3, window=1_000_000)
        assert plan.fault_class == "burst" and plan.burst_k == 3
        assert swifi.take_injection("lock", 10) is not None
        # Follow-up flips land in whichever component executes next.
        assert swifi.take_injection("ramfs", 10) is not None
        assert swifi.take_injection("mm", 10) is not None
        assert swifi.take_injection("sched", 10) is None  # burst spent
        assert swifi.delivered_count == 3

    def test_window_straddling_micro_reboot_cancels_tail(self):
        # Edge case: the burst window is virtual time, so a micro-reboot
        # whose image-restore cost pushes the clock past the deadline
        # cuts the burst short.
        system = build_system(ft_mode="superglue")
        kernel = system.kernel
        image = kernel.component("lock").image
        swifi = SwifiController(kernel, seed=7)
        window = image.reboot_cost_cycles // 2  # reboot overshoots it
        swifi.arm_burst("lock", k=BURST_K, window=window)
        assert swifi.take_injection("lock", 10) is not None
        assert swifi._burst_remaining == BURST_K - 1
        kernel.clock.advance(image.reboot_cost_cycles)
        assert swifi.take_injection("ramfs", 10) is None
        assert swifi._burst_remaining == 0  # cancelled, not deferred
        assert swifi.delivered_count == 1

    def test_disarm_clears_burst_state(self):
        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=7)
        swifi.arm_burst("lock", k=3, window=1_000_000)
        swifi.take_injection("lock", 10)
        swifi.disarm()
        assert swifi.take_injection("ramfs", 10) is None


# ---------------------------------------------------------------------------
# Campaign plumbing
# ---------------------------------------------------------------------------
class TestFaultClassCampaigns:
    def test_run_spec_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            RunSpec(
                service="lock", ft_mode="superglue", iterations=4,
                horizon=10, fault_class="alpha",
            )

    def test_fingerprint_distinguishes_classes(self):
        specs = {
            RunSpec(
                service="lock", ft_mode="superglue", iterations=4,
                horizon=10, fault_class=fc,
            ).fingerprint()
            for fc in FAULT_CLASSES
        }
        assert len(specs) == len(FAULT_CLASSES)

    def test_execute_run_is_deterministic_per_class(self):
        for fault_class in FAULT_CLASSES:
            runner = CampaignRunner(
                "lock", n_faults=1, iterations=3, fault_class=fault_class
            )
            spec = runner.spec()
            assert execute_run(spec, 42) == execute_run(spec, 42)

    @pytest.mark.parametrize("fault_class", FAULT_CLASSES)
    def test_campaign_column_row_shape(self, fault_class):
        runner = CampaignRunner(
            "lock", n_faults=4, seed=3, iterations=3, fault_class=fault_class
        )
        result = runner.run(workers=1)
        row = result.row()
        assert row["fault_class"] == fault_class
        assert row["injected"] == 4
        outcomes = (
            row["recovered"] + row["not_recovered_segfault"]
            + row["not_recovered_propagated"] + row["not_recovered_other"]
            + row["undetected"]
        )
        assert outcomes == 4

    def test_idl_calibration_uses_invocation_horizon(self):
        # The idl horizon counts client-stub invocations of the target,
        # not trace executions: it must match a direct measurement of
        # the fault-free workload's invocation count.
        from repro.swifi.campaign import MAX_STEPS
        from repro.workloads import workload_for

        system = build_system(ft_mode="superglue")
        swifi = SwifiController(system.kernel, seed=0)
        workload_for("lock").install(system, iterations=3)
        system.run(max_steps=MAX_STEPS)
        observed = swifi.invoke_counts["lock"]
        assert observed >= 1
        idl = CampaignRunner("lock", n_faults=1, iterations=3,
                             fault_class="idl")
        assert idl.calibrate() == observed
