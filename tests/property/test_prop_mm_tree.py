"""Property tests: MM mapping-tree invariants under random op sequences."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import InvalidDescriptor
from repro.system import build_system

PAGES = [0x4000, 0x5000, 0x6000, 0x7000]
ALIAS = [0x8000, 0x9000, 0xA000]

ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.sampled_from(PAGES)),
        st.tuples(
            st.just("alias"), st.sampled_from(PAGES), st.sampled_from(ALIAS)
        ),
        st.tuples(st.just("release"), st.sampled_from(PAGES + ALIAS)),
    ),
    max_size=25,
)


def check_tree_invariants(mm):
    for key, node in mm.mappings.items():
        # Parent links are symmetric with children sets.
        if node.parent is not None:
            assert node.parent in mm.mappings
            assert key in mm.mappings[node.parent].children
            # Child shares the parent's frame.
            assert node.frame == mm.mappings[node.parent].frame
        for child in node.children:
            assert child in mm.mappings
            assert mm.mappings[child].parent == key


@given(sequence=ops)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mapping_tree_invariants_hold(sequence):
    system = build_system(ft_mode="none")
    mm = system.service("mm")
    thread = system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    for op in sequence:
        try:
            if op[0] == "get":
                mm.mman_get_page(thread, "app0", op[1])
            elif op[0] == "alias":
                mm.mman_alias_page(thread, "app0", op[1], "app0", op[2])
            else:
                mm.mman_release_page(thread, "app0", op[1])
        except InvalidDescriptor:
            pass
        check_tree_invariants(mm)


@given(sequence=ops, seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mapping_tree_invariants_hold_across_reboot_recovery(sequence, seed):
    system = build_system(ft_mode="superglue")
    kernel = system.kernel
    mm = system.service("mm")
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub = system.stub("app0", "mm")
    for index, op in enumerate(sequence):
        try:
            if op[0] == "get":
                stub.invoke(kernel, thread, "mman_get_page", ("app0", op[1]))
            elif op[0] == "alias":
                stub.invoke(
                    kernel, thread,
                    "mman_alias_page", ("app0", op[1], "app0", op[2]),
                )
            else:
                stub.invoke(
                    kernel, thread, "mman_release_page", ("app0", op[1])
                )
        except InvalidDescriptor:
            pass
        if index == len(sequence) // 2:
            mm.micro_reboot()
        check_tree_invariants(mm)
