"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.composite.machine import (
    EAX,
    NUM_REGS,
    Injection,
    RegisterFile,
    Trace,
    execute_trace,
)
from repro.composite.memory import MemoryImage
from repro.core.state_machine import INIT_STATE, DescriptorStateMachine
from repro.errors import SimulatedFault

BASE = 0x0300_0000

fn_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6),
    min_size=2,
    max_size=6,
    unique=True,
)


# ---------------------------------------------------------------------------
# State machines: every reachable state has a valid recovery walk, and the
# walk actually transits the machine from s0 to the expected state.
# ---------------------------------------------------------------------------
@given(names=fn_names, data=st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_random_state_machine_walks_reach_expected_state(names, data):
    creation = names[0]
    others = names[1:]
    # Random transition relation over the functions, always allowing each
    # non-creation fn to follow creation (so everything is reachable).
    transitions = [(creation, fn) for fn in others]
    for a in names:
        for b in others:
            if data.draw(st.booleans(), label=f"edge {a}->{b}"):
                transitions.append((a, b))
    sm = DescriptorStateMachine(
        functions=names,
        transitions=transitions,
        creation_fns=[creation],
        terminal_fns=[],
    )
    sm.validate()
    for target in others:
        walk = sm.recovery_walk(target)
        assert walk[0] == creation
        # Replay the walk through sigma and confirm we land on target.
        state = INIT_STATE
        for fn in walk:
            next_state = sm.sigma(state, fn)
            assert next_state is not None, (state, fn, transitions)
            state = next_state
        assert state == target


@given(names=fn_names)
@settings(max_examples=30)
def test_walk_to_init_is_always_creation_only(names):
    creation = names[0]
    transitions = [(creation, fn) for fn in names[1:]]
    sm = DescriptorStateMachine(
        functions=names,
        transitions=transitions,
        creation_fns=[creation],
        terminal_fns=[],
    )
    assert sm.recovery_walk(INIT_STATE) == [creation]


# ---------------------------------------------------------------------------
# Memory: micro-reboot always restores the frozen image exactly.
# ---------------------------------------------------------------------------
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=16, max_value=1000),
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        max_size=30,
    )
)
@settings(max_examples=50)
def test_micro_reboot_restores_exact_image(writes):
    image = MemoryImage(BASE, 2048)
    for offset, value in writes[: len(writes) // 2]:
        image.write_word(BASE + offset, value)
    image.freeze_good_image()
    frozen = list(image.words)
    for offset, value in writes:
        image.write_word(BASE + offset, value ^ 0xFFFF, tainted=True)
    image.micro_reboot()
    assert list(image.words) == frozen
    assert not any(image.is_tainted(BASE + off) for off, __ in writes)


@given(sizes=st.lists(st.integers(min_value=1, max_value=32), max_size=40))
@settings(max_examples=50)
def test_allocations_never_overlap(sizes):
    image = MemoryImage(BASE, 8192)
    spans = []
    for size in sizes:
        addr = image.alloc(size)
        for other_start, other_end in spans:
            assert addr + size <= other_start or addr >= other_end
        spans.append((addr, addr + size))


# ---------------------------------------------------------------------------
# Fault model: a magic-check trace detects *any* single-bit flip in the
# address register before the check, or is harmless.
# ---------------------------------------------------------------------------
@given(
    bit=st.integers(min_value=0, max_value=31),
    reg=st.integers(min_value=0, max_value=NUM_REGS - 1),
    op_index=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=120)
def test_single_bit_flip_never_silently_corrupts_checked_record(bit, reg, op_index):
    image = MemoryImage(BASE, 2048)
    record = image.alloc_record(0x5AFE, 2)
    image.write_word(record + 1, 7)
    regs = RegisterFile()
    regs.write(6, image.stack_top)  # ESP
    regs.write(7, image.stack_top)  # EBP
    trace = (
        Trace()
        .li(EAX, record)
        .chk(EAX, 0, 0x5AFE)
        .ld(1, EAX, 1)
        .assert_range(1, 7, 7)
        .chk(EAX, 0, 0x5AFE)
        .ret(1)
    )
    injection = Injection(reg=reg, bit=bit, op_index=op_index)
    try:
        result = execute_trace(trace, regs, image, injection=injection)
    except SimulatedFault:
        return  # detected: fail-stop, as intended
    if result.tainted:
        return  # escapes to the boundary check
    # Undetected flips must not have changed the observable value.
    assert result.value == 7


# ---------------------------------------------------------------------------
# Workload-level: descriptor recovery is idempotent — recovering twice is
# the same as recovering once.
# ---------------------------------------------------------------------------
@given(locks=st.integers(min_value=1, max_value=5), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_idempotent(locks, seed):
    from repro.system import build_system

    system = build_system(ft_mode="superglue")
    kernel = system.kernel
    thread = kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub = system.stub("app0", "lock")
    lids = [
        stub.invoke(kernel, thread, "lock_alloc", ("app0",))
        for __ in range(locks)
    ]
    kernel.component("lock").micro_reboot()
    for lid in lids:
        entry = stub.table.lookup(lid)
        stub.recover_on_demand(kernel, thread, entry)
        sid_after_first = entry.sid
        stub.recover_on_demand(kernel, thread, entry)
        assert entry.sid == sid_after_first
    lock = kernel.component("lock")
    assert len(lock.locks) == locks
