"""Differential properties of the multi-class fault engine.

Two invariants, checked across every fault class with hypothesis-drawn
seeds:

1. **Determinism** — a run's outcome is a pure function of ``(spec,
   run_seed)``; executing the same run twice (through the pooled system
   path) yields the same Table II outcome.
2. **Recovered ≡ fault-free** — a run classified RECOVERED left the
   workload in a state indistinguishable from a fault-free execution:
   the handle's correctness check passes and its observable results
   (progress counters, minus descriptor identities that recovery may
   legitimately renumber) match a fault-free reference run.

Plus a memory-level differential: an injector-style tainted flip is
always fully undone by the dirty-page restore, whatever else was
written around it.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.composite.memory import MemoryImage
from repro.swifi.campaign import (
    MAX_STEPS,
    CampaignRunner,
    _drive_run,
    execute_run,
)
from repro.swifi.classify import Outcome
from repro.swifi.injector import FAULT_CLASSES
from repro.system import build_system
from repro.workloads import workload_for

BASE = 0x0300_0000
SERVICE = "lock"
ITERATIONS = 3

#: Descriptor / thread identities that a successful recovery may
#: renumber without violating the workload specification.
_IDENTITY_KEYS = frozenset({"lid", "evtid", "tmid", "tid_a", "tid_b"})

_spec_cache = {}
_reference = {}


def _spec(fault_class):
    """Calibrated RunSpec for SERVICE, cached per fault class."""
    spec = _spec_cache.get(fault_class)
    if spec is None:
        runner = CampaignRunner(
            SERVICE,
            ft_mode="superglue",
            iterations=ITERATIONS,
            fault_class=fault_class,
        )
        spec = runner.spec()
        _spec_cache[fault_class] = spec
    return spec


def _observable(results):
    return {k: v for k, v in results.items() if k not in _IDENTITY_KEYS}


def _fault_free_results():
    """Observable results of one fault-free run (cached)."""
    if "ref" not in _reference:
        system = build_system(ft_mode="superglue")
        handle = workload_for(SERVICE).install(system, iterations=ITERATIONS)
        system.run(max_steps=MAX_STEPS)
        assert handle.check(), handle.results
        _reference["ref"] = _observable(handle.results)
    return _reference["ref"]


@given(
    fault_class=st.sampled_from(FAULT_CLASSES),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_outcome_is_pure_function_of_spec_and_seed(fault_class, seed):
    spec = _spec(fault_class)
    assert execute_run(spec, seed) == execute_run(spec, seed)


@given(
    fault_class=st.sampled_from(FAULT_CLASSES),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovered_state_equals_fault_free_state(fault_class, seed):
    spec = _spec(fault_class)
    outcome, system, swifi, steps, handle = _drive_run(spec, seed)
    if outcome is Outcome.RECOVERED:
        assert swifi.delivered_count > 0  # recovery implies a delivery
        assert handle.check(), (fault_class, seed, handle.results)
        assert _observable(handle.results) == _fault_free_results(), (
            fault_class,
            seed,
        )
    elif outcome is Outcome.UNDETECTED and swifi.delivered_count == 0:
        # The fault never fired: the run *is* a fault-free run.
        assert _observable(handle.results) == _fault_free_results()


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=16, max_value=1000),
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        max_size=20,
    ),
    flip_offset=st.integers(min_value=0, max_value=2047),
    flip_bit=st.integers(min_value=0, max_value=31),
)
@settings(max_examples=50, deadline=None)
def test_tainted_flip_always_undone_by_restore(writes, flip_offset, flip_bit):
    image = MemoryImage(BASE, 2048)
    for offset, value in writes[: len(writes) // 2]:
        image.write_word(BASE + offset, value)
    image.freeze_good_image()
    frozen = list(image.words)
    for offset, value in writes:
        image.write_word(BASE + offset, value)
    addr = BASE + flip_offset
    image.write_word(addr, image.read_word(addr) ^ (1 << flip_bit),
                     tainted=True)
    assert image.taint_count == 1
    image.restore()
    assert list(image.words) == frozen
    assert image.taint_count == 0
    assert image.dirty_page_count == 0
