"""Property tests: random valid IDL specs survive the full pipeline.

Generates random-but-valid interface specifications (model flags, state
machines, prototypes), renders them to IDL text, and checks that
parse -> validate -> compile -> emit -> parse is lossless and that every
reachable state keeps a valid recovery walk.
"""

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.compiler import SuperGlueCompiler
from repro.core.idl import build_ir, parse_idl
from repro.core.idl.emitter import emit_idl, specs_equivalent
from repro.core.state_machine import INIT_STATE

names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=8),
    min_size=3,
    max_size=6,
    unique=True,
)


def _build_idl(fn_names, blocking, has_parent, data):
    """Construct IDL text for a random small interface."""
    service = "svc"
    create = f"{fn_names[0]}_mk"
    terminal = f"{fn_names[1]}_rm"
    plains = [f"{n}_op" for n in fn_names[2:]]
    block_fn = None
    wakeup_fn = None
    if blocking and len(plains) >= 2:
        block_fn, wakeup_fn = plains[0], plains[1]
    else:
        blocking = False

    lines = [f"service = {service};", "service_global_info = {"]
    lines.append(f"    desc_block = {'true' if blocking else 'false'},")
    if has_parent:
        lines.append("    desc_has_parent = parent,")
        lines.append("    desc_close_remove = true,")
    lines.append("    desc_has_data = true")
    lines.append("};")

    # Transition relation: creation leads to everything; random extra
    # edges between non-creation functions.
    non_create = plains + [terminal]
    for fn in non_create:
        lines.append(f"sm_transition({create}, {fn});")
    for a in plains:
        for b in non_create:
            if data.draw(st.booleans(), label=f"{a}->{b}"):
                lines.append(f"sm_transition({a}, {b});")
    lines.append(f"sm_creation({create});")
    lines.append(f"sm_terminal({terminal});")
    if blocking:
        lines.append(f"sm_block({block_fn});")
        lines.append(f"sm_wakeup({wakeup_fn});")
        lines.append(f"sm_readonly({wakeup_fn});")

    lines.append("desc_data_retval(long, did)")
    if has_parent:
        lines.append(
            f"{create}(desc_data(componentid_t compid), "
            f"desc_data(parent_desc(long pid)));"
        )
    else:
        lines.append(f"{create}(desc_data(componentid_t compid));")
    for fn in plains:
        lines.append(f"int {fn}(componentid_t compid, desc(long did));")
    lines.append(f"int {terminal}(componentid_t compid, desc(long did));")
    return "\n".join(lines) + "\n"


@given(
    fn_names=names,
    blocking=st.booleans(),
    has_parent=st.booleans(),
    data=st.data(),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_idl_full_pipeline(fn_names, blocking, has_parent, data):
    source = _build_idl(fn_names, blocking, has_parent, data)
    spec = parse_idl(source)
    ir = build_ir(spec)

    # Emitter round-trip is lossless.
    assert specs_equivalent(spec, parse_idl(emit_idl(spec)))

    # Compilation succeeds and produces a client stub for every function.
    compiled = SuperGlueCompiler().compile_ir(ir)
    for fn in ir.functions:
        assert hasattr(compiled.client_class, f"stub_{fn}")

    # Every state-changing, reachable function keeps a valid walk that
    # sigma accepts end to end.
    for fn in ir.functions.values():
        if not ir.sm.changes_state(fn.name):
            continue
        if fn.is_creation or fn.is_terminal:
            continue
        walk = ir.sm.recovery_walk(fn.name)
        state = INIT_STATE
        for step in walk:
            state = ir.sm.sigma(state, step)
            assert state is not None
        assert state == fn.name

    # The initial state is always recoverable by re-creation alone.
    assert len(ir.sm.recovery_walk(INIT_STATE)) == 1
