#!/usr/bin/env python3
"""C'MON-style latent-fault monitoring (extension example).

Plants silent corruption in a lock descriptor that no thread will touch
for a long virtual time, then shows the difference between reactive
detection (the corruption is found only when a thread finally trips over
it) and the monitor's bounded-latency scrub detection.

Run:  python examples/latent_fault_monitor.py
"""

from repro.composite.monitor import LatentFaultMonitor
from repro.system import build_system

TOUCH_DELAY = 500_000  # cycles until the workload touches the descriptor
PERIOD = 20_000        # monitor scrub period


def plant(system, thread):
    stub = system.stub("app0", "lock")
    lid = stub.invoke(system.kernel, thread, "lock_alloc", ("app0",))
    lock = system.service("lock")
    record = lock.record_for(lid)
    lock.image.corrupt_word(record.addr, 0xDEAD)
    return stub, lid


def reactive():
    system = build_system(ft_mode="superglue")
    thread = system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub, lid = plant(system, thread)
    t0 = system.kernel.clock.now
    system.kernel.clock.advance(TOUCH_DELAY)  # busy elsewhere
    stub.invoke(system.kernel, thread, "lock_take", ("app0", lid))
    detected_at = system.booter.reboot_log[0][0]
    return detected_at - t0


def monitored():
    system = build_system(ft_mode="superglue")
    thread = system.kernel.create_thread(
        "t", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    plant(system, thread)
    t0 = system.kernel.clock.now
    monitor = LatentFaultMonitor(system.kernel, targets=["lock"], period=PERIOD)
    monitor.start()
    while not monitor.detections:
        system.kernel.clock.skip_to_next_expiry()
        for callback in system.kernel.clock.pop_due():
            callback()
    return monitor.detections[0][0] - t0


def main():
    r = reactive()
    m = monitored()
    print(f"reactive detection latency : {r:>9,} cycles "
          f"(waits for the workload)")
    print(f"monitored detection latency: {m:>9,} cycles "
          f"(bounded by the {PERIOD:,}-cycle scrub period)")
    print(f"speedup: {r / m:.0f}x")


if __name__ == "__main__":
    main()
