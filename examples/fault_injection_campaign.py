#!/usr/bin/env python3
"""Mini Table II: a SWIFI campaign over all six system services.

Runs a reduced fault-injection campaign (default 100 faults per service;
the paper uses 500 — pass a count argument for the full run) and prints
the Table II columns: recovered, not-recovered (segfault / propagated /
other), undetected, activation ratio, and recovery success rate.

Each run is a pure function of its seed, so the campaign fans out over a
process pool with results bit-identical to a serial run.

Run:  python examples/fault_injection_campaign.py [n_faults] [workers]
"""

import os
import sys

from repro.swifi.campaign import format_table2, run_full_campaign


def main() -> None:
    n_faults = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 1)
    print(f"SWIFI campaign: {n_faults} faults per service "
          f"(SuperGlue stubs, on-demand recovery, {workers} worker(s))\n")
    results = run_full_campaign(
        n_faults=n_faults, ft_mode="superglue", seed=1, workers=workers
    )
    print(format_table2(results))
    print(
        "\nPaper (Table II, 500 faults/service): activation 93.8-98.4%, "
        "recovery success 88.6-96.1%,\nsegfault crashes highest for Sched, "
        "propagation <=2 per 500."
    )


if __name__ == "__main__":
    main()
