#!/usr/bin/env python3
"""Quickstart: compile an IDL, run a workload, survive a fault.

Builds the simulated COMPOSITE system with SuperGlue-generated stubs,
runs the lock workload, injects one register bit-flip into the lock
service mid-run, and shows the micro-reboot + interface-driven recovery
keeping the workload correct.

Run:  python examples/quickstart.py
"""

from repro.idl_specs import load_idl
from repro.core.compiler import SuperGlueCompiler
from repro.swifi import SwifiController
from repro.system import build_system
from repro.workloads import workload_for


def show_compiler_output() -> None:
    """Compile the lock service's IDL and show what the compiler derives."""
    compiler = SuperGlueCompiler()
    compiled = compiler.compile_source(load_idl("lock"), name="lock")
    ir = compiled.ir
    print("== SuperGlue compiler ==")
    print(f"interface     : {ir.name}")
    print(f"IDL lines     : {compiled.idl_loc}")
    print(f"generated LOC : {compiled.generated_loc}")
    print(f"mechanisms    : {', '.join(ir.mechanisms())}")
    print(f"walk to 'taken' state: {ir.sm.recovery_walk('lock_take')}")
    print()


def run_with_fault() -> None:
    """One fault-injection run with full recovery."""
    print("== Fault injection + recovery ==")
    system = build_system(ft_mode="superglue")
    swifi = SwifiController(system.kernel, seed=42)
    workload = workload_for("lock")
    handle = workload.install(system, iterations=4)

    # Arm one single-event upset against the lock component: a random bit
    # of a random register of whichever thread executes inside it next.
    swifi.arm("lock", after_executions=5)

    system.run(max_steps=100_000)

    print(f"injections delivered : {swifi.delivered_count}")
    print(f"micro-reboots        : {system.booter.reboots}")
    recoveries = system.recovery_manager.total_recoveries
    print(f"descriptors recovered: {recoveries}")
    print(f"workload correct     : {handle.check()}")
    print(f"results              : {handle.results}")


if __name__ == "__main__":
    show_compiler_output()
    run_with_fault()
