#!/usr/bin/env python3
"""Fig. 7 demo: web-server throughput across fault-tolerance modes.

Serves a request stream through the componentized web server under four
configurations — no fault tolerance, C^3 stubs, SuperGlue stubs, and
SuperGlue with one fault injected into a different system service every
few hundred requests (the paper's every-10-seconds, rescaled) — plus the
analytic Apache baseline.

Run:  python examples/webserver_demo.py [n_requests]
"""

import sys

from repro.webserver.apache_model import ApacheModel
from repro.webserver.loadgen import run_webserver


def main() -> None:
    n_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000
    print(f"Web-server benchmark: {n_requests} requests, concurrency 10\n")

    apache = ApacheModel().throughput_rps(n_requests)
    print(f"{'apache (model)':<22} {apache:>12,.0f} req/s")

    results = {}
    for mode in ("none", "c3", "superglue"):
        results[mode] = run_webserver(ft_mode=mode, n_requests=n_requests)
        label = {"none": "composite (base)",
                 "c3": "composite + C^3",
                 "superglue": "composite + SuperGlue"}[mode]
        print(f"{label:<22} {results[mode].throughput_rps:>12,.0f} req/s")

    base = results["none"].throughput_rps
    for mode in ("c3", "superglue"):
        slowdown = 100 * (1 - results[mode].throughput_rps / base)
        print(f"  {mode} slowdown: {slowdown:.2f}%  "
              f"(paper: C^3 10.5%, SuperGlue 11.84%)")

    faulted = run_webserver(
        ft_mode="superglue", n_requests=n_requests, with_faults=True, seed=3
    )
    slowdown = 100 * (1 - faulted.throughput_rps / base)
    print(
        f"\nSuperGlue with faults : {faulted.throughput_rps:,.0f} req/s "
        f"({slowdown:.2f}% slowdown; paper: 13.6%)"
    )
    print(
        f"  faults delivered={faulted.faults_injected} "
        f"(armed={faulted.faults_armed}), "
        f"micro-reboots={faulted.reboots}, served={faulted.served}, "
        f"errors={faulted.errors}"
    )
    # Worst single inter-completion gap, then the span of the worst
    # 50-completion window around it (None on short runs).
    gap = faulted.dip_recovery_cycles(window=2)
    dip = faulted.dip_recovery_cycles()
    if gap is not None:
        print(
            f"  worst service gap: {gap / 2400:.1f} us virtual"
            + (
                f"; worst 50-request window: {dip / 2400:.1f} us"
                if dip is not None
                else ""
            )
            + " (recovery proceeds in parallel with serving)"
        )


if __name__ == "__main__":
    main()
