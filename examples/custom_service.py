#!/usr/bin/env python3
"""Adding a NEW fault-tolerant service with SuperGlue.

This is the library's adoption story: write a service component, write a
~25-line IDL describing its descriptors and state machine, and the
compiler generates the interface-driven recovery stubs — no hand-written
recovery code.

The service here is a bounded message queue (descriptors: queue ids;
blocking receive; message counts persisted as resource data in storage).

Run:  python examples/custom_service.py
"""

from repro.composite import AppComponent, Booter, Invoke, Kernel
from repro.composite.cbuf import CbufManager
from repro.composite.component import export
from repro.composite.services.common import ServiceComponent
from repro.composite.services.storage import StorageService
from repro.core.compiler import SuperGlueCompiler
from repro.core.runtime.recovery import RecoveryManager
from repro.errors import BlockThread
from repro.swifi import SwifiController

FIELD_DEPTH = 1
FIELD_QID = 2

MQ_IDL = """
// SuperGlue IDL for a message-queue service.
service = mq;

service_global_info = {
        desc_has_parent = solo,
        desc_block      = true,
        desc_has_data   = true
};

sm_transition(mq_create, mq_send);
sm_transition(mq_send,   mq_send);
sm_transition(mq_send,   mq_recv);
sm_transition(mq_recv,   mq_send);
sm_transition(mq_create, mq_recv);
sm_transition(mq_create, mq_free);
sm_transition(mq_send,   mq_free);
sm_creation(mq_create);
sm_terminal(mq_free);
sm_block(mq_recv);
sm_wakeup(mq_send);
sm_readonly(mq_send);
sm_readonly(mq_recv);

desc_data_retval(long, qid)
mq_create(desc_data(componentid_t compid));
int mq_send(componentid_t compid, desc(long qid), msg_t msg);
long mq_recv(componentid_t compid, desc(long qid));
int mq_free(componentid_t compid, desc(long qid));
"""


class MessageQueueService(ServiceComponent):
    """A bounded FIFO message queue.

    Queued messages are the resource data (G1-style): they are mirrored
    into the protected storage component inside the critical region, so a
    recovered queue still holds its messages.
    """

    MAGIC = 0x3E55A6E5

    def __init__(self, name="mq", storage="storage"):
        super().__init__(name)
        self.storage_name = storage
        self.queues = {}
        self._next_id = 1

    def reinit(self):
        super().reinit()
        self.queues = {}
        self._next_id = 1

    def _persist(self, thread, compid, qid):
        self.call(thread, self.storage_name, "store_put",
                  "mq:data", compid, list(self.queues[qid]))

    def _restore(self, thread, compid):
        stored = self.call(thread, self.storage_name, "store_get",
                           "mq:data", compid)
        return list(stored) if stored is not None else []

    @export
    def mq_create(self, thread, compid):
        qid = self._next_id
        self._next_id += 1
        # Restore persisted messages *before* building the record so the
        # in-image depth field matches the recovered queue — recovery that
        # recreates inconsistent state would fail its own checks forever.
        restored = self._restore(thread, compid)
        record = self.new_record(qid, [len(restored), qid])
        trace = self.checked_create(record, args=[compid], label="mq_create")
        self.finish(trace, retval=qid)
        self.queues[qid] = restored
        return self.run_op(thread, trace, plausible=lambda v: 0 < v < 65536)

    @export
    def mq_send(self, thread, compid, qid, msg):
        record = self.record_for(qid)
        queue = self.queues[qid]
        trace = self.checked_touch(
            record,
            args=[compid, qid, msg],
            expected=[(FIELD_DEPTH, len(queue)), (FIELD_QID, qid)],
            stores=[(FIELD_DEPTH, len(queue) + 1)],
            label="mq_send",
        )
        self.finish(trace, retval=0)
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        queue.append(msg)
        self._persist(thread, compid, qid)
        woken = self.kernel.wake_token(self.name, ("mq", qid))
        return value

    @export
    def mq_recv(self, thread, compid, qid):
        record = self.record_for(qid)
        queue = self.queues[qid]
        if queue:
            trace = self.checked_touch(
                record,
                args=[compid, qid],
                expected=[(FIELD_DEPTH, len(queue)), (FIELD_QID, qid)],
                stores=[(FIELD_DEPTH, len(queue) - 1)],
                label="mq_recv",
            )
            self.finish(trace, retval=queue[0])
            value = self.run_op(thread, trace, plausible=lambda v: True)
            msg = queue.pop(0)
            self._persist(thread, compid, qid)
            return msg
        def deliver(t, token, timeout):
            waiting = self.queues.get(qid)
            if waiting:
                msg = waiting.pop(0)
                self._persist(t, compid, qid)
                return msg
            return -2  # woken with nothing to deliver (spurious)

        raise BlockThread(self.name, ("mq", qid), on_wake=deliver)

    @export
    def mq_free(self, thread, compid, qid):
        record = self.record_for(qid)
        trace = self.checked_touch(
            record, args=[compid, qid],
            expected=[(FIELD_QID, qid)], label="mq_free",
        )
        self.finish(trace, retval=0)
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.drop_record(qid)
        del self.queues[qid]
        return value


def main():
    # 1. Compile the IDL.
    compiler = SuperGlueCompiler()
    compiled = compiler.compile_source(MQ_IDL)
    print(f"compiled 'mq': {compiled.idl_loc} IDL lines -> "
          f"{compiled.generated_loc} generated LOC, "
          f"mechanisms {compiled.ir.mechanisms()}")

    # 2. Wire a system with the new service.
    kernel = Kernel(ft_mode="superglue")
    kernel.register_component(AppComponent("app0"))
    mq = MessageQueueService()
    kernel.register_component(mq)
    kernel.register_component(StorageService())
    kernel.register_component(CbufManager())
    kernel.grant_all_caps()
    booter = Booter(kernel)
    manager = RecoveryManager(kernel)
    manager.register_interface(compiled.ir)
    kernel.register_server_stub("mq", compiled.make_server_stub(mq))
    stub = compiled.make_client_stub("app0")
    kernel.register_stub("app0", "mq", stub)

    # 3. Producer/consumer workload with a fault in the middle.
    results = {}

    def producer(system, thread):
        qid = yield Invoke("mq", "mq_create", "app0")
        results["qid"] = qid
        for i in range(5):
            yield Invoke("mq", "mq_send", "app0", qid, 100 + i)

    def consumer(system, thread):
        while "qid" not in results:
            from repro.composite import Yield
            yield Yield()
        got = []
        for __ in range(5):
            msg = yield Invoke("mq", "mq_recv", "app0", results["qid"])
            got.append(msg)
        results["got"] = got

    kernel.create_thread("producer", prio=5, home="app0", body_factory=producer)
    kernel.create_thread("consumer", prio=5, home="app0", body_factory=consumer)

    swifi = SwifiController(kernel, seed=11)
    swifi.arm("mq", after_executions=4)

    kernel.run(max_steps=100_000)
    print(f"messages received    : {results.get('got')}")
    print(f"injections delivered : {swifi.delivered_count}")
    print(f"micro-reboots        : {booter.reboots}")
    assert results.get("got") == [100, 101, 102, 103, 104], results
    print("queue recovered transparently: OK")


if __name__ == "__main__":
    main()
