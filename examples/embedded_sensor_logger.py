#!/usr/bin/env python3
"""Embedded sensor-logging application surviving system-service faults.

The paper's motivation is dependable *embedded* systems: transient faults
in low-level services must not take down the control application.  This
example builds a periodic sensor pipeline on top of the simulated
COMPOSITE system —

* a **sampler** thread wakes on the timer service every period, reads a
  (synthetic) sensor, appends the sample to a RamFS log file, and
  triggers an alert event when the reading crosses a threshold;
* an **alert handler** thread (in a different component) waits on the
  global alert event and records alarms;

— then injects transient faults into the timer, filesystem, and event
services mid-flight and shows the pipeline's output is complete and
correct anyway.

Run:  python examples/embedded_sensor_logger.py
"""

from repro.composite.thread import Invoke, Yield
from repro.swifi import SwifiController
from repro.system import build_system

PERIOD = 8_000          # cycles between samples
N_SAMPLES = 24
THRESHOLD = 80

#: Synthetic sensor trace (deterministic; spikes cross the threshold).
READINGS = [20 + ((7 * i) % 60) + (55 if i % 9 == 4 else 0)
            for i in range(N_SAMPLES)]


def build_pipeline(system, results):
    def sampler(sys_, thread):
        tmid = yield Invoke("timer", "timer_alloc", "app0", PERIOD)
        log_fd = yield Invoke("ramfs", "tsplit", "app0", 1, "sensor.log")
        alert_evt = yield Invoke("event", "evt_split", "app0", 0, 5)
        results["alert_evt"] = alert_evt
        for index in range(N_SAMPLES):
            yield Invoke("timer", "timer_block", "app0", tmid)
            reading = READINGS[index]
            record = f"{index:03d}:{reading:03d};".encode("ascii")
            yield Invoke("ramfs", "twrite", "app0", log_fd, record)
            if reading > THRESHOLD:
                yield Invoke("event", "evt_trigger", "app0", alert_evt)
                results["alerts_raised"] = results.get("alerts_raised", 0) + 1
        results["done_sampling"] = True
        # Wake the handler one last time so it can observe shutdown.
        yield Invoke("event", "evt_trigger", "app0", alert_evt)

    def alert_handler(sys_, thread):
        while "alert_evt" not in results:
            yield Yield()
        evt = results["alert_evt"]
        while not results.get("done_sampling"):
            waited = yield Invoke("event", "evt_wait", "app1", evt)
            if waited == 0 and not results.get("done_sampling"):
                results["alarms"] = results.get("alarms", 0) + 1

    system.kernel.create_thread(
        "sampler", prio=2, home="app0", body_factory=sampler
    )
    system.kernel.create_thread(
        "alert-handler", prio=3, home="app1", body_factory=alert_handler
    )


def verify_log(system):
    """Read the log back and check every sample was durably recorded."""
    kernel = system.kernel
    thread = kernel.create_thread(
        "verifier", prio=1, home="app0", body_factory=lambda s, t: iter(())
    )
    stub = system.stub("app0", "ramfs") or None
    ramfs = kernel.component("ramfs")
    fd = (
        stub.invoke(kernel, thread, "tsplit", ("app0", 1, "sensor.log"))
        if stub
        else ramfs.tsplit(thread, "app0", 1, "sensor.log")
    )
    expected = b"".join(
        f"{i:03d}:{r:03d};".encode("ascii") for i, r in enumerate(READINGS)
    )
    if stub:
        data = stub.invoke(kernel, thread, "tread", ("app0", fd, len(expected)))
    else:
        data = ramfs.tread(thread, "app0", fd, len(expected))
    return data == expected, data


def main():
    system = build_system(ft_mode="superglue")
    swifi = SwifiController(system.kernel, seed=7)
    results = {}
    build_pipeline(system, results)

    # One transient fault into each service the pipeline depends on,
    # spread across the run.
    schedule = [("timer", 10), ("ramfs", 8), ("event", 2)]
    pending = iter(schedule)
    current = next(pending)
    swifi.arm(current[0], after_executions=current[1])

    def rearm(component, fault):
        nonlocal current
        current = next(pending, None)
        if current is not None:
            swifi.arm(current[0], after_executions=current[1])

    system.kernel.fault_observers.append(rearm)
    system.run(max_steps=2_000_000)

    ok, data = verify_log(system)
    expected_alerts = sum(1 for r in READINGS if r > THRESHOLD)
    print(f"samples logged    : {N_SAMPLES}")
    print(f"alerts raised     : {results.get('alerts_raised', 0)} "
          f"(expected {expected_alerts})")
    print(f"alarms handled    : {results.get('alarms', 0)}")
    print(f"faults delivered  : {swifi.delivered_count}")
    print(f"micro-reboots     : {system.booter.reboots}")
    print(f"log intact        : {ok}")
    assert ok, data
    assert results.get("alerts_raised", 0) == expected_alerts
    print("pipeline survived system-service faults: OK")


if __name__ == "__main__":
    main()
