"""Setup shim: lets `pip install -e . --no-build-isolation` work offline
(no `wheel` package available), falling back to setuptools' legacy
editable-install path.  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
