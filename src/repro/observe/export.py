"""JSONL trace artifacts: writing, reading, validating.

A trace file is a sequence of JSON lines of three types:

* ``{"type": "run", ...}`` — one per injection run: the run's identity
  (spec fingerprint + seed), its derived injection point, its outcome,
  and how many events follow;
* ``{"type": "event", "run_seed": ..., "seq": ..., "t": ..., "event":
  ..., "data": {...}}`` — the run's flight-recorder events, oldest
  first, stamped with the virtual clock; and
* ``{"type": "summary", ...}`` — one per campaign (per spec
  fingerprint): outcome tallies and the deterministically merged
  metrics registry.

Lines for one run are contiguous (header first), and runs appear in
seed-schedule order regardless of how many workers executed them — a
traced parallel campaign exports the byte-identical file a serial one
does.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.observe.events import (
    EventSchemaError,
    SCHEMA_VERSION,
    validate_event,
)

_RUN_REQUIRED = frozenset(
    {
        "type", "schema", "fingerprint", "run_seed", "service", "ft_mode",
        "injection_point", "horizon", "outcome", "steps", "events",
        "dropped_events",
    }
)
_EVENT_REQUIRED = frozenset({"type", "run_seed", "seq", "t", "event", "data"})
_SUMMARY_REQUIRED = frozenset(
    {
        "type", "schema", "fingerprint", "runs", "replayed", "outcomes",
        "metrics",
    }
)


def run_header(record: Dict[str, object]) -> Dict[str, object]:
    """The ``type: run`` line for one traced run record."""
    return {
        "type": "run",
        "schema": SCHEMA_VERSION,
        "fingerprint": record["fingerprint"],
        "run_seed": record["run_seed"],
        "service": record["service"],
        "ft_mode": record["ft_mode"],
        "fault_class": record.get("fault_class", "reg"),
        "injection_point": record["injection_point"],
        "horizon": record["horizon"],
        "outcome": record["outcome"],
        "steps": record["steps"],
        "events": len(record["events"]),
        "dropped_events": record.get("dropped_events", 0),
    }


def write_run(handle, record: Dict[str, object]) -> None:
    """Append one run (header + its events) to an open text handle."""
    handle.write(json.dumps(run_header(record)) + "\n")
    run_seed = record["run_seed"]
    for event in record["events"]:
        line = {
            "type": "event",
            "run_seed": run_seed,
            "seq": event["seq"],
            "t": event["t"],
            "event": event["event"],
            "data": event["data"],
        }
        handle.write(json.dumps(line) + "\n")


def write_summary(
    handle,
    fingerprint: str,
    runs: int,
    replayed: int,
    outcomes: Dict[str, int],
    metrics: Dict[str, object],
) -> None:
    """Append one campaign summary line."""
    handle.write(
        json.dumps(
            {
                "type": "summary",
                "schema": SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "runs": runs,
                "replayed": replayed,
                "outcomes": dict(sorted(outcomes.items())),
                "metrics": metrics,
            }
        )
        + "\n"
    )


# ---------------------------------------------------------------------------
# Validation and reading
# ---------------------------------------------------------------------------
def validate_line(obj: Dict[str, object]) -> None:
    """Validate one parsed trace line; raises :class:`EventSchemaError`."""
    if not isinstance(obj, dict):
        raise EventSchemaError(f"trace line is not an object: {obj!r}")
    kind = obj.get("type")
    if kind == "run":
        missing = _RUN_REQUIRED - set(obj)
        if missing:
            raise EventSchemaError(f"run line missing {sorted(missing)}")
        if obj["schema"] != SCHEMA_VERSION:
            raise EventSchemaError(
                f"unsupported trace schema {obj['schema']!r} "
                f"(expected {SCHEMA_VERSION})"
            )
    elif kind == "event":
        missing = _EVENT_REQUIRED - set(obj)
        if missing:
            raise EventSchemaError(f"event line missing {sorted(missing)}")
        if not isinstance(obj["seq"], int) or not isinstance(obj["t"], int):
            raise EventSchemaError("event seq/t must be integers")
        if obj["t"] < 0:
            raise EventSchemaError("event timestamp is negative")
        validate_event(obj["event"], obj["data"])
    elif kind == "summary":
        missing = _SUMMARY_REQUIRED - set(obj)
        if missing:
            raise EventSchemaError(f"summary line missing {sorted(missing)}")
        if obj["schema"] != SCHEMA_VERSION:
            raise EventSchemaError(
                f"unsupported trace schema {obj['schema']!r} "
                f"(expected {SCHEMA_VERSION})"
            )
    else:
        raise EventSchemaError(f"unknown trace line type {kind!r}")


def read_trace(path: str, validate: bool = True) -> Iterator[Dict[str, object]]:
    """Yield parsed lines of a trace file, optionally validating each.

    A truncated final line (campaign killed mid-write) is tolerated and
    skipped, mirroring the campaign journal's behavior; any other
    malformed content raises.
    """
    with open(path, "r", encoding="utf-8") as handle:
        pending = None
        for raw in handle:
            if pending is not None:
                raise EventSchemaError("unparseable non-final trace line")
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                obj = json.loads(stripped)
            except ValueError:
                pending = stripped  # only acceptable as the final line
                continue
            if validate:
                validate_line(obj)
            yield obj


def load_runs(
    path: str, validate: bool = True
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Group a trace file into per-run records plus campaign summaries.

    Returns ``(runs, summaries)`` where each run dict is its header line
    with an ``"events"`` list of the run's event lines attached (sorted
    by sequence number, though files are written in order already).
    """
    runs: List[Dict[str, object]] = []
    summaries: List[Dict[str, object]] = []
    for obj in read_trace(path, validate=validate):
        if obj["type"] == "run":
            run = dict(obj)
            run["events"] = []
            runs.append(run)
        elif obj["type"] == "event":
            run = _run_for_event(runs, obj)
            if run is not None:
                run["events"].append(obj)
        else:
            summaries.append(obj)
    for run in runs:
        run["events"].sort(key=lambda e: e["seq"])
    return runs, summaries


def _run_for_event(runs, event) -> Optional[Dict[str, object]]:
    """Find the run an event line belongs to (most recent header wins)."""
    seed = event["run_seed"]
    for run in reversed(runs):
        if run["run_seed"] == seed:
            return run
    return None
