"""Render flight-recorder traces for humans (``python -m repro trace``).

Two views over an exported JSONL artifact:

* the **campaign roll-up** — per spec fingerprint: run/outcome tallies
  and the merged metrics registry (counter totals, histogram
  mean/min/max); and
* the **per-run recovery timeline** — one line per event, stamped with
  the virtual clock in cycles and microseconds, telling the story the
  paper's Table II only summarizes: which flip activated, what
  detected it, which micro-reboot and replays followed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.composite.machine import REG_NAMES
from repro.composite.scheduler import cycles_to_us


def _reg_name(index) -> str:
    try:
        return REG_NAMES[index]
    except (IndexError, TypeError):
        return f"r{index}"


def _describe(event: Dict[str, object]) -> str:
    """One human line per event type."""
    name = event["event"]
    d = event["data"]
    if name == "invoke":
        return f"invoke        {d['client']} -> {d['server']}.{d['fn']} (tid {d['tid']})"
    if name == "invoke_end":
        return (
            f"invoke_end    {d['server']}.{d['fn']} status={d['status']} "
            f"({d['cycles']} cyc)"
        )
    if name == "upcall":
        return f"upcall        {d['component']}.{d['fn']} (tid {d['tid']})"
    if name == "fault_vectored":
        latency = d.get("detection_latency")
        suffix = (
            f" [detected {latency} cyc after injection]"
            if latency is not None
            else ""
        )
        return f"FAULT         {d['component']}: {d['kind']} — {d['message']}{suffix}"
    if name == "micro_reboot_begin":
        return f"reboot-begin  {d['component']} (cause: {d['kind']})"
    if name == "micro_reboot_end":
        return (
            f"reboot-end    {d['component']} -> epoch {d['epoch']} "
            f"({d['cost_cycles']} cyc image restore)"
        )
    if name == "t0_wake":
        return f"T0 wake       {d['component']}: {d['woken']} blocked thread(s) re-issued"
    if name == "fault_update":
        return f"fault-update  client resynced with {d['server']} epoch {d['epoch']}"
    if name == "replay":
        return f"replay        {d['server']}.{d['fn']} (sid {d['sid']})"
    if name == "descriptor_recovery":
        return (
            f"recovered     descriptor {d['cdesc']} on {d['server']} "
            f"(sid {d['sid']}, {d['cycles']} cyc)"
        )
    if name == "swifi_arm":
        fault_class = d.get("fault_class", "reg")
        if fault_class == "mem":
            return (
                f"swifi-arm     {d['component']}: memory bit flip after "
                f"{d['after_executions']} trace execution(s)"
            )
        if fault_class == "idl":
            return (
                f"swifi-arm     {d['component']}: IDL-boundary fuzz after "
                f"{d['after_executions']} stub invocation(s)"
            )
        burst = (
            f" (burst k={d['burst_k']}, window {d['burst_window']} cyc)"
            if fault_class == "burst"
            else ""
        )
        return (
            f"swifi-arm     {d['component']}: flip {_reg_name(d['reg'])} "
            f"bit {d['bit']} after {d['after_executions']} trace "
            f"execution(s){burst}"
        )
    if name == "swifi_inject":
        return (
            f"SWIFI INJECT  {d['component']}: flipped {_reg_name(d['reg'])} "
            f"bit {d['bit']} at op {d['op_index']}/{d['trace_len']} "
            f"in trace '{d['label']}'"
        )
    if name == "swifi_mem_inject":
        hot = "hot (dirty)" if d["page_dirty"] else "cold"
        return (
            f"SWIFI INJECT  {d['component']}: flipped bit {d['bit']} of "
            f"word {d['addr']:#x} ({hot} page {d['page']})"
        )
    if name == "swifi_idl_inject":
        where = (
            f"arg {d['index']}" if d["target"] == "arg" else "return value"
        )
        return (
            f"SWIFI INJECT  {d['server']}.{d['fn']}: flipped bit {d['bit']} "
            f"of {where} at the IDL boundary"
        )
    if name == "request_start":
        return f"request       #{d['rid']} queued (depth {d['queued']})"
    if name == "request_done":
        return (
            f"response      #{d['rid']} status={d['status']} "
            f"({d['latency_cycles']} cyc latency)"
        )
    if name == "throughput_dip":
        return (
            f"DIP           throughput stalled {d['gap_cycles']} cyc "
            f"(served={d['served']})"
        )
    if name == "scrub_detection":
        return f"scrub         {d['component']}: latent corruption at {d['addr']:#x}"
    if name == "trace_exec":
        tier = "fast" if d["fast"] else "slow"
        flag = " +injection" if d["injected"] else ""
        return (
            f"trace-exec    {d['component']}/{d['label']} [{tier}{flag}] "
            f"({d['cycles']} cyc)"
        )
    if name == "trace_build":
        return f"trace-build   {d['component']}/{d['label']} ({d['ops']} ops)"
    if name == "fastpath_compile":
        return f"fast-compile  {d['component']}/{d['label']} ({d['ops']} ops)"
    if name == "super_trace_record":
        return (
            f"super-trace   sealed {d['units']} units "
            f"({d['replayable']} replayable) for {d['service']}"
        )
    if name == "super_trace_tail_record":
        return (
            f"super-trace   tail sealed at unit {d['unit_index']}: "
            f"{d['units']} units ({d['replayable']} replayable)"
        )
    if name == "super_trace_tail_replay":
        return (
            f"super-trace   tail replay at unit {d['unit_index']} "
            f"({d['units']} units)"
        )
    if name == "node_kill":
        return f"NODE KILL     {d['node']} lost at unit {d['unit']} (correlated failure)"
    if name == "unit_failover":
        return (
            f"failover      unit {d['unit']}: {d['from_node']} -> "
            f"{d['to_node']}"
        )
    if name == "node_evict":
        return f"evict         {d['node']} at unit {d['unit']} (reason: {d['reason']})"
    if name == "node_reboot":
        return (
            f"node-reboot   {d['node']} -> epoch {d['epoch']} "
            f"({d['cost_cycles']} cyc whole-node restore)"
        )
    if name == "node_rejoin":
        return f"rejoin        {d['node']} back in rotation at unit {d['unit']}"
    if name == "unit_done":
        return (
            f"unit-done     unit {d['unit']} on {d['node']} "
            f"outcome={d['outcome']} ({d['cycles']} cyc)"
        )
    return f"{name}  {d}"


def render_run_timeline(
    run: Dict[str, object], include: Optional[set] = None
) -> str:
    """The per-run timeline, one stamped line per event."""
    fault_class = run.get("fault_class", "reg")
    class_tag = f" fault_class={fault_class}" if fault_class != "reg" else ""
    lines = [
        (
            f"run seed={run['run_seed']} service={run['service']} "
            f"ft_mode={run['ft_mode']}{class_tag} outcome={run['outcome']}"
        ),
        (
            f"  injection point: trace execution #{run['injection_point']} "
            f"of horizon {run['horizon']}; {run['steps']} scheduler steps"
        ),
    ]
    if run.get("dropped_events"):
        lines.append(
            f"  (ring buffer wrapped: {run['dropped_events']} oldest "
            "events dropped)"
        )
    for event in run["events"]:
        if include is not None and event["event"] not in include:
            continue
        t = event["t"]
        lines.append(
            f"  [{t:>12,} cyc | {cycles_to_us(t):>12,.2f} us] "
            f"{_describe(event)}"
        )
    return "\n".join(lines)


def render_rollup(
    runs: List[Dict[str, object]], summaries: List[Dict[str, object]]
) -> str:
    """Campaign roll-up: per-fingerprint outcomes + merged metrics."""
    lines: List[str] = []
    traced = {}
    for run in runs:
        traced.setdefault(run["fingerprint"], []).append(run)
    if summaries:
        for summary in summaries:
            lines.append(f"campaign {summary['fingerprint']}")
            lines.append(
                f"  runs: {summary['runs']} "
                f"(replayed from journal: {summary['replayed']})"
            )
            for outcome, count in summary["outcomes"].items():
                lines.append(f"    {outcome:<28} {count}")
            lines.extend(_render_metrics(summary["metrics"]))
            lines.append("")
    else:
        for fingerprint, group in traced.items():
            lines.append(f"campaign {fingerprint} (no summary line)")
            tally: Dict[str, int] = {}
            for run in group:
                tally[run["outcome"]] = tally.get(run["outcome"], 0) + 1
            for outcome, count in sorted(tally.items()):
                lines.append(f"    {outcome:<28} {count}")
            lines.append("")
    return "\n".join(lines).rstrip()


def _render_metrics(metrics: Dict[str, object]) -> List[str]:
    lines = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():
            lines.append(f"    {name:<28} {value}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("  histograms (cycles):")
        for name, h in histograms.items():
            if not h["count"]:
                continue
            mean = h["total"] / h["count"]
            lines.append(
                f"    {name:<28} n={h['count']} mean={mean:,.0f} "
                f"min={h['min']:,} max={h['max']:,} "
                f"(mean {cycles_to_us(mean):,.2f} us)"
            )
    return lines


#: The events that tell the recovery story; used by ``repro trace`` to
#: render a focused timeline (``--full`` shows everything, including
#: every trace execution).
RECOVERY_EVENTS = {
    "swifi_arm",
    "swifi_inject",
    "swifi_mem_inject",
    "swifi_idl_inject",
    "fault_vectored",
    "micro_reboot_begin",
    "micro_reboot_end",
    "t0_wake",
    "fault_update",
    "replay",
    "descriptor_recovery",
    "scrub_detection",
    "upcall",
    "throughput_dip",
    "node_kill",
    "unit_failover",
    "node_evict",
    "node_reboot",
    "node_rejoin",
}


def pick_default_run(runs: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The most interesting run: first with a full recovery story.

    Prefers a run whose events include an injection *and* a micro-reboot
    (the injection->detection->reboot->replay arc); falls back to any
    run with an injection, then to the first run.
    """
    def has(run, name):
        return any(e["event"] == name for e in run["events"])

    for run in runs:
        if has(run, "swifi_inject") and has(run, "micro_reboot_end") and has(run, "replay"):
            return run
    for run in runs:
        if has(run, "swifi_inject") and has(run, "micro_reboot_end"):
            return run
    for run in runs:
        if has(run, "swifi_inject"):
            return run
    return runs[0] if runs else None
