"""Typed event vocabulary of the flight recorder.

Every event the recorder can carry is declared here, with the set of
fields its emitter must provide.  The registry is the single source of
truth for three consumers:

* the emitters sprinkled through the kernel, recovery, and SWIFI layers
  (they fail fast in tests if they emit an undeclared shape);
* the JSONL exporter/validator (:mod:`repro.observe.export`), which
  checks every line of a trace artifact against this schema; and
* the timeline renderer (:mod:`repro.observe.timeline`), whose
  per-event formatters key off these names.

Events are deliberately flat — one name, one dict of JSON-scalar
fields — so a trace line round-trips through JSON without any custom
decoding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Schema version stamped into exported trace artifacts.  Bump on any
#: incompatible change to the event vocabulary or the line format.
#: v2: histogram serializations carry a ``clamped`` count (negative
#: observations clamped to 0) and may carry ``sub_bits`` (log-linear
#: sub-bucketed histograms).
SCHEMA_VERSION = 2

#: event name -> required field names.  Emitters may add *no* extra
#: fields beyond ``OPTIONAL_FIELDS``; validation is exact so schema
#: drift is caught by the CI trace-smoke step, not by downstream tools.
EVENT_FIELDS: Dict[str, FrozenSet[str]] = {
    # -- invocation path ------------------------------------------------
    "invoke": frozenset({"tid", "client", "server", "fn"}),
    "invoke_end": frozenset({"tid", "server", "fn", "status", "cycles"}),
    "upcall": frozenset({"tid", "component", "fn"}),
    # -- fault detection and micro-reboot -------------------------------
    "fault_vectored": frozenset({"component", "kind", "message"}),
    "micro_reboot_begin": frozenset({"component", "kind"}),
    "micro_reboot_end": frozenset({"component", "epoch", "cost_cycles"}),
    "t0_wake": frozenset({"component", "woken"}),
    # -- interface-driven recovery (stub layer) -------------------------
    "fault_update": frozenset({"server", "epoch"}),
    "replay": frozenset({"server", "fn", "sid"}),
    "descriptor_recovery": frozenset({"server", "cdesc", "sid", "cycles"}),
    # -- SWIFI ----------------------------------------------------------
    "swifi_arm": frozenset({"component", "reg", "bit", "after_executions"}),
    "swifi_inject": frozenset(
        {"component", "reg", "bit", "op_index", "trace_len", "label"}
    ),
    "swifi_mem_inject": frozenset(
        {"component", "addr", "bit", "page", "page_dirty"}
    ),
    "swifi_idl_inject": frozenset({"server", "fn", "target", "index", "bit"}),
    # -- web-server request path ----------------------------------------
    "request_start": frozenset({"rid", "queued"}),
    "request_done": frozenset({"rid", "status", "latency_cycles"}),
    "throughput_dip": frozenset({"gap_cycles", "served"}),
    # -- latent-fault monitor -------------------------------------------
    "scrub_detection": frozenset({"component", "addr"}),
    # -- trace execution engine -----------------------------------------
    "trace_exec": frozenset({"component", "label", "fast", "injected", "cycles"}),
    "trace_build": frozenset({"component", "label", "ops"}),
    "fastpath_compile": frozenset({"component", "label", "ops"}),
    # Tier-3 super-trace recording sealed (build-time only, once per
    # run spec — never emitted per replayed unit).
    "super_trace_record": frozenset({"units", "replayable", "service"}),
    # Divergence-tail cache: a post-injection tail sealed for reuse, or
    # a cached tail engaged for replay (both at most once per run).
    "super_trace_tail_record": frozenset({"unit_index", "units", "replayable"}),
    "super_trace_tail_replay": frozenset({"unit_index", "units"}),
    # -- cluster supervision (node-level lifecycle) ----------------------
    "node_kill": frozenset({"node", "unit"}),
    "unit_failover": frozenset({"unit", "from_node", "to_node"}),
    "node_evict": frozenset({"node", "unit", "reason"}),
    "node_reboot": frozenset({"node", "unit", "cost_cycles", "epoch"}),
    "node_rejoin": frozenset({"node", "unit"}),
    "unit_done": frozenset({"node", "unit", "outcome", "cycles"}),
}

#: Per-event optional fields (present only when known at emit time).
OPTIONAL_FIELDS: Dict[str, FrozenSet[str]] = {
    "fault_vectored": frozenset({"detection_latency"}),
    # Non-register fault classes annotate the arm event; the plain reg
    # class keeps its original shape.
    "swifi_arm": frozenset({"fault_class", "burst_k", "burst_window"}),
}

#: Invocation-span completion statuses (``invoke_end.status``).
INVOKE_STATUSES = ("ok", "blocked", "fault", "crash")


class EventSchemaError(ValueError):
    """An event (or exported trace line) does not match the schema."""


def validate_event(name: str, fields: Dict[str, object]) -> None:
    """Check one event against the registry; raises :class:`EventSchemaError`.

    Field *values* must be JSON scalars (str/int/float/bool/None): the
    recorder stores them verbatim and the exporter dumps them as-is.
    """
    required = EVENT_FIELDS.get(name)
    if required is None:
        raise EventSchemaError(f"unknown event type {name!r}")
    present = set(fields)
    missing = required - present
    if missing:
        raise EventSchemaError(
            f"event {name!r} missing fields {sorted(missing)}"
        )
    extra = present - required - OPTIONAL_FIELDS.get(name, frozenset())
    if extra:
        raise EventSchemaError(
            f"event {name!r} carries undeclared fields {sorted(extra)}"
        )
    for key, value in fields.items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise EventSchemaError(
                f"event {name!r} field {key!r} is not a JSON scalar: "
                f"{type(value).__name__}"
            )
