"""Flight recorder: structured event tracing + metrics (observability).

The recorder answers the question Table II's aggregates cannot: *what
happened in this one run* — which flip activated, what detected it,
which descriptors were replayed, how long recovery took.  See
``docs``/README "Flight recorder" for the exported JSONL format and the
``python -m repro trace`` renderer.

Enabling
--------
Tracing is **off by default** and costs ~nothing when off: every kernel
then shares the process-wide :data:`~repro.observe.recorder.NULL_RECORDER`
singleton, and all emit sites guard on ``recorder.enabled`` before
building any event.  Turn it on with either

* the environment: ``REPRO_TRACE=1`` (any new kernel gets a live
  :class:`~repro.observe.recorder.FlightRecorder` bound to its virtual
  clock; ``REPRO_TRACE_CAPACITY`` overrides the ring size); or
* the API: :func:`tracing` as a context manager, used by the traced
  campaign path (``table2 --trace``/``run_full_campaign(trace=)``) so
  worker processes trace their runs regardless of the environment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

from repro.observe.events import (  # noqa: F401 (re-exported)
    EVENT_FIELDS,
    EventSchemaError,
    SCHEMA_VERSION,
    validate_event,
)
from repro.observe.metrics import (  # noqa: F401
    MetricsRegistry,
    canonical_metrics,
    merge_metrics,
)
from repro.observe.recorder import (  # noqa: F401
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    scalar,
)

#: Programmatic override of the environment gate; ``None`` defers to
#: ``REPRO_TRACE``.
_forced: Optional[bool] = None


def tracing_enabled() -> bool:
    """Is tracing on for kernels built right now?"""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_TRACE", "0") not in ("", "0", "false", "no")


def set_tracing(on: Optional[bool]) -> None:
    """Force tracing on/off (``None`` restores the environment gate)."""
    global _forced
    _forced = on


@contextmanager
def tracing(on: bool = True):
    """Scope tracing on (or off) for the duration of a ``with`` block."""
    global _forced
    previous = _forced
    _forced = on
    try:
        yield
    finally:
        _forced = previous


def ring_capacity() -> int:
    """Ring size for new recorders (``REPRO_TRACE_CAPACITY`` override)."""
    raw = os.environ.get("REPRO_TRACE_CAPACITY")
    if not raw:
        return DEFAULT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


def recorder_for(
    clock=None, capacity: Optional[int] = None
) -> Union[FlightRecorder, NullRecorder]:
    """The recorder a new kernel should carry.

    Returns the shared no-op singleton when tracing is disabled — no
    allocation at all — or a fresh :class:`FlightRecorder` bound to the
    kernel's virtual clock when enabled.
    """
    if not tracing_enabled():
        return NULL_RECORDER
    return FlightRecorder(clock=clock, capacity=capacity or ring_capacity())
