"""The flight recorder: a bounded ring-buffer journal of typed events.

Two implementations share one interface:

* :class:`NullRecorder` — the disabled-mode recorder.  A single shared
  instance (:data:`NULL_RECORDER`) is handed to every kernel when
  tracing is off: no ring is allocated, ``emit`` is a constant no-op,
  and hot paths guard on the class attribute ``enabled`` (a plain
  attribute load + truth test) so they never even build the event's
  keyword arguments.
* :class:`FlightRecorder` — the live recorder.  Events append into a
  ``deque(maxlen=capacity)``; when the ring is full the oldest events
  fall off (``dropped`` counts them) so a runaway workload can never
  grow memory without bound.  Each event is stamped with a
  monotonically increasing sequence number and the *virtual* clock of
  the kernel it observes — wall-clock time never enters a trace, which
  keeps serial and parallel campaign traces bit-identical.

The live recorder also owns a :class:`~repro.observe.metrics.MetricsRegistry`
so emitters can feed distributions (recovery cycles, detection latency)
without a second plumbing path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.observe.metrics import MetricsRegistry

#: Default ring capacity.  A single SWIFI run emits a few hundred
#: events; 4096 keeps whole runs (and generous webserver windows) while
#: bounding worst-case memory at well under a megabyte.
DEFAULT_CAPACITY = 4096


def scalar(value) -> object:
    """Coerce an arbitrary emitter value to a JSON scalar.

    Descriptor ids are usually ints but may be paths (str) or opaque
    keys; anything non-scalar is stringified so events always export.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


class NullRecorder:
    """Disabled-mode recorder: every operation is a no-op.

    Shared as the process-wide :data:`NULL_RECORDER` singleton — kernels
    built with tracing off allocate nothing.
    """

    __slots__ = ()

    enabled = False
    dropped = 0
    capacity = 0

    #: Shared inert registry: emitters that (incorrectly) skip the
    #: ``enabled`` guard still must not crash, but nothing is retained.
    metrics = MetricsRegistry()

    def emit(self, event: str, **fields) -> None:
        return None

    def events(self) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The process-wide disabled recorder.
NULL_RECORDER = NullRecorder()


class FlightRecorder:
    """Live bounded ring-buffer recorder, stamped by a virtual clock."""

    __slots__ = ("clock", "capacity", "metrics", "dropped", "_ring", "_seq")

    enabled = True

    def __init__(self, clock=None, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self.metrics = MetricsRegistry()
        self.dropped = 0
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0

    def bind_clock(self, clock) -> None:
        """Attach the virtual clock events are stamped with."""
        self.clock = clock

    def emit(self, event: str, **fields) -> None:
        """Record one event, stamped ``(seq, virtual-clock)``.

        Field values must be JSON scalars; emitters coerce descriptor
        ids through :func:`scalar`.  Validation against the event
        registry is deferred to export time (and to the test suite) so
        the emit path stays a few dict operations.
        """
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        now = self.clock.now if self.clock is not None else 0
        ring.append((self._seq, now, event, fields))
        self._seq += 1

    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, object]]:
        """The retained events, oldest first, as flat dicts."""
        return [
            {"seq": seq, "t": t, "event": event, "data": dict(fields)}
            for seq, t, event, fields in self._ring
        ]

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0
        # The sequence counter keeps running: post-clear events remain
        # globally ordered against anything already exported.

    def __len__(self) -> int:
        return len(self._ring)
