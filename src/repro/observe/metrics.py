"""Counters and histograms for the flight recorder.

The registry is deliberately integer-only: SWIFI campaigns merge one
serialized registry per worker into a campaign aggregate, and integer
addition is associative and commutative, so the merged result is
bit-identical regardless of worker count, chunking, or completion
order.  (Floating-point sums would not be.)

Histograms use power-of-two buckets (bucket *i* holds values whose bit
length is *i*, i.e. ``[2**(i-1), 2**i)``), which is plenty of
resolution for cycle-count distributions — recovery-cycle and
detection-latency values span several orders of magnitude — while
keeping the serialized form small and the merge a plain per-bucket
add.
"""

from __future__ import annotations

from typing import Dict


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Power-of-two-bucket distribution of non-negative integers."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None  # type: ignore[assignment]
        self.max = None  # type: ignore[assignment]
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            # JSON object keys are strings; sort for a canonical form.
            "buckets": {
                str(k): self.buckets[k] for k in sorted(self.buckets)
            },
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical (sorted-key) serialized form, safe to JSON-dump."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }


def merge_metrics(
    into: Dict[str, object], other: Dict[str, object]
) -> Dict[str, object]:
    """Merge one serialized registry into another, in place.

    Both arguments are ``MetricsRegistry.to_dict()`` shapes.  All the
    combining operations are integer adds (plus min/max), so merging is
    order-independent: serial and parallel campaigns aggregate to the
    same dict.  Returns ``into``.
    """
    counters = into.setdefault("counters", {})
    for name, value in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    histograms = into.setdefault("histograms", {})
    for name, h in other.get("histograms", {}).items():
        merged = histograms.get(name)
        if merged is None:
            histograms[name] = {
                "count": h["count"],
                "total": h["total"],
                "min": h["min"],
                "max": h["max"],
                "buckets": dict(h["buckets"]),
            }
            continue
        merged["count"] += h["count"]
        merged["total"] += h["total"]
        for bound in ("min", "max"):
            ours, theirs = merged[bound], h[bound]
            if ours is None:
                merged[bound] = theirs
            elif theirs is not None:
                merged[bound] = (
                    min(ours, theirs) if bound == "min" else max(ours, theirs)
                )
        buckets = merged["buckets"]
        for key, count in h["buckets"].items():
            buckets[key] = buckets.get(key, 0) + count
    return into


def canonical_metrics(metrics: Dict[str, object]) -> Dict[str, object]:
    """Sort all keys so two equal registries serialize identically."""
    return {
        "counters": dict(sorted(metrics.get("counters", {}).items())),
        "histograms": {
            name: {
                "count": h["count"],
                "total": h["total"],
                "min": h["min"],
                "max": h["max"],
                "buckets": dict(
                    sorted(h["buckets"].items(), key=lambda kv: int(kv[0]))
                ),
            }
            for name, h in sorted(metrics.get("histograms", {}).items())
        },
    }
