"""Counters and histograms for the flight recorder.

The registry is deliberately integer-only: SWIFI campaigns merge one
serialized registry per worker into a campaign aggregate, and integer
addition is associative and commutative, so the merged result is
bit-identical regardless of worker count, chunking, or completion
order.  (Floating-point sums would not be.)

Two histogram shapes share that merge discipline:

* :class:`Histogram` uses power-of-two buckets (bucket *i* holds values
  whose bit length is *i*, i.e. ``[2**(i-1), 2**i)``) — plenty of
  resolution for cycle-count distributions whose values span several
  orders of magnitude, and a tiny serialized form.
* :class:`LogLinearHistogram` sub-divides every power-of-two decade
  into ``2**SUB_BUCKET_BITS`` linear sub-buckets (HDR-histogram style),
  bounding the relative quantile error at ``2**-SUB_BUCKET_BITS``
  (~3%) instead of a full factor of two.  Tail-latency SLO reporting
  (p99/p999 of open-loop request latencies) needs that resolution: a
  power-of-two bucket straddling the SLO deadline cannot tell a
  just-met from a badly-missed deadline.

Both serialize to the same dict shape (the log-linear form adds a
``sub_bits`` field) and merge with plain per-bucket integer adds, so
merging stays order-independent across either shape.
"""

from __future__ import annotations

import os
from typing import Dict

#: Linear sub-buckets per power-of-two decade in
#: :class:`LogLinearHistogram`, as a bit count: 2**5 = 32 sub-buckets,
#: bounding relative error at 1/32 ~ 3%.
SUB_BUCKET_BITS = 5


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Power-of-two-bucket distribution of non-negative integers."""

    __slots__ = ("count", "total", "min", "max", "buckets", "clamped")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None  # type: ignore[assignment]
        self.max = None  # type: ignore[assignment]
        self.buckets: Dict[int, int] = {}
        #: Negative observations clamped to 0.  A virtual-clock
        #: regression producing negative latencies used to masquerade as
        #: a burst of 0-cycle requests; the clamp count makes it visible
        #: (and mergeable like every other field).
        self.clamped = 0

    def _index(self, value: int) -> int:
        return value.bit_length()

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            if os.environ.get("REPRO_POOL_DEBUG") == "1":
                raise AssertionError(
                    f"histogram observed negative value {value}: virtual "
                    "time ran backwards"
                )
            self.clamped += 1
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = self._index(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "clamped": self.clamped,
            # JSON object keys are strings; sort for a canonical form.
            "buckets": {
                str(k): self.buckets[k] for k in sorted(self.buckets)
            },
        }


class LogLinearHistogram(Histogram):
    """Sub-bucketed power-of-two distribution (HDR-histogram style).

    Values below ``2**sub_bits`` are recorded exactly (index == value).
    Larger values land in the sub-bucket addressed by their top
    ``sub_bits + 1`` bits: for ``2**e <= v < 2**(e+1)`` the decade is
    split into ``2**sub_bits`` linear slices of width ``2**(e -
    sub_bits)``.  Indices are contiguous across the exact/log-linear
    boundary, merges stay per-bucket integer adds, and
    :func:`bucket_bounds` inverts an index back to its value range for
    quantile queries.
    """

    __slots__ = ()

    sub_bits = SUB_BUCKET_BITS

    def _index(self, value: int) -> int:
        sub_bits = self.sub_bits
        if value < (1 << sub_bits):
            return value
        exp = value.bit_length() - 1
        shift = exp - sub_bits
        mantissa = (value >> shift) & ((1 << sub_bits) - 1)
        return ((exp - sub_bits + 1) << sub_bits) + mantissa

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["sub_bits"] = self.sub_bits
        return data


def bucket_bounds(index: int, sub_bits: int) -> tuple:
    """``(lower, upper)`` inclusive value range of a log-linear bucket."""
    if index < (1 << sub_bits):
        return index, index
    block = index >> sub_bits
    mantissa = index & ((1 << sub_bits) - 1)
    shift = block - 1
    lower = ((1 << sub_bits) + mantissa) << shift
    return lower, lower + (1 << shift) - 1


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def loglinear(self, name: str) -> LogLinearHistogram:
        """A log-linear histogram under ``name`` (created on first use).

        Shares the histogram namespace: a name is either power-of-two or
        log-linear for the registry's lifetime, never both.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LogLinearHistogram()
        elif not isinstance(histogram, LogLinearHistogram):
            raise TypeError(
                f"histogram {name!r} already exists with power-of-two "
                "buckets"
            )
        return histogram

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical (sorted-key) serialized form, safe to JSON-dump."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }


def merge_metrics(
    into: Dict[str, object], other: Dict[str, object]
) -> Dict[str, object]:
    """Merge one serialized registry into another, in place.

    Both arguments are ``MetricsRegistry.to_dict()`` shapes.  All the
    combining operations are integer adds (plus min/max), so merging is
    order-independent: serial and parallel campaigns aggregate to the
    same dict.  Power-of-two and log-linear histograms of the same name
    must agree on bucketing (``sub_bits``) — their bucket indices mean
    different things, so a mixed merge is an error, not a silent
    corruption.  Returns ``into``.
    """
    counters = into.setdefault("counters", {})
    for name, value in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    histograms = into.setdefault("histograms", {})
    for name, h in other.get("histograms", {}).items():
        merged = histograms.get(name)
        if merged is None:
            histograms[name] = {
                "count": h["count"],
                "total": h["total"],
                "min": h["min"],
                "max": h["max"],
                "clamped": h.get("clamped", 0),
                **(
                    {"sub_bits": h["sub_bits"]} if "sub_bits" in h else {}
                ),
                "buckets": dict(h["buckets"]),
            }
            continue
        if merged.get("sub_bits") != h.get("sub_bits"):
            raise ValueError(
                f"histogram {name!r}: cannot merge sub_bits="
                f"{h.get('sub_bits')} into sub_bits={merged.get('sub_bits')}"
            )
        merged["count"] += h["count"]
        merged["total"] += h["total"]
        merged["clamped"] = merged.get("clamped", 0) + h.get("clamped", 0)
        for bound in ("min", "max"):
            ours, theirs = merged[bound], h[bound]
            if ours is None:
                merged[bound] = theirs
            elif theirs is not None:
                merged[bound] = (
                    min(ours, theirs) if bound == "min" else max(ours, theirs)
                )
        buckets = merged["buckets"]
        for key, count in h["buckets"].items():
            buckets[key] = buckets.get(key, 0) + count
    return into


def canonical_metrics(metrics: Dict[str, object]) -> Dict[str, object]:
    """Sort all keys so two equal registries serialize identically."""
    return {
        "counters": dict(sorted(metrics.get("counters", {}).items())),
        "histograms": {
            name: {
                "count": h["count"],
                "total": h["total"],
                "min": h["min"],
                "max": h["max"],
                "clamped": h.get("clamped", 0),
                **(
                    {"sub_bits": h["sub_bits"]} if "sub_bits" in h else {}
                ),
                "buckets": dict(
                    sorted(h["buckets"].items(), key=lambda kv: int(kv[0]))
                ),
            }
            for name, h in sorted(metrics.get("histograms", {}).items())
        },
    }
