"""SuperGlue (DSN 2016) reproduction.

IDL-based, system-level fault tolerance for a component-based OS, built on
a simulated COMPOSITE/C^3 substrate.  Start with
:func:`repro.system.build_system`; see README.md for the tour and
DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
