"""Application-level components of the componentized web server.

The paper's web server is decomposed into many separate components
(Section II-B mentions a componentized web-server of over 20 components).
We model the request path's own components — an HTTP parser and a
connection manager — as real components reached by kernel invocations, on
top of the six system services the requests exercise.  They are
application-level, so they are not fault-injection targets (SuperGlue
does not target application faults, Section II-E).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.composite.component import Component, export
from repro.webserver.http import HttpRequest, parse_request

#: Parse cost: fixed overhead plus per-16-bytes scanning.
PARSE_BASE_CYCLES = 700
PARSE_BYTE_SHIFT = 4

#: Connection-table bookkeeping cost per call.
CONN_OP_CYCLES = 350


class HttpParserComponent(Component):
    """Stateless HTTP parsing as a service to the connection manager."""

    def __init__(self, name: str = "httpparse"):
        super().__init__(name)
        self.parsed = 0
        self.rejected = 0

    def reinit(self) -> None:
        self.parsed = 0
        self.rejected = 0

    @export
    def http_parse(self, thread, raw: bytes) -> Optional[HttpRequest]:
        self.kernel.charge(
            thread, PARSE_BASE_CYCLES + (len(raw) >> PARSE_BYTE_SHIFT)
        )
        request = parse_request(raw)
        if request is None:
            self.rejected += 1
        else:
            self.parsed += 1
        return request


class ConnectionManagerComponent(Component):
    """Tracks live connections and per-path statistics."""

    def __init__(self, name: str = "connmgr"):
        super().__init__(name)
        self.active: Dict[int, str] = {}
        self.stats: Dict[str, int] = {}
        self._next_id = 1

    def reinit(self) -> None:
        self.active = {}
        self.stats = {}
        self._next_id = 1

    @export
    def conn_open(self, thread, peer: str) -> int:
        self.kernel.charge(thread, CONN_OP_CYCLES)
        conn_id = self._next_id
        self._next_id += 1
        self.active[conn_id] = peer
        return conn_id

    @export
    def conn_note(self, thread, conn_id: int, path: str) -> int:
        self.kernel.charge(thread, CONN_OP_CYCLES)
        if conn_id not in self.active:
            return -1
        self.stats[path] = self.stats.get(path, 0) + 1
        return 0

    @export
    def conn_close(self, thread, conn_id: int) -> int:
        self.kernel.charge(thread, CONN_OP_CYCLES)
        if self.active.pop(conn_id, None) is None:
            return -1
        return 0

    @export
    def conn_count(self, thread) -> int:
        self.kernel.charge(thread, CONN_OP_CYCLES)
        return len(self.active)
