"""Apache/Linux baseline stand-in (Fig. 7's leftmost bar).

The paper compares against Apache 2.2.14 on Linux 3.2.6 on the same
hardware — a monolithic-kernel server we cannot run inside the simulator.
Per the substitution rules, we model it analytically: a single pipeline
with a fixed per-request cost plus seeded jitter.  The default cost is
calibrated against the simulated COMPOSITE server's nominal per-request
cost so the Apache/COMPOSITE ratio matches the paper's measurement
(~17600 vs ~16200 requests/second: Apache is ~8.6% faster — COMPOSITE
pays for its fine-grained componentization with extra IPC).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.composite.scheduler import CYCLES_PER_US

#: Nominal virtual cycles per request of the simulated COMPOSITE server
#: without fault tolerance (measured; see benchmarks/bench_fig7).
NOMINAL_COMPOSITE_REQUEST_CYCLES = 11_600

#: Paper-measured throughput ratio Apache : COMPOSITE (~17600 : ~16200).
APACHE_SPEEDUP = 17_600 / 16_200


@dataclass
class ApacheModel:
    """Analytic throughput model of the Apache baseline."""

    per_request_cycles: float = NOMINAL_COMPOSITE_REQUEST_CYCLES / APACHE_SPEEDUP
    jitter: float = 0.02

    def run(self, n_requests: int, seed: int = 0) -> float:
        """Simulate serving ``n_requests``; returns throughput (req/s)."""
        rng = random.Random(seed)
        total_cycles = 0.0
        for __ in range(n_requests):
            noise = 1.0 + rng.uniform(-self.jitter, self.jitter)
            total_cycles += self.per_request_cycles * noise
        seconds = total_cycles / (CYCLES_PER_US * 1e6)
        return n_requests / seconds

    def throughput_rps(self, n_requests: int = 2_000, seed: int = 0) -> float:
        return self.run(n_requests, seed=seed)
