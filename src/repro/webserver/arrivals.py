"""Open-loop arrival process for the web path (ROADMAP item 2).

The Fig. 7 load generator is closed-loop (``ab -c 10`` semantics): a
fixed outstanding-request bound means arrivals *wait* for the server,
which by construction hides overload behavior.  This module supplies the
open-loop alternative: a request stream pinned to virtual-time arrival
instants that do not care how busy the server is, so queues grow
unboundedly when offered load exceeds capacity — which is the point.

The whole stream is a pure function of an :class:`ArrivalSpec`:

* **Poisson arrivals** — exponential inter-arrival gaps in virtual
  cycles, drawn from a dedicated ``random.Random`` stream seeded only by
  the spec, never by the SWIFI run seed.  One spec therefore yields one
  arrival schedule shared by every seeded run of a campaign (the
  super-trace recording discipline depends on this: seeds perturb only
  the injected faults, so one clean recording serves all seeds).
* **Phase schedule** — steady/burst/diurnal presets (or an explicit
  ``name:fraction@rate`` list) partition the request stream and scale
  the arrival rate per phase, so overload can be transient (a burst
  riding on a sustainable baseline) or sustained.
* **Bounded-Pareto request sizes** — each request carries an integer
  ``weight`` drawn from a bounded Pareto (heavy-tailed, like real web
  object sizes); the server scales its RamFS content reads and
  application compute by the weight (see
  :meth:`repro.webserver.server.WebServer._handle`).

``load`` is the offered-load multiplier: the mean inter-arrival gap is
the *estimated mean per-request service demand* divided by ``load``, so
``load=1.0`` offers approximately the single-virtual-CPU capacity
(utilization ~1), below 1 is underload, above is sustained overload.
Phase rate multipliers apply on top of ``load``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

#: Estimated virtual cycles the server spends on a weight-1 request,
#: end to end (component invocations + application compute +
#: amortized housekeeping).  Measured on the closed-loop path:
#: 1000-request superglue runs complete in ~13.1k cycles/request.
EST_BASE_CYCLES = 13_000

#: Estimated extra cycles per additional weight unit (one more
#: tseek+tread round trip plus per-chunk application compute; see
#: ``WebServer._handle``).
EST_CHUNK_CYCLES = 3_000

#: Named phase presets.  Fractions partition the request stream; rates
#: multiply the arrival intensity within the phase.
PHASE_PRESETS = {
    "steady": (("steady", 1.0, 1.0),),
    # A 4x burst riding on a sustainable baseline: transient overload.
    "burst": (
        ("steady", 0.4, 1.0),
        ("burst", 0.2, 4.0),
        ("steady", 0.4, 1.0),
    ),
    # A compressed day: two quiet shoulders around a peak.
    "diurnal": (
        ("night", 0.15, 0.4),
        ("morning", 0.20, 0.9),
        ("peak", 0.30, 1.6),
        ("evening", 0.20, 0.9),
        ("late", 0.15, 0.4),
    ),
}


@dataclass(frozen=True)
class Phase:
    """One segment of the arrival schedule."""

    name: str
    fraction: float  # share of the total request count, in (0, 1]
    rate: float      # arrival-rate multiplier within the phase, > 0


@dataclass(frozen=True)
class Arrival:
    """One request's virtual-time arrival instant, target, and size."""

    at: int       # virtual-cycle arrival time
    path: str     # site path (cycled, as in the closed-loop generator)
    weight: int   # bounded-Pareto size units (1 = the closed-loop size)


def parse_phases(spec: str) -> Tuple[Phase, ...]:
    """Parse a phase schedule: a preset name or ``name:frac@rate,...``.

    Fractions must sum to 1 (within 1e-6) and every fraction and rate
    must be positive; raises ``ValueError`` otherwise so a typo'd sweep
    fails before the campaign runs.
    """
    preset = PHASE_PRESETS.get(spec)
    if preset is not None:
        return tuple(Phase(*entry) for entry in preset)
    phases: List[Phase] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, rest = part.partition(":")
        frac_str, sep2, rate_str = rest.partition("@")
        if not sep or not sep2:
            raise ValueError(
                f"bad phase {part!r}: expected name:fraction@rate "
                f"(or a preset: {', '.join(sorted(PHASE_PRESETS))})"
            )
        try:
            fraction, rate = float(frac_str), float(rate_str)
        except ValueError as exc:
            raise ValueError(f"bad phase {part!r}: {exc}") from None
        if fraction <= 0 or rate <= 0:
            raise ValueError(
                f"bad phase {part!r}: fraction and rate must be positive"
            )
        phases.append(Phase(name, fraction, rate))
    if not phases:
        raise ValueError(f"empty phase spec {spec!r}")
    total = sum(phase.fraction for phase in phases)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(
            f"phase fractions must sum to 1.0, got {total!r} in {spec!r}"
        )
    return tuple(phases)


def bounded_pareto(u: float, alpha: float, lo: int, hi: int) -> int:
    """Inverse-CDF sample of a bounded Pareto on ``[lo, hi]``.

    ``u`` is a uniform draw in ``[0, 1)``.  Returns an integer weight,
    clamped to the bounds (the continuous sample is truncated, so the
    mass at ``hi`` is the tail beyond it — exactly what a bounded
    heavy tail means).
    """
    if lo >= hi:
        return lo
    ratio = (lo / hi) ** alpha
    x = lo * (1.0 - u * (1.0 - ratio)) ** (-1.0 / alpha)
    return max(lo, min(hi, int(x)))


@dataclass(frozen=True)
class ArrivalSpec:
    """Everything the arrival stream depends on.  Seed-pure: two equal
    specs always build byte-identical schedules, and the SWIFI run seed
    is deliberately *not* part of the spec."""

    n_requests: int = 120
    load: float = 1.0
    phases: str = "steady"
    seed: int = 0
    #: Bounded-Pareto tail index alpha, in thousandths (an int keeps the
    #: frozen spec hashable-stable and the fingerprint exact).  1500 =
    #: alpha 1.5, the classic heavy-tailed web-object-size regime.
    alpha_milli: int = 1500
    weight_min: int = 1
    weight_max: int = 32

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("ArrivalSpec needs n_requests >= 1")
        if self.load <= 0:
            raise ValueError("ArrivalSpec needs load > 0")
        if self.alpha_milli <= 1000:
            # alpha <= 1 has no finite mean: the load calibration (and
            # any notion of "offered load") would be meaningless.
            raise ValueError("ArrivalSpec needs alpha_milli > 1000")
        if not 1 <= self.weight_min <= self.weight_max:
            raise ValueError(
                "ArrivalSpec needs 1 <= weight_min <= weight_max"
            )
        parse_phases(self.phases)  # fail fast on a typo'd schedule

    # ------------------------------------------------------------------
    def phase_counts(self) -> List[Tuple[Phase, int]]:
        """Per-phase request counts (largest-remainder apportionment, so
        they sum exactly to ``n_requests`` and every phase with nonzero
        fraction gets at least one request when possible)."""
        phases = parse_phases(self.phases)
        raw = [phase.fraction * self.n_requests for phase in phases]
        counts = [int(value) for value in raw]
        remainders = sorted(
            range(len(phases)),
            key=lambda i: (-(raw[i] - counts[i]), i),
        )
        short = self.n_requests - sum(counts)
        for i in remainders[:short]:
            counts[i] += 1
        return list(zip(phases, counts))

    def build(self, site_paths: Tuple[str, ...]) -> List[Arrival]:
        """The full arrival schedule, earliest first.

        Weights are drawn first, then gaps, from one RNG stream — the
        draw order is part of the schedule's identity, so never reorder
        it.  The mean inter-arrival gap is calibrated against the
        *estimated* total service demand of the drawn weights: at
        ``load=1.0`` the stream offers approximately one virtual CPU's
        worth of work.
        """
        rng = random.Random(f"arrivals:{self.seed}:{self.n_requests}")
        alpha = self.alpha_milli / 1000.0
        weights = [
            bounded_pareto(
                rng.random(), alpha, self.weight_min, self.weight_max
            )
            for __ in range(self.n_requests)
        ]
        est_demand = sum(
            EST_BASE_CYCLES + (weight - 1) * EST_CHUNK_CYCLES
            for weight in weights
        )
        mean_gap = est_demand / (self.n_requests * self.load)
        arrivals: List[Arrival] = []
        now = 0
        index = 0
        for phase, count in self.phase_counts():
            phase_gap = mean_gap / phase.rate
            for __ in range(count):
                # Exponential inter-arrival; 1 - u avoids log(0).
                gap = int(-math.log(1.0 - rng.random()) * phase_gap)
                now += max(1, gap)
                arrivals.append(
                    Arrival(
                        at=now,
                        path=site_paths[index % len(site_paths)],
                        weight=weights[index],
                    )
                )
                index += 1
        return arrivals


def offered_rps(arrivals: List[Arrival], cycles_per_us: int) -> float:
    """Offered load in requests per virtual second."""
    if not arrivals:
        return 0.0
    span = arrivals[-1].at
    if span <= 0:
        return 0.0
    return len(arrivals) / (span / (cycles_per_us * 1e6))
