"""Componentized web server application (Section V-E, Fig. 7)."""

from repro.webserver.apache_model import ApacheModel
from repro.webserver.campaign import (
    WebCampaignResult,
    WebRunSpec,
    execute_web_run,
    run_webserver_campaign,
    web_run_seeds,
)
from repro.webserver.http import (
    HttpRequest,
    build_response,
    parse_request,
)
from repro.webserver.loadgen import LoadGenerator, LoadResult, run_webserver
from repro.webserver.server import WebServer

__all__ = [
    "ApacheModel",
    "HttpRequest",
    "build_response",
    "parse_request",
    "LoadGenerator",
    "LoadResult",
    "WebCampaignResult",
    "WebRunSpec",
    "WebServer",
    "execute_web_run",
    "run_webserver",
    "run_webserver_campaign",
    "web_run_seeds",
]
