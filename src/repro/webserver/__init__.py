"""Componentized web server application (Section V-E, Fig. 7)."""

from repro.webserver.apache_model import ApacheModel
from repro.webserver.http import (
    HttpRequest,
    build_response,
    parse_request,
)
from repro.webserver.loadgen import LoadGenerator, LoadResult
from repro.webserver.server import WebServer

__all__ = [
    "ApacheModel",
    "HttpRequest",
    "build_response",
    "parse_request",
    "LoadGenerator",
    "LoadResult",
    "WebServer",
]
