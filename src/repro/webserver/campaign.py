"""Multi-seed web-server evaluation campaigns (Section V-E, Fig. 7).

The paper's end-to-end number is a *distribution*, not a point: ab is run
repeatedly while a fault is injected into a different system-level
component each period.  A single ``run_webserver`` call answers "what
happened once"; this module scales it the way ReHype's evaluation scales
VM recovery — many seeded runs, each a pure function of
``(WebRunSpec, run_seed)``, fanned out over the SWIFI campaign
machinery:

* systems come from :class:`repro.system.SystemPool` (boot + seal once
  per process, dirty-restore per run) with the web server's application
  components registered *before* sealing via the pool's ``prepare``
  hook, so ``REPRO_POOL_DEBUG=1`` verification covers them too;
* seeds are chunked across :func:`repro.swifi.parallel.fan_out_chunks`'s
  process pool, and rows are merged in seed order, so a campaign's JSON
  artifact is byte-identical serial vs parallel, pooled vs fresh;
* per-request latencies aggregate through
  :mod:`repro.observe.metrics` order-independent histograms (p50/p95/p99
  in virtual time), and traced runs export ``request_start`` /
  ``request_done`` / ``throughput_dip`` arcs for
  ``python -m repro trace``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.composite.scheduler import CYCLES_PER_US
from repro.composite.supertrace import (
    REGISTRY,
    RecordingSession,
    ReplaySession,
    super_trace_enabled,
)
from repro.errors import BlockThread, ReproError, SimulatedFault, SystemHang
from repro.observe import export as trace_export
from repro.observe import tracing_enabled
from repro.observe.metrics import (
    MetricsRegistry,
    bucket_bounds,
    canonical_metrics,
    merge_metrics,
)
from repro.swifi.injector import FAULT_CLASSES, SwifiController
from repro.swifi.parallel import default_workers, fan_out_chunks
from repro.system import (
    GLOBAL_POOL,
    build_system,
    compile_all_interfaces,
    pooling_enabled,
)
from repro.webserver.arrivals import ArrivalSpec
from repro.webserver.loadgen import LoadResult, run_webserver
from repro.webserver.server import (
    DIP_THRESHOLD_CYCLES,
    register_webserver_components,
)

#: Latency quantiles reported per run and per campaign.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Open-loop runs additionally report the extreme tail: overload and
#: recovery storms live in p999, which p99 alone can miss entirely at
#: per-run sample counts.
OPEN_QUANTILES = QUANTILES + (("p999", 0.999),)


@dataclass(frozen=True)
class WebRunSpec:
    """Everything one faulted web-server run depends on besides its seed."""

    ft_mode: str = "superglue"
    n_requests: int = 120
    concurrency: int = 10
    n_workers: int = 2
    n_faults: int = 3
    max_steps: int = 2_000_000
    recovery_mode: str = "ondemand"
    #: Injected fault model (``repro.swifi.injector.FAULT_CLASSES``).
    fault_class: str = "reg"
    #: ``"closed"`` (ab-style, bounded outstanding) or ``"open"``
    #: (arrival-schedule driven; ``concurrency`` is then ignored).
    arrivals: str = "closed"
    #: Open-loop offered-load multiplier (1.0 ~ one virtual CPU).
    load: float = 1.0
    #: Open-loop phase schedule (preset name or ``name:frac@rate,...``).
    phases: str = "steady"
    #: Open-loop SLO deadline, microseconds of virtual time from
    #: arrival to response.
    slo_us: int = 500
    #: Seed of the arrival schedule itself — deliberately separate from
    #: the SWIFI run seeds, so every seeded run of a campaign shares one
    #: arrival stream (and one super-trace recording).
    arrival_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("WebRunSpec needs n_requests >= 1")
        if self.concurrency < 1:
            raise ValueError("WebRunSpec needs concurrency >= 1")
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {self.fault_class!r} "
                f"(expected one of {FAULT_CLASSES})"
            )
        if self.arrivals not in ("closed", "open"):
            raise ValueError("WebRunSpec.arrivals must be 'closed' or 'open'")
        if self.arrivals == "open":
            if self.slo_us < 1:
                raise ValueError("WebRunSpec needs slo_us >= 1")
            self.arrival_spec()  # fail fast on bad load/phases

    def arrival_spec(self) -> Optional[ArrivalSpec]:
        """The open-loop arrival schedule spec (None when closed-loop)."""
        if self.arrivals != "open":
            return None
        return ArrivalSpec(
            n_requests=self.n_requests,
            load=self.load,
            phases=self.phases,
            seed=self.arrival_seed,
        )

    def fingerprint(self) -> str:
        """Stable identity string (trace artifacts key on it).

        Closed-loop reg-fault specs keep their historical form; the
        open-loop / fault-class parts append only when they differ from
        the defaults, so existing artifacts and trace keys still match.
        """
        base = (
            f"webserver/{self.ft_mode}/r{self.n_requests}"
            f"/c{self.concurrency}/w{self.n_workers}/f{self.n_faults}"
            f"/{self.recovery_mode}"
        )
        if self.fault_class != "reg":
            base += f"/{self.fault_class}"
        if self.arrivals == "open":
            base += (
                f"/open-l{self.load:g}-{self.phases}"
                f"-slo{self.slo_us}-a{self.arrival_seed}"
            )
        return base


def web_run_seeds(seed: int, n_seeds: int) -> List[int]:
    """The deterministic seed schedule (same stride as SWIFI campaigns)."""
    return [seed * 1_000_003 + i for i in range(n_seeds)]


def prepare_webserver(system) -> None:
    """Pool ``prepare`` hook: give a fresh system the web server's own
    application components (httpparse, connmgr) before it is sealed.

    Module-level (stable qualname) so the pool can key snapshots on it
    and apply it to the fresh reference build under ``REPRO_POOL_DEBUG``.
    """
    register_webserver_components(system.kernel)


def _web_system(spec: WebRunSpec):
    """A prepared system for one campaign run: pooled unless tracing."""
    if pooling_enabled() and not tracing_enabled():
        return GLOBAL_POOL.acquire(
            ft_mode=spec.ft_mode,
            recovery_mode=spec.recovery_mode,
            prepare=prepare_webserver,
        )
    system = build_system(
        ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
    )
    prepare_webserver(system)
    return system


def _web_recording(spec: WebRunSpec):
    """The web workload's super-trace recording, built once per process.

    Same gating as the SWIFI campaigns' ``_campaign_recording``:
    recordings bind direct references into the pooled sealed system, so
    they exist only for pooled, untraced campaigns — everything else
    stays on the authoritative two-tier path.  A failed build is cached
    as None so the campaign never retries it.
    """
    if not (
        super_trace_enabled() and pooling_enabled() and not tracing_enabled()
    ):
        return None
    # The fingerprint covers every behavior-relevant field (arrival
    # schedule included) except the step budget.
    key = ("webserver", spec.fingerprint(), spec.max_steps)
    system = GLOBAL_POOL.peek(
        ft_mode=spec.ft_mode,
        recovery_mode=spec.recovery_mode,
        prepare=prepare_webserver,
    )
    if system is not None:
        found, recording = REGISTRY.lookup(key, system)
        if found:
            return recording
    recording = _build_web_recording(spec)
    system = GLOBAL_POOL.peek(
        ft_mode=spec.ft_mode,
        recovery_mode=spec.recovery_mode,
        prepare=prepare_webserver,
    )
    REGISTRY.store(key, system, recording)
    return recording


def _build_web_recording(spec: WebRunSpec):
    """Record the clean (fault-free) request stream for replay.

    Web faults are not seed-positioned: every faulted run arms at the
    same deterministic served-count crossings (see
    ``run_webserver``'s ``arm_on_progress``), and only the armed
    *target service's* execution differs between seeds.  So one clean
    recording serves every seed — but the units in which an
    ``on_served`` crossing fires must not be replayed, because replay
    skips the Python that invokes the hook.  A probe mirroring the
    arming cadence calls :meth:`RecordingSession.mark_external` during
    exactly those units, recording them as bypasses: at replay the real
    ``arm_on_progress`` runs inside them, arming faults authoritatively,
    and any in-unit delivery diverges the replay for good (end-clock
    verification).  Any anomaly in the clean run aborts to None.
    """
    gap = max(spec.n_requests // (spec.n_faults + 1), 1)
    session = None
    try:
        for warm in range(3):
            system = _web_system(spec)
            kernel = system.kernel
            swifi = SwifiController(kernel, seed=0)  # never armed
            probe = None
            if warm == 2:
                session = RecordingSession(kernel)
                session.instrument(swifi)
                kernel._supertrace = session
                if spec.n_faults > 0:
                    state = {"served": 0, "left": spec.n_faults}

                    def probe(served: int) -> None:
                        # Mirrors arm_on_progress exactly: the cadence
                        # anchor advances on every crossing, armed or
                        # not, so late crossings line up too.
                        if served - state["served"] >= gap:
                            state["served"] = served
                            if state["left"] > 0:
                                state["left"] -= 1
                                session.mark_external()
            try:
                result = run_webserver(
                    ft_mode=spec.ft_mode,
                    n_requests=spec.n_requests,
                    concurrency=spec.concurrency,
                    n_workers=spec.n_workers,
                    with_faults=False,
                    seed=0,
                    max_steps=spec.max_steps,
                    system=system,
                    warn_shortfall=False,
                    progress_hook=probe,
                    arrival_spec=spec.arrival_spec(),
                    slo_us=spec.slo_us if spec.arrivals == "open" else None,
                )
            finally:
                kernel._supertrace = None
            if (
                result.crashed is not None
                or result.served < spec.n_requests
                or result.reboots > 0
            ):
                return None
    except (SystemHang, SimulatedFault, ReproError, BlockThread):
        return None
    return session.finish(
        {"service": "webserver", "ft_mode": spec.ft_mode,
         "n_requests": spec.n_requests, "concurrency": spec.concurrency,
         "n_workers": spec.n_workers, "n_faults": spec.n_faults,
         "recovery_mode": spec.recovery_mode, "arrivals": spec.arrivals,
         "fingerprint": spec.fingerprint()}
    )


# ---------------------------------------------------------------------------
# Per-run execution
# ---------------------------------------------------------------------------

def _nearest_rank(sorted_values: Sequence[int], q: float) -> Optional[int]:
    """Exact nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def histogram_quantile(h: Dict[str, object], q: float) -> Optional[int]:
    """Quantile of a serialized bucketed histogram.

    Handles both shapes: power-of-two buckets (no ``sub_bits`` key) and
    log-linear sub-bucketed ones (``sub_bits`` present, bucket bounds
    via :func:`repro.observe.metrics.bucket_bounds`).  Returns the
    inclusive upper bound of the bucket holding the nearest-rank sample
    (clamped to the observed max), so merged campaign percentiles are
    order-independent: every run's samples land in the same buckets no
    matter which worker observed them.
    """
    count = h.get("count", 0)
    if not count:
        return None
    sub_bits = h.get("sub_bits")
    rank = max(1, math.ceil(q * count))
    seen = 0
    for bucket in sorted(h["buckets"], key=int):
        seen += h["buckets"][bucket]
        if seen >= rank:
            b = int(bucket)
            if sub_bits is not None:
                upper = bucket_bounds(b, sub_bits)[1]
            else:
                upper = 0 if b == 0 else (1 << b) - 1
            observed_max = h.get("max")
            return upper if observed_max is None else min(upper, observed_max)
    return h.get("max")


def _run_outcome(result: LoadResult) -> str:
    if result.crashed is not None:
        return f"crashed:{result.crashed}"
    if result.served < result.requests:
        return "degraded"
    return "ok"


def _row_from_result(run_seed: int, result: LoadResult) -> Dict[str, object]:
    """One JSON-safe campaign row, a pure function of the run's outcome.

    Everything here derives from the :class:`LoadResult` alone — never
    from kernel engine counters (trace-cache hits etc.), which warm
    caches shift between pooled and fresh systems.  That is what keeps
    campaign artifacts byte-identical pooled vs fresh.
    """
    latencies = sorted(result.latencies)
    metrics = MetricsRegistry()
    metrics.counter("runs").inc()
    metrics.counter("requests").inc(result.requests)
    metrics.counter("served").inc(result.served)
    metrics.counter("errors").inc(result.errors)
    metrics.counter("reboots").inc(result.reboots)
    metrics.counter("faults_armed").inc(result.faults_armed)
    metrics.counter("faults_delivered").inc(result.faults_injected)
    if result.crashed is not None:
        metrics.counter("crashed_runs").inc()
    if result.open_loop:
        # Tail-latency SLOs need sub-power-of-two resolution: a p999
        # read from a power-of-two bucket straddling the deadline
        # cannot tell a just-met from a badly-missed SLO.
        latency_hist = metrics.loglinear("request_latency_cycles")
        metrics.counter("slo_ok").inc(result.slo_ok)
        metrics.counter("slo_miss").inc(result.slo_miss)
    else:
        latency_hist = metrics.histogram("request_latency_cycles")
    for value in result.latencies:
        latency_hist.observe(value)
    dip_hist = metrics.histogram("dip_gap_cycles")
    gaps = [
        result.series[i + 1][0] - result.series[i][0]
        for i in range(len(result.series) - 1)
    ]
    dip_gaps = [gap for gap in gaps if gap > DIP_THRESHOLD_CYCLES]
    for gap in dip_gaps:
        dip_hist.observe(gap)
    metrics.counter("dips").inc(len(dip_gaps))
    row: Dict[str, object] = {
        "run_seed": run_seed,
        "outcome": _run_outcome(result),
        "requests": result.requests,
        "served": result.served,
        "errors": result.errors,
        "duration_cycles": result.duration_cycles,
        "reboots": result.reboots,
        "faults_armed": result.faults_armed,
        "faults_delivered": result.faults_injected,
        "steps": result.steps,
        "crashed": result.crashed,
        "throughput_rps": result.throughput_rps,
        "dips": len(dip_gaps),
        "dip_max_cycles": max(dip_gaps) if dip_gaps else None,
        "dip_recovery_cycles": result.dip_recovery_cycles(),
        "metrics": canonical_metrics(metrics.to_dict()),
    }
    quantiles = OPEN_QUANTILES if result.open_loop else QUANTILES
    for name, q in quantiles:
        row[f"latency_{name}_cycles"] = _nearest_rank(latencies, q)
    if result.open_loop:
        row["peak_outstanding"] = result.peak_outstanding
        row["slo_ok"] = result.slo_ok
        row["slo_miss"] = result.slo_miss
        row["goodput_rps"] = result.goodput_rps
    return row


def execute_web_run(spec: WebRunSpec, run_seed: int) -> Dict[str, object]:
    """Execute one faulted web-server run; returns its campaign row.

    Module-level and pure (given the spec and seed) so process-pool
    workers can run it from chunks, like the SWIFI ``execute_run``.
    """
    recording = _web_recording(spec)
    system = _web_system(spec)
    kernel = system.kernel
    if recording is not None and recording.kernel is kernel:
        kernel._supertrace = ReplaySession(recording)
    try:
        result = run_webserver(
            ft_mode=spec.ft_mode,
            n_requests=spec.n_requests,
            concurrency=spec.concurrency,
            n_workers=spec.n_workers,
            with_faults=spec.n_faults > 0,
            n_faults=spec.n_faults,
            seed=run_seed,
            max_steps=spec.max_steps,
            system=system,
            # Shortfalls are first-class row data (faults_armed) in a
            # campaign, not per-run stderr noise.
            warn_shortfall=False,
            arrival_spec=spec.arrival_spec(),
            slo_us=spec.slo_us if spec.arrivals == "open" else None,
            fault_class=spec.fault_class,
        )
    finally:
        kernel._supertrace = None
    return _row_from_result(run_seed, result)


def execute_web_run_traced(
    spec: WebRunSpec, run_seed: int
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """One run under the flight recorder; returns ``(row, run_record)``.

    The record carries the request-path arcs (``request_start`` /
    ``request_done`` / ``throughput_dip``) interleaved with the
    injection/reboot/replay events, ready for
    :func:`repro.observe.export.write_run`.  Rows are computed exactly
    as in the untraced path, so campaign artifacts do not change when
    tracing is requested.
    """
    from repro import observe

    with observe.tracing(True):
        system = _web_system(spec)
        result = run_webserver(
            ft_mode=spec.ft_mode,
            n_requests=spec.n_requests,
            concurrency=spec.concurrency,
            n_workers=spec.n_workers,
            with_faults=spec.n_faults > 0,
            n_faults=spec.n_faults,
            seed=run_seed,
            max_steps=spec.max_steps,
            system=system,
            warn_shortfall=False,
            arrival_spec=spec.arrival_spec(),
            slo_us=spec.slo_us if spec.arrivals == "open" else None,
            fault_class=spec.fault_class,
        )
        row = _row_from_result(run_seed, result)
        recorder = system.kernel.recorder
        metrics = recorder.metrics
        for stat in (
            "invocations", "upcalls", "faults_vectored", "micro_reboots",
            "steps", "interp_fast_runs", "interp_slow_runs",
            "trace_cache_hits", "trace_cache_misses", "budget_exhausted",
            "super_trace_runs", "super_trace_bypasses",
        ):
            metrics.counter(stat).inc(system.kernel.stats[stat])
        metrics.counter("runs").inc()
        record = {
            "fingerprint": spec.fingerprint(),
            "run_seed": run_seed,
            "service": "webserver",
            "ft_mode": spec.ft_mode,
            # Web-server faults are armed on serving progress, not at a
            # seed-drawn trace execution; the horizon is the request
            # stream itself.
            "injection_point": 0,
            "horizon": spec.n_requests,
            "outcome": row["outcome"],
            "steps": result.steps,
            "events": recorder.events(),
            "dropped_events": recorder.dropped,
            "metrics": metrics.to_dict(),
        }
    return row, record


#: Worker-side campaign parameters (see ``repro.swifi.parallel``): set
#: once per process by the initializer so chunks carry only seed lists.
_WEB_SPEC: Optional[WebRunSpec] = None
_WEB_TRACE: bool = False


def _init_web_worker(spec: WebRunSpec, trace: bool = False) -> None:
    """Campaign initializer: compile + boot/seal + record up front.

    Runs in the parent under the fork start method (workers inherit the
    warm state copy-on-write) and per worker under spawn.
    """
    global _WEB_SPEC, _WEB_TRACE
    _WEB_SPEC = spec
    _WEB_TRACE = trace
    if spec.ft_mode == "superglue":
        compile_all_interfaces()
    if not trace and pooling_enabled() and not tracing_enabled():
        GLOBAL_POOL.acquire(
            ft_mode=spec.ft_mode,
            recovery_mode=spec.recovery_mode,
            prepare=prepare_webserver,
        )
        _web_recording(spec)


def _execute_web_chunk(
    seeds: List[int],
) -> List[Tuple[int, Dict[str, object], Optional[dict]]]:
    """Worker entry point: one chunk of runs -> (seed, row, record|None)."""
    spec, trace = _WEB_SPEC, _WEB_TRACE
    results: List[Tuple[int, Dict[str, object], Optional[dict]]] = []
    for seed in seeds:
        if trace:
            row, record = execute_web_run_traced(spec, seed)
        else:
            row, record = execute_web_run(spec, seed), None
        results.append((seed, row, record))
    return results


# ---------------------------------------------------------------------------
# Campaign aggregation
# ---------------------------------------------------------------------------

@dataclass
class WebCampaignResult:
    """A finished Fig. 7 campaign: per-seed rows plus the aggregate."""

    spec: WebRunSpec
    seeds: List[int]
    rows: List[Dict[str, object]]
    aggregate: Dict[str, object]
    #: Wall-clock split (sidecar-only: the artifact stays deterministic).
    setup_wall: float = 0.0
    exec_wall: float = 0.0

    def to_json_dict(self) -> Dict[str, object]:
        """The deterministic campaign artifact (no wall-clock anywhere)."""
        return {
            "fingerprint": self.spec.fingerprint(),
            "spec": {
                "ft_mode": self.spec.ft_mode,
                "n_requests": self.spec.n_requests,
                "concurrency": self.spec.concurrency,
                "n_workers": self.spec.n_workers,
                "n_faults": self.spec.n_faults,
                "max_steps": self.spec.max_steps,
                "recovery_mode": self.spec.recovery_mode,
                "fault_class": self.spec.fault_class,
                "arrivals": self.spec.arrivals,
                "load": self.spec.load,
                "phases": self.spec.phases,
                "slo_us": self.spec.slo_us,
                "arrival_seed": self.spec.arrival_seed,
            },
            "seeds": list(self.seeds),
            "rows": self.rows,
            "aggregate": self.aggregate,
        }

    def write_json(self, path: str) -> None:
        """Write the artifact plus a ``.timing.json`` wall-clock sidecar."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2)
            handle.write("\n")
        with open(path + ".timing.json", "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "runs": len(self.rows),
                    "setup_wall": self.setup_wall,
                    "exec_wall": self.exec_wall,
                },
                handle,
                indent=2,
            )
            handle.write("\n")


def aggregate_rows(
    spec: WebRunSpec, rows: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Campaign aggregate from per-seed rows.

    Integer sums plus quantiles over the merged latency histogram —
    every operation is order-independent, so the aggregate is identical
    however the rows were executed.
    """
    merged: Dict[str, object] = {}
    for row in rows:
        merge_metrics(merged, row["metrics"])
    totals = {
        name: sum(row[name] for row in rows)
        for name in (
            "requests", "served", "errors", "duration_cycles", "reboots",
            "faults_armed", "faults_delivered", "dips", "steps",
        )
    }
    outcomes: Dict[str, int] = {}
    for row in rows:
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    duration = totals["duration_cycles"]
    aggregate: Dict[str, object] = {
        "runs": len(rows),
        "outcomes": dict(sorted(outcomes.items())),
        **totals,
        "crashed_runs": sum(1 for row in rows if row["crashed"] is not None),
        "throughput_rps": (
            totals["served"] / (duration / (CYCLES_PER_US * 1e6))
            if duration
            else 0.0
        ),
        "metrics": canonical_metrics(merged),
    }
    open_loop = spec.arrivals == "open"
    latency_hist = merged.get("histograms", {}).get(
        "request_latency_cycles", {}
    )
    for name, q in OPEN_QUANTILES if open_loop else QUANTILES:
        aggregate[f"latency_{name}_cycles"] = (
            histogram_quantile(latency_hist, q) if latency_hist else None
        )
    if open_loop:
        slo_ok = sum(row["slo_ok"] for row in rows)
        slo_miss = sum(row["slo_miss"] for row in rows)
        aggregate["slo_ok"] = slo_ok
        aggregate["slo_miss"] = slo_miss
        aggregate["peak_outstanding"] = max(
            (row["peak_outstanding"] for row in rows), default=0
        )
        aggregate["goodput_rps"] = (
            slo_ok / (duration / (CYCLES_PER_US * 1e6)) if duration else 0.0
        )
    return aggregate


def run_webserver_campaign(
    seeds: Sequence[int],
    spec: Optional[WebRunSpec] = None,
    workers: Optional[int] = None,
    trace: Optional[str] = None,
    progress=None,
) -> WebCampaignResult:
    """Fan faulted web-server runs over ``seeds`` and aggregate them.

    ``workers=None`` uses one process per CPU; ``workers=1`` (or a
    single seed) runs in-process.  Rows are merged in ``seeds`` order
    whatever the completion order, so for a given schedule the artifact
    is byte-identical across worker counts, and — because rows derive
    from virtual-time outcomes only — across pooling modes.  ``trace``
    names a flight-recorder JSONL artifact: every run then executes
    traced (bypassing the pool) and the parent writes run records in
    seed order plus one summary line.
    """
    spec = spec or WebRunSpec()
    if workers is None:
        workers = default_workers()
    seeds = list(seeds)
    tracing = trace is not None
    setup_start = time.perf_counter()
    rows_by_seed: Dict[int, Dict[str, object]] = {}
    records: Dict[int, dict] = {}

    def note(batch) -> None:
        for run_seed, row, record in batch:
            rows_by_seed[run_seed] = row
            if record is not None:
                records[run_seed] = record
            if progress is not None:
                progress(len(rows_by_seed), len(seeds), row)

    exec_start = time.perf_counter()
    fan_out_chunks(
        _execute_web_chunk,
        seeds,
        workers,
        initializer=_init_web_worker,
        initargs=(spec, tracing),
        on_batch=note,
    )
    exec_end = time.perf_counter()
    rows = [rows_by_seed[seed] for seed in seeds]
    if tracing:
        _export_web_trace(trace, spec, seeds, rows, records)
    return WebCampaignResult(
        spec=spec,
        seeds=seeds,
        rows=rows,
        aggregate=aggregate_rows(spec, rows),
        setup_wall=exec_start - setup_start,
        exec_wall=exec_end - exec_start,
    )


def _export_web_trace(
    path: str,
    spec: WebRunSpec,
    seeds: Sequence[int],
    rows: Sequence[Dict[str, object]],
    records: Dict[int, dict],
) -> None:
    """Parent-side trace export in seed order (serial == parallel)."""
    merged_metrics: Dict[str, object] = {}
    with open(path, "a", encoding="utf-8") as handle:
        for seed in seeds:
            record = records.get(seed)
            if record is None:
                continue
            trace_export.write_run(handle, record)
            merge_metrics(merged_metrics, record["metrics"])
        tally: Dict[str, int] = {}
        for row in rows:
            tally[row["outcome"]] = tally.get(row["outcome"], 0) + 1
        trace_export.write_summary(
            handle,
            fingerprint=spec.fingerprint(),
            runs=len(seeds),
            replayed=0,
            outcomes=tally,
            metrics=canonical_metrics(merged_metrics),
        )


def format_web_campaign(result: WebCampaignResult) -> str:
    """Human summary of a Fig. 7 campaign (deterministic: no wall clock)."""
    spec = result.spec
    agg = result.aggregate
    lines = [
        f"Fig. 7 campaign  {spec.fingerprint()}",
        (
            f"  runs: {agg['runs']}  requests: {agg['requests']}  "
            f"served: {agg['served']}  errors: {agg['errors']}"
        ),
        (
            f"  faults: {agg['faults_delivered']}/{agg['faults_armed']} "
            f"delivered/armed  reboots: {agg['reboots']}  "
            f"dips: {agg['dips']}  crashed runs: {agg['crashed_runs']}"
        ),
        f"  throughput: {agg['throughput_rps']:,.0f} req/s (virtual)",
    ]
    open_loop = spec.arrivals == "open"
    if open_loop:
        lines.append(
            f"  goodput: {agg['goodput_rps']:,.0f} req/s within "
            f"{spec.slo_us}us SLO  (ok: {agg['slo_ok']}  "
            f"miss: {agg['slo_miss']}  peak queue: "
            f"{agg['peak_outstanding']})"
        )
    quants = "  ".join(
        f"{name}={agg[f'latency_{name}_cycles']}"
        for name, __ in (OPEN_QUANTILES if open_loop else QUANTILES)
    )
    lines.append(f"  latency cycles: {quants}")
    lines.append("  outcomes:")
    for outcome, count in agg["outcomes"].items():
        lines.append(f"    {outcome:<24} {count}")
    return "\n".join(lines)
