"""``ab``-style load generator (Section V-E).

"During each test, ab sends 50000 requests with a maximum of 10 requests
concurrently to the server."  The generator runs as a thread in a
*different* component than the server (requests arrive over the event
manager's global descriptors, as network interrupts would), keeps at most
``concurrency`` requests outstanding, and measures throughput in virtual
time.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.composite.scheduler import CYCLES_PER_US
from repro.composite.thread import Invoke, Yield
from repro.errors import SystemHang
from repro.swifi.injector import SwifiController
from repro.system import build_system
from repro.webserver.http import build_request
from repro.webserver.server import DEFAULT_SITE, WebServer

#: Services cycled through by the fault-injection variant ("injecting
#: faults into one system-level component every 10 seconds").
FAULT_TARGET_CYCLE = ["ramfs", "lock", "event", "mm", "timer", "ramfs"]


@dataclass
class LoadResult:
    """Measured outcome of one web-server run."""

    requests: int
    served: int
    errors: int
    duration_cycles: int
    reboots: int
    ft_mode: str
    faults_injected: int = 0
    #: How many faults were actually armed.  Under stalled progress the
    #: injection schedule can arm fewer than requested; reporting only
    #: deliveries would let under-injection masquerade as a clean run.
    faults_armed: int = 0
    #: Scheduler steps consumed by the run.
    steps: int = 0
    #: Terminal condition when the run did not complete cleanly:
    #: ``"hang"`` (deadlock), ``"<kind>:<component>"`` (unrecovered
    #: fault), ``"exhausted"`` (step budget), else ``None``.
    crashed: Optional[str] = None
    #: (clock, served) progress samples.
    series: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-request latency in virtual cycles, completion order.
    latencies: List[int] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return self.duration_cycles / CYCLES_PER_US

    @property
    def throughput_rps(self) -> float:
        """Requests per virtual second."""
        if self.duration_cycles == 0:
            return 0.0
        return self.served / (self.duration_cycles / (CYCLES_PER_US * 1e6))

    def dip_recovery_cycles(self, window: int = 50) -> Optional[int]:
        """How long throughput stayed depressed around the worst dip.

        Slides a ``window``-completion window over the progress series
        and returns the widest virtual-time span any window covers — the
        recovery disturbance: a micro-reboot mid-run stretches the
        windows that straddle it.  ``window=2`` degenerates to the
        single worst inter-completion gap.  Returns ``None`` when fewer
        than ``window`` samples exist (a span over a partial window
        would understate the disturbance).
        """
        if window < 2 or len(self.series) < window:
            return None
        return max(
            self.series[i + window - 1][0] - self.series[i][0]
            for i in range(len(self.series) - window + 1)
        )


class LoadGenerator:
    """Drives a web server with a bounded-concurrency request stream."""

    def __init__(
        self,
        n_requests: int = 2_000,
        concurrency: int = 10,
        client_home: str = "app1",
    ):
        self.n_requests = n_requests
        self.concurrency = concurrency
        self.client_home = client_home

    def install(self, system, server: WebServer) -> None:
        paths = itertools.cycle(sorted(DEFAULT_SITE))

        def body(sys_, thread):
            while server.evt_conn is None:
                yield Yield()
            sent = 0
            while sent < self.n_requests:
                # ab's "10 concurrent" bounds *outstanding* requests:
                # submitted and not yet responded to, whether queued or
                # in a worker.  Counting only the queue let up to
                # concurrency + n_workers requests be in flight.
                if server.outstanding >= self.concurrency:
                    yield Yield()
                    continue
                server.submit(build_request("/" + next(paths)))
                sent += 1
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )
            server.stop()
            # Nudge any workers still parked on the connection event.
            for __ in range(server.n_workers):
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )

        system.kernel.create_thread(
            "loadgen", prio=5, home=self.client_home, body_factory=body
        )


def run_webserver(
    ft_mode: str = "superglue",
    n_requests: int = 2_000,
    concurrency: int = 10,
    n_workers: int = 2,
    with_faults: bool = False,
    n_faults: int = 6,
    seed: int = 0,
    max_steps: int = 5_000_000,
    system=None,
    warn_shortfall: bool = True,
    progress_hook=None,
) -> LoadResult:
    """Build a system, serve ``n_requests``, and measure throughput.

    With ``with_faults``, ``n_faults`` SEUs are spread across the run,
    each targeting the next service in :data:`FAULT_TARGET_CYCLE` — the
    paper's "one crash injected every 10 seconds into a different
    system-level component", rescaled to the simulated run length.

    ``system`` lets callers (the pooled campaign path) supply a
    pre-built system; the web-server application components must already
    be registered on it (see
    :func:`repro.webserver.server.register_webserver_components`).

    ``progress_hook`` installs an ``on_served`` observer on fault-free
    runs (ignored with ``with_faults``, which owns the hook) — the
    super-trace recorder uses it to mark the units where a faulted run
    would arm, without perturbing the clean execution.
    """
    if system is None:
        system = build_system(ft_mode=ft_mode)
    server = WebServer(system, home="app0", n_workers=n_workers)
    server.install()
    generator = LoadGenerator(
        n_requests=n_requests, concurrency=concurrency, client_home="app1"
    )
    generator.install(system, server)

    swifi = None
    armed = {"count": 0}
    if with_faults:
        swifi = SwifiController(system.kernel, seed=seed)
        gap = max(n_requests // (n_faults + 1), 1)
        targets = iter(
            [FAULT_TARGET_CYCLE[i % len(FAULT_TARGET_CYCLE)] for i in range(n_faults)]
        )
        last_armed = {"served": 0}

        def arm_on_progress(served: int) -> None:
            if served - last_armed["served"] >= gap:
                last_armed["served"] = served
                target = next(targets, None)
                if target is not None:
                    swifi.arm(target, after_executions=0)
                    armed["count"] += 1

        server.on_served = arm_on_progress
    elif progress_hook is not None:
        server.on_served = progress_hook

    crashed: Optional[str] = None
    try:
        steps = system.run(max_steps=max_steps)
    except SystemHang:
        crashed = "hang"
        steps = 0
    kernel = system.kernel
    if crashed is None:
        if kernel.crashed is not None:
            crashed = f"{kernel.crashed.kind}:{kernel.crashed.component}"
        elif kernel.budget_exhausted:
            crashed = "exhausted"
    if with_faults and warn_shortfall and armed["count"] < n_faults:
        print(
            f"run_webserver: armed only {armed['count']}/{n_faults} faults "
            f"(progress stalled at {server.served}/{n_requests} served)",
            file=sys.stderr,
        )
    end = server.samples[-1][0] if server.samples else kernel.clock.now
    return LoadResult(
        requests=n_requests,
        served=server.served,
        errors=server.errors,
        duration_cycles=end,
        reboots=system.booter.reboots,
        ft_mode=ft_mode,
        faults_injected=len(swifi.delivered) if swifi else 0,
        faults_armed=armed["count"],
        steps=steps,
        crashed=crashed,
        series=server.samples,
        latencies=server.latencies,
    )
