"""``ab``-style and open-loop load generators (Section V-E).

"During each test, ab sends 50000 requests with a maximum of 10 requests
concurrently to the server."  The closed-loop generator runs as a thread
in a *different* component than the server (requests arrive over the
event manager's global descriptors, as network interrupts would), keeps
at most ``concurrency`` requests outstanding, and measures throughput in
virtual time.

The closed-loop shape hides overload by construction: bounded
outstanding requests mean arrivals *wait* for a slow server, so a
recovery storm shows up as a throughput dip but never as queue growth.
:class:`OpenLoopGenerator` submits requests at virtual-time arrival
instants from an :class:`~repro.webserver.arrivals.ArrivalSpec` —
Poisson arrivals, phase schedules, bounded-Pareto sizes — regardless of
backlog, and the run is scored against a tail-latency SLO (goodput =
requests answered within deadline).
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.composite.scheduler import CYCLES_PER_US
from repro.composite.thread import Invoke, Sleep, Yield
from repro.errors import ReproError, SimulatedFault, SystemHang
from repro.swifi.injector import SwifiController
from repro.system import build_system
from repro.webserver.arrivals import Arrival, ArrivalSpec
from repro.webserver.http import build_request
from repro.webserver.server import DEFAULT_SITE, WebServer

#: Services cycled through by the fault-injection variant ("injecting
#: faults into one system-level component every 10 seconds").  The
#: cycle deliberately differs from the full system-service list in two
#: ways; both are exposure-derived, not typos:
#:
#: * ``ramfs`` appears twice.  It is by far the hottest service on the
#:   request path (every request performs at least one tseek + tread;
#:   weighted open-loop requests multiply that), so the paper's
#:   uniform-over-*time* injection lands disproportionately often in
#:   the filesystem.  Doubling its share of the uniform-over-*cycle*
#:   schedule approximates that exposure weighting.
#: * ``sched`` is absent.  Register SEUs are delivered only to a thread
#:   *executing within* the target component, and web-path threads
#:   never execute traces inside the scheduler component (trace-count
#:   audits of the request path show lock/app/event/ramfs/mm/timer
#:   executions only) — an armed sched fault would never fire and would
#:   silently deflate ``faults_delivered``.
#:
#: ``tests/test_webserver_campaign.py`` pins both properties; change
#: them together or not at all.
FAULT_TARGET_CYCLE = ["ramfs", "lock", "event", "mm", "timer", "ramfs"]


@dataclass
class LoadResult:
    """Measured outcome of one web-server run."""

    requests: int
    served: int
    errors: int
    duration_cycles: int
    reboots: int
    ft_mode: str
    faults_injected: int = 0
    #: How many faults were actually armed.  Under stalled progress the
    #: injection schedule can arm fewer than requested; reporting only
    #: deliveries would let under-injection masquerade as a clean run.
    faults_armed: int = 0
    #: Scheduler steps consumed by the run (also when it hangs: the
    #: kernel accumulates its step counter on *every* exit path).
    steps: int = 0
    #: Terminal condition when the run did not complete cleanly:
    #: ``"hang"`` (deadlock), ``"<kind>:<component>"`` (unrecovered
    #: fault), ``"exhausted"`` (step budget), else ``None``.
    crashed: Optional[str] = None
    #: (clock, served) progress samples.
    series: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-request latency in virtual cycles, completion order.
    latencies: List[int] = field(default_factory=list)
    #: High-water mark of submitted-but-unanswered requests.  Closed
    #: loop caps this at the concurrency; open loop grows it without
    #: bound under overload — it is the queue-growth signal.
    peak_outstanding: int = 0
    #: Open-loop runs only: True when driven by an ArrivalSpec.
    open_loop: bool = False
    #: SLO deadline in virtual cycles (None = no SLO scored).
    slo_cycles: Optional[int] = None
    #: Served requests whose arrival->response latency met the SLO.
    slo_ok: int = 0

    @property
    def duration_us(self) -> float:
        return self.duration_cycles / CYCLES_PER_US

    @property
    def throughput_rps(self) -> float:
        """Requests per virtual second."""
        if self.duration_cycles == 0:
            return 0.0
        return self.served / (self.duration_cycles / (CYCLES_PER_US * 1e6))

    @property
    def slo_miss(self) -> int:
        """Requests that arrived but missed the SLO: answered late *or*
        never answered at all (a dropped request is the worst miss)."""
        if self.slo_cycles is None:
            return 0
        return self.requests - self.slo_ok

    @property
    def goodput_rps(self) -> float:
        """SLO-meeting responses per virtual second (open-loop score).

        Falls back to raw throughput when no SLO was scored.
        """
        if self.slo_cycles is None:
            return self.throughput_rps
        if self.duration_cycles == 0:
            return 0.0
        return self.slo_ok / (self.duration_cycles / (CYCLES_PER_US * 1e6))

    def dip_recovery_cycles(self, window: int = 50) -> Optional[int]:
        """How long throughput stayed depressed around the worst dip.

        Slides a ``window``-completion window over the progress series
        and returns the widest virtual-time span any window covers — the
        recovery disturbance: a micro-reboot mid-run stretches the
        windows that straddle it.  ``window=2`` degenerates to the
        single worst inter-completion gap.  Returns ``None`` when fewer
        than ``window`` samples exist (a span over a partial window
        would understate the disturbance).
        """
        if window < 2 or len(self.series) < window:
            return None
        return max(
            self.series[i + window - 1][0] - self.series[i][0]
            for i in range(len(self.series) - window + 1)
        )


class LoadGenerator:
    """Drives a web server with a bounded-concurrency request stream."""

    def __init__(
        self,
        n_requests: int = 2_000,
        concurrency: int = 10,
        client_home: str = "app1",
    ):
        self.n_requests = n_requests
        self.concurrency = concurrency
        self.client_home = client_home

    def install(self, system, server: WebServer) -> None:
        paths = itertools.cycle(sorted(DEFAULT_SITE))

        def body(sys_, thread):
            while server.evt_conn is None:
                yield Yield()
            sent = 0
            while sent < self.n_requests:
                # ab's "10 concurrent" bounds *outstanding* requests:
                # submitted and not yet responded to, whether queued or
                # in a worker.  Counting only the queue let up to
                # concurrency + n_workers requests be in flight.
                if server.outstanding >= self.concurrency:
                    yield Yield()
                    continue
                server.submit(build_request("/" + next(paths)))
                sent += 1
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )
            server.stop()
            # Nudge any workers still parked on the connection event.
            for __ in range(server.n_workers):
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )

        system.kernel.create_thread(
            "loadgen", prio=5, home=self.client_home, body_factory=body
        )


class OpenLoopGenerator:
    """Submits requests at their arrival instants, backlog be damned.

    The arrival schedule is a pure function of the
    :class:`~repro.webserver.arrivals.ArrivalSpec` (never of the SWIFI
    run seed), shifted so its origin is the instant the server finishes
    initializing.  Between arrivals the generator thread *sleeps* on
    the virtual clock (a kernel :class:`~repro.composite.thread.Sleep`,
    not a timer-service invocation), so pacing consumes none of the
    simulated CPU the offered load is calibrated against — the
    generator models the NIC, and arrivals are interrupts from outside
    the system.  It runs at a higher priority than the workers for the
    same reason: a busy server cannot delay an interrupt.

    Each submission is back-dated to its schedule instant
    (``server.submit(..., at=due)``), so latency — and therefore the
    SLO — is measured from *arrival*, queueing delay included.
    """

    def __init__(self, spec: ArrivalSpec, client_home: str = "app1"):
        self.spec = spec
        self.client_home = client_home
        #: The built schedule (populated by :meth:`install`).
        self.arrivals: List[Arrival] = []

    def install(self, system, server: WebServer) -> None:
        self.arrivals = self.spec.build(tuple(sorted(DEFAULT_SITE)))
        kernel = system.kernel

        def body(sys_, thread):
            while server.evt_conn is None:
                yield Yield()
            base = kernel.clock.now
            for arrival in self.arrivals:
                due = base + arrival.at
                if kernel.clock.now < due:
                    yield Sleep(due)
                server.submit(
                    build_request("/" + arrival.path, weight=arrival.weight),
                    at=due,
                )
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )
            server.stop()
            # Nudge any workers still parked on the connection event.
            for __ in range(server.n_workers):
                yield Invoke(
                    "event", "evt_trigger", self.client_home, server.evt_conn
                )

        kernel.create_thread(
            "loadgen-open", prio=4, home=self.client_home, body_factory=body
        )


def _arm_fault(swifi: SwifiController, fault_class: str, target: str) -> None:
    """Arm one fault of ``fault_class`` against ``target``.

    The reg path keeps its historical RNG draw pattern (reg + bit drawn
    at arm time), so pre-existing seeded campaigns reproduce exactly.
    """
    if fault_class == "reg":
        swifi.arm(target, after_executions=0)
    elif fault_class == "mem":
        swifi.arm_mem(target, after_executions=0)
    elif fault_class == "idl":
        swifi.arm_idl(target, after_invocations=0)
    elif fault_class == "burst":
        swifi.arm_burst(target, after_executions=0)
    else:
        raise ValueError(f"unknown fault class {fault_class!r}")


def run_webserver(
    ft_mode: str = "superglue",
    n_requests: int = 2_000,
    concurrency: int = 10,
    n_workers: int = 2,
    with_faults: bool = False,
    n_faults: int = 6,
    seed: int = 0,
    max_steps: int = 5_000_000,
    system=None,
    warn_shortfall: bool = True,
    progress_hook=None,
    arrival_spec: Optional[ArrivalSpec] = None,
    slo_us: Optional[int] = None,
    fault_class: str = "reg",
) -> LoadResult:
    """Build a system, serve ``n_requests``, and measure throughput.

    With ``with_faults``, ``n_faults`` faults of ``fault_class`` are
    spread across the run, each targeting the next service in
    :data:`FAULT_TARGET_CYCLE` — the paper's "one crash injected every
    10 seconds into a different system-level component", rescaled to
    the simulated run length.

    ``arrival_spec`` switches the run open-loop: requests are submitted
    at the spec's virtual-time arrival instants (``n_requests`` and
    ``concurrency`` are ignored in favor of the spec), and ``slo_us``
    scores each response against an arrival-to-response deadline.
    ``slo_us`` may also be given for closed-loop runs.

    ``system`` lets callers (the pooled campaign path) supply a
    pre-built system; the web-server application components must already
    be registered on it (see
    :func:`repro.webserver.server.register_webserver_components`).

    ``progress_hook`` installs an ``on_served`` observer on fault-free
    runs (ignored with ``with_faults``, which owns the hook) — the
    super-trace recorder uses it to mark the units where a faulted run
    would arm, without perturbing the clean execution.
    """
    if system is None:
        system = build_system(ft_mode=ft_mode)
    if arrival_spec is not None:
        n_requests = arrival_spec.n_requests
    server = WebServer(system, home="app0", n_workers=n_workers)
    server.install()
    if arrival_spec is not None:
        generator = OpenLoopGenerator(arrival_spec, client_home="app1")
    else:
        generator = LoadGenerator(
            n_requests=n_requests, concurrency=concurrency,
            client_home="app1",
        )
    generator.install(system, server)

    swifi = None
    armed = {"count": 0}
    if with_faults:
        swifi = SwifiController(system.kernel, seed=seed)
        gap = max(n_requests // (n_faults + 1), 1)
        targets = iter(
            [FAULT_TARGET_CYCLE[i % len(FAULT_TARGET_CYCLE)] for i in range(n_faults)]
        )
        last_armed = {"served": 0}

        def arm_on_progress(served: int) -> None:
            if served - last_armed["served"] >= gap:
                last_armed["served"] = served
                target = next(targets, None)
                if target is not None:
                    _arm_fault(swifi, fault_class, target)
                    armed["count"] += 1

        server.on_served = arm_on_progress
    elif progress_hook is not None:
        server.on_served = progress_hook

    kernel = system.kernel
    crashed: Optional[str] = None
    # The kernel folds each run's step count into stats["steps"] on
    # every exit path (its run loop increments inside a finally), so a
    # before/after delta survives a SystemHang — which used to be
    # reported as steps=0, hiding how much work a deadlocked run burned.
    steps_before = kernel.stats["steps"]
    try:
        steps = system.run(max_steps=max_steps)
    except SystemHang:
        crashed = "hang"
        steps = kernel.stats["steps"] - steps_before
    except SimulatedFault as fault:
        crashed = f"{fault.kind}:{fault.component}"
        steps = kernel.stats["steps"] - steps_before
    except ReproError as error:
        # Fuzzed interface values (idl) and mid-recovery re-faults
        # (burst) can surface contract violations that escape every
        # recovery tier — a real not-recovered outcome of the fault,
        # classified like the SWIFI campaigns classify it.
        crashed = f"error:{type(error).__name__}"
        steps = kernel.stats["steps"] - steps_before
    if crashed is None:
        if kernel.crashed is not None:
            crashed = f"{kernel.crashed.kind}:{kernel.crashed.component}"
        elif kernel.budget_exhausted:
            crashed = "exhausted"
    if with_faults and warn_shortfall and armed["count"] < n_faults:
        print(
            f"run_webserver: armed only {armed['count']}/{n_faults} faults "
            f"(progress stalled at {server.served}/{n_requests} served)",
            file=sys.stderr,
        )
    # Duration is *progress* time: the clock of the last completed
    # response.  A run that crashed before serving anything has made
    # zero progress — ``kernel.clock.now`` would credit boot, arming,
    # and post-crash idling as serving time and turn 0 served / big
    # duration into a plausible-looking (tiny) throughput instead of
    # the honest 0/0.
    end = server.samples[-1][0] if server.samples else 0
    slo_cycles: Optional[int] = None
    slo_ok = 0
    if slo_us is not None:
        slo_cycles = int(slo_us) * CYCLES_PER_US
        slo_ok = sum(1 for lat in server.latencies if lat <= slo_cycles)
    return LoadResult(
        requests=n_requests,
        served=server.served,
        errors=server.errors,
        duration_cycles=end,
        reboots=system.booter.reboots,
        ft_mode=ft_mode,
        faults_injected=len(swifi.delivered) if swifi else 0,
        faults_armed=armed["count"],
        steps=steps,
        crashed=crashed,
        series=server.samples,
        latencies=server.latencies,
        peak_outstanding=server.peak_outstanding,
        open_loop=arrival_spec is not None,
        slo_cycles=slo_cycles,
        slo_ok=slo_ok,
    )
