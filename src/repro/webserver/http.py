"""Minimal HTTP/1.0 parsing and response formatting.

The paper's web server is "a custom web server implemented in COMPOSITE";
requests here are real HTTP byte strings so the parsing work the server
charges for corresponds to actual request structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

CRLF = "\r\n"

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


@dataclass
class HttpRequest:
    method: str
    path: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() == "keep-alive"


def parse_request(raw: bytes) -> Optional[HttpRequest]:
    """Parse an HTTP request head; None if malformed."""
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError:
        return None
    head, __, __ = text.partition(CRLF + CRLF)
    lines = head.split(CRLF)
    if not lines or not lines[0]:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, path, version = parts
    if method not in ("GET", "HEAD", "POST"):
        return None
    if not path.startswith("/"):
        return None
    if not version.startswith("HTTP/"):
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, path=path, version=version, headers=headers)


def build_request(
    path: str, keep_alive: bool = False, weight: int = 1
) -> bytes:
    """An ``ab``-style GET request for ``path``.

    ``weight`` > 1 marks a heavy-tailed request (open-loop arrivals):
    the server reads the content ``weight`` times and scales its
    application compute to match, modelling a ``weight``-times-larger
    object.  Weight-1 requests are byte-identical to the historical
    closed-loop form.
    """
    headers = [f"GET {path} HTTP/1.0", "Host: localhost",
               "User-Agent: ApacheBench/2.3"]
    if keep_alive:
        headers.append("Connection: keep-alive")
    if weight > 1:
        headers.append(f"X-Weight: {weight}")
    return (CRLF.join(headers) + CRLF + CRLF).encode("ascii")


def build_response(status: int, body: bytes, content_type: str = "text/html") -> bytes:
    """Format an HTTP/1.0 response."""
    reason = STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.0 {status} {reason}{CRLF}"
        f"Content-Type: {content_type}{CRLF}"
        f"Content-Length: {len(body)}{CRLF}"
        f"Server: repro-composite/1.0{CRLF}{CRLF}"
    )
    return head.encode("ascii") + body
