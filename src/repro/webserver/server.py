"""The componentized web server (Section V-E).

"This web server ... makes use of all system-level components": each
request exercises the event manager (connection arrival), the lock
component (shared connection-table lock), the RAM filesystem (static
content), and periodically the memory manager (buffer pages) and the
timer manager (housekeeping); the scheduler blocks/wakes the worker
threads throughout.

The server is an application component (never a fault-injection target);
its request-processing compute is charged in virtual cycles calibrated so
that the stub-tracking overhead lands in the paper's measured range
(~10-12% of per-request cost).
"""

from __future__ import annotations

from typing import Dict, List

from repro.composite.thread import Invoke, Yield
from repro.webserver.components import (
    ConnectionManagerComponent,
    HttpParserComponent,
)
from repro.webserver.http import build_response

#: Virtual cycles of application work per request (routing, response
#: formatting, copying) on top of the component invocations.
APP_REQUEST_CYCLES = 2_400

#: Requests between buffer-page recycling through the memory manager.
MM_RECYCLE_PERIOD = 64

#: Housekeeping timer period in cycles.
HOUSEKEEPING_PERIOD = 400_000

#: Static site content installed into RamFS at startup.
DEFAULT_SITE: Dict[str, bytes] = {
    "index.html": b"<html><body><h1>COMPOSITE web server</h1></body></html>",
    "about.html": b"<html><body>Interface-driven recovery demo.</body></html>",
    "data.bin": bytes(range(64)),
}


class WebServer:
    """Installs server threads into a built system and serves requests.

    The load generator (see :mod:`repro.webserver.loadgen`) enqueues raw
    HTTP requests and triggers the connection event; worker threads wait
    on the event, parse, read content from RamFS, and format responses.
    """

    def __init__(self, system, home: str = "app0", n_workers: int = 2):
        self.system = system
        self.home = home
        self.n_workers = n_workers
        self.pending: List[bytes] = []
        self.responses: List[bytes] = []
        self.served = 0
        self.errors = 0
        self.evt_conn = None
        self.stats_lock = None
        self.file_fds: Dict[str, int] = {}
        self.stopping = False
        #: (virtual clock, served count) samples for the time series.
        self.samples: List[tuple] = []
        #: Optional hook invoked with the served count after each request
        #: (used by the fault-injection variant of the load generator).
        self.on_served = None

    # ------------------------------------------------------------------
    def install(self) -> None:
        kernel = self.system.kernel
        # The request path's own components (the paper's web server is
        # decomposed into many separate components).
        if "httpparse" not in kernel.components:
            kernel.register_component(HttpParserComponent())
        if "connmgr" not in kernel.components:
            kernel.register_component(ConnectionManagerComponent())
        kernel.grant_all_caps()
        kernel.create_thread(
            "ws-init", prio=3, home=self.home, body_factory=self._init_body
        )
        for index in range(self.n_workers):
            kernel.create_thread(
                f"ws-worker{index}", prio=5, home=self.home,
                body_factory=self._worker_body,
            )
        kernel.create_thread(
            "ws-housekeeping", prio=6, home=self.home,
            body_factory=self._housekeeping_body,
        )

    # ------------------------------------------------------------------
    def _init_body(self, system, thread):
        """Set up the site content and the shared server resources."""
        self.stats_lock = yield Invoke("lock", "lock_alloc", self.home)
        self.evt_conn = yield Invoke("event", "evt_split", self.home, 0, 7)
        for name, body in DEFAULT_SITE.items():
            fd = yield Invoke("ramfs", "tsplit", self.home, 1, name)
            yield Invoke("ramfs", "twrite", self.home, fd, body)
            self.file_fds[name] = fd
        # A page of buffer memory for the connection table.
        yield Invoke("mm", "mman_get_page", self.home, 0x0100_0000)

    # ------------------------------------------------------------------
    def _worker_body(self, system, thread):
        kernel = self.system.kernel
        while self.evt_conn is None:
            yield Yield()
        handled = 0
        while True:
            if self.stopping and not self.pending:
                return
            if not self.pending:
                waited = yield Invoke(
                    "event", "evt_wait", self.home, self.evt_conn
                )
                if waited != 0 or (self.stopping and not self.pending):
                    continue
            if not self.pending:
                continue
            raw = self.pending.pop(0)
            response = yield from self._handle(kernel, raw)
            self.responses.append(response)
            self.served += 1
            self.samples.append((kernel.clock.now, self.served))
            if self.on_served is not None:
                self.on_served(self.served)
            handled += 1
            if handled % MM_RECYCLE_PERIOD == 0:
                # Recycle a buffer page through the memory manager.
                va = 0x0200_0000 + (thread.tid << 16)
                got = yield Invoke("mm", "mman_get_page", self.home, va)
                if got == va:
                    yield Invoke("mm", "mman_release_page", self.home, va)

    def _handle(self, kernel, raw: bytes):
        """Drive the request through the component pipeline.

        connmgr (accept) -> httpparse (parse) -> lock (shared stats) ->
        ramfs (content) -> connmgr (account + close), plus fixed
        application work for routing/formatting.
        """
        kernel.charge(kernel.current, APP_REQUEST_CYCLES)
        conn_id = yield Invoke("connmgr", "conn_open", "client")
        request = yield Invoke("httpparse", "http_parse", raw)
        if request is None:
            self.errors += 1
            yield Invoke("connmgr", "conn_close", conn_id)
            return build_response(400, b"bad request")
        name = request.path.lstrip("/") or "index.html"
        # Shared connection-table update under the stats lock.
        yield Invoke("lock", "lock_take", self.home, self.stats_lock)
        yield Invoke("connmgr", "conn_note", conn_id, request.path)
        yield Invoke("lock", "lock_release", self.home, self.stats_lock)
        fd = self.file_fds.get(name)
        if fd is None:
            self.errors += 1
            yield Invoke("connmgr", "conn_close", conn_id)
            return build_response(404, b"not found")
        yield Invoke("ramfs", "tseek", self.home, fd, 0)
        body = yield Invoke(
            "ramfs", "tread", self.home, fd, len(DEFAULT_SITE[name])
        )
        yield Invoke("connmgr", "conn_close", conn_id)
        return build_response(200, body)

    # ------------------------------------------------------------------
    def _housekeeping_body(self, system, thread):
        while self.evt_conn is None:
            yield Yield()
        tmid = yield Invoke(
            "timer", "timer_alloc", self.home, HOUSEKEEPING_PERIOD
        )
        while not self.stopping:
            yield Invoke("timer", "timer_block", self.home, tmid)

    # ------------------------------------------------------------------
    # Load-generator interface
    # ------------------------------------------------------------------
    def submit(self, raw: bytes) -> None:
        self.pending.append(raw)

    def stop(self) -> None:
        self.stopping = True
