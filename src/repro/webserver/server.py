"""The componentized web server (Section V-E).

"This web server ... makes use of all system-level components": each
request exercises the event manager (connection arrival), the lock
component (shared connection-table lock), the RAM filesystem (static
content), and periodically the memory manager (buffer pages) and the
timer manager (housekeeping); the scheduler blocks/wakes the worker
threads throughout.

The server is an application component (never a fault-injection target);
its request-processing compute is charged in virtual cycles calibrated so
that the stub-tracking overhead lands in the paper's measured range
(~10-12% of per-request cost).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.composite.thread import Invoke, Yield
from repro.webserver.components import (
    ConnectionManagerComponent,
    HttpParserComponent,
)
from repro.webserver.http import build_response

#: Virtual cycles of application work per request (routing, response
#: formatting, copying) on top of the component invocations.
APP_REQUEST_CYCLES = 2_400

#: Extra application cycles per additional content chunk of a weighted
#: (heavy-tailed) request, on top of the extra tseek/tread invocations.
APP_CHUNK_CYCLES = 800

#: Requests between buffer-page recycling through the memory manager.
MM_RECYCLE_PERIOD = 64

#: Housekeeping timer period in cycles.
HOUSEKEEPING_PERIOD = 400_000

#: A completion-to-completion gap above this many virtual cycles counts
#: as a throughput dip.  Fault-free serving (two workers pipelining
#: ~11.6k-cycle requests, plus housekeeping) peaks at ~23k-cycle gaps;
#: a micro-reboot plus descriptor recovery stretches a gap past 26k.
#: Dips are recorded on the server (:attr:`WebServer.dips`) and, when
#: tracing is on, emitted as ``throughput_dip`` flight-recorder events.
DIP_THRESHOLD_CYCLES = 24_000


def register_webserver_components(kernel) -> None:
    """Register the web server's own application components.

    Idempotent, and deliberately separate from :meth:`WebServer.install`
    so the system pool can register (and seal) the components once per
    process while each pooled run installs only fresh threads.
    """
    if "httpparse" not in kernel.components:
        kernel.register_component(HttpParserComponent())
    if "connmgr" not in kernel.components:
        kernel.register_component(ConnectionManagerComponent())
    kernel.grant_all_caps()


class WebServer:
    """Installs server threads into a built system and serves requests.

    The load generator (see :mod:`repro.webserver.loadgen`) enqueues raw
    HTTP requests and triggers the connection event; worker threads wait
    on the event, parse, read content from RamFS, and format responses.
    """

    def __init__(self, system, home: str = "app0", n_workers: int = 2):
        self.system = system
        self.home = home
        self.n_workers = n_workers
        #: Queued-but-unclaimed requests as ``(rid, submit_clock, raw)``.
        #: A deque: workers consume from the head, and with tens of
        #: thousands of requests a ``list.pop(0)`` made the worker loop
        #: O(queue) per request.
        self.pending: Deque[Tuple[int, int, bytes]] = deque()
        self.responses: List[bytes] = []
        self.submitted = 0
        self.served = 0
        self.errors = 0
        self.evt_conn = None
        self.stats_lock = None
        self.file_fds: Dict[str, int] = {}
        self.stopping = False
        #: (virtual clock, served count) samples for the time series.
        self.samples: List[tuple] = []
        #: (virtual clock, submitted count) samples — with
        #: :attr:`samples` this reconstructs the outstanding-request
        #: count at every instant of the run.
        self.submit_samples: List[tuple] = []
        #: Per-request latency in virtual cycles (submit -> response),
        #: in completion order.
        self.latencies: List[int] = []
        #: (clock, gap_cycles) for every completion-to-completion gap
        #: above :data:`DIP_THRESHOLD_CYCLES`.
        self.dips: List[Tuple[int, int]] = []
        #: High-water mark of :attr:`outstanding` (open-loop runs grow
        #: this without bound under overload; closed-loop runs cap it at
        #: the generator's concurrency).
        self.peak_outstanding = 0
        self._last_done_clock: Optional[int] = None
        #: Optional hook invoked with the served count after each request
        #: (used by the fault-injection variant of the load generator).
        self.on_served = None

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet responded to (ab's "concurrent
        requests"): queued ones plus those being processed by workers."""
        return self.submitted - self.served

    # ------------------------------------------------------------------
    def install(self) -> None:
        kernel = self.system.kernel
        # The request path's own components (the paper's web server is
        # decomposed into many separate components).
        register_webserver_components(kernel)
        kernel.create_thread(
            "ws-init", prio=3, home=self.home, body_factory=self._init_body
        )
        for index in range(self.n_workers):
            kernel.create_thread(
                f"ws-worker{index}", prio=5, home=self.home,
                body_factory=self._worker_body,
            )
        kernel.create_thread(
            "ws-housekeeping", prio=6, home=self.home,
            body_factory=self._housekeeping_body,
        )

    # ------------------------------------------------------------------
    def _init_body(self, system, thread):
        """Set up the site content and the shared server resources."""
        from repro.webserver.server import DEFAULT_SITE  # noqa: F401 (doc)

        self.stats_lock = yield Invoke("lock", "lock_alloc", self.home)
        self.evt_conn = yield Invoke("event", "evt_split", self.home, 0, 7)
        for name, body in DEFAULT_SITE.items():
            fd = yield Invoke("ramfs", "tsplit", self.home, 1, name)
            yield Invoke("ramfs", "twrite", self.home, fd, body)
            self.file_fds[name] = fd
        # A page of buffer memory for the connection table.
        yield Invoke("mm", "mman_get_page", self.home, 0x0100_0000)

    # ------------------------------------------------------------------
    def _worker_body(self, system, thread):
        kernel = self.system.kernel
        while self.evt_conn is None:
            yield Yield()
        handled = 0
        while True:
            if self.stopping and not self.pending:
                return
            if not self.pending:
                waited = yield Invoke(
                    "event", "evt_wait", self.home, self.evt_conn
                )
                if waited != 0 or (self.stopping and not self.pending):
                    continue
            if not self.pending:
                continue
            rid, submitted_at, raw = self.pending.popleft()
            status, response = yield from self._handle(kernel, raw)
            self.responses.append(response)
            self.served += 1
            now = kernel.clock.now
            self.samples.append((now, self.served))
            self._note_completion(kernel, rid, status, now, submitted_at)
            if self.on_served is not None:
                self.on_served(self.served)
            handled += 1
            if handled % MM_RECYCLE_PERIOD == 0:
                # Recycle a buffer page through the memory manager.
                va = 0x0200_0000 + (thread.tid << 16)
                got = yield Invoke("mm", "mman_get_page", self.home, va)
                if got == va:
                    yield Invoke("mm", "mman_release_page", self.home, va)

    def _note_completion(
        self, kernel, rid: int, status: int, now: int, submitted_at: int
    ) -> None:
        """Record latency and throughput-dip bookkeeping for one response."""
        latency = now - submitted_at
        self.latencies.append(latency)
        gap = None
        if self._last_done_clock is not None:
            gap = now - self._last_done_clock
            if gap > DIP_THRESHOLD_CYCLES:
                self.dips.append((now, gap))
        self._last_done_clock = now
        recorder = kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "request_done", rid=rid, status=status, latency_cycles=latency
            )
            recorder.metrics.histogram("request_latency_cycles").observe(
                latency
            )
            if gap is not None and gap > DIP_THRESHOLD_CYCLES:
                recorder.emit(
                    "throughput_dip", gap_cycles=gap, served=self.served
                )
                recorder.metrics.histogram("dip_gap_cycles").observe(gap)

    def _handle(self, kernel, raw: bytes):
        """Drive the request through the component pipeline.

        connmgr (accept) -> httpparse (parse) -> lock (shared stats) ->
        ramfs (content) -> connmgr (account + close), plus fixed
        application work for routing/formatting.  Returns ``(status,
        response_bytes)``.

        An ``X-Weight: w`` header (heavy-tailed open-loop arrivals)
        models a ``w``-times-larger object: the content is read in ``w``
        tseek/tread round trips and the application compute grows by
        :data:`APP_CHUNK_CYCLES` per extra chunk.  Weight-1 requests
        follow the exact historical invocation sequence.
        """
        kernel.charge(kernel.current, APP_REQUEST_CYCLES)
        conn_id = yield Invoke("connmgr", "conn_open", "client")
        request = yield Invoke("httpparse", "http_parse", raw)
        if request is None:
            self.errors += 1
            yield Invoke("connmgr", "conn_close", conn_id)
            return 400, build_response(400, b"bad request")
        name = request.path.lstrip("/") or "index.html"
        try:
            weight = max(1, int(request.headers.get("x-weight", "1")))
        except ValueError:
            weight = 1
        if weight > 1:
            kernel.charge(kernel.current, (weight - 1) * APP_CHUNK_CYCLES)
        # Shared connection-table update under the stats lock.
        yield Invoke("lock", "lock_take", self.home, self.stats_lock)
        yield Invoke("connmgr", "conn_note", conn_id, request.path)
        yield Invoke("lock", "lock_release", self.home, self.stats_lock)
        fd = self.file_fds.get(name)
        if fd is None:
            self.errors += 1
            yield Invoke("connmgr", "conn_close", conn_id)
            return 404, build_response(404, b"not found")
        body = b""
        for __ in range(weight):
            yield Invoke("ramfs", "tseek", self.home, fd, 0)
            body = yield Invoke(
                "ramfs", "tread", self.home, fd, len(DEFAULT_SITE[name])
            )
        yield Invoke("connmgr", "conn_close", conn_id)
        return 200, build_response(200, body)

    # ------------------------------------------------------------------
    def _housekeeping_body(self, system, thread):
        while self.evt_conn is None:
            yield Yield()
        tmid = yield Invoke(
            "timer", "timer_alloc", self.home, HOUSEKEEPING_PERIOD
        )
        while not self.stopping:
            yield Invoke("timer", "timer_block", self.home, tmid)

    # ------------------------------------------------------------------
    # Load-generator interface
    # ------------------------------------------------------------------
    def submit(self, raw: bytes, at: Optional[int] = None) -> int:
        """Enqueue one raw request; returns its request id.

        ``at`` back-dates the request to its open-loop *arrival* instant
        (the submit tick quantizes arrivals, but latency and SLO
        accounting must start when the request arrived, not when the
        generator got around to it).  Closed-loop submits leave it None
        and stamp the current clock.
        """
        rid = self.submitted
        now = self.system.kernel.clock.now
        submitted_at = now if at is None else at
        self.pending.append((rid, submitted_at, raw))
        self.submitted += 1
        self.submit_samples.append((now, self.submitted))
        if self.outstanding > self.peak_outstanding:
            self.peak_outstanding = self.outstanding
        recorder = self.system.kernel.recorder
        if recorder.enabled:
            recorder.emit("request_start", rid=rid, queued=len(self.pending))
        return rid

    def stop(self) -> None:
        self.stopping = True


#: Static site content installed into RamFS at startup.
DEFAULT_SITE: Dict[str, bytes] = {
    "index.html": b"<html><body><h1>COMPOSITE web server</h1></body></html>",
    "about.html": b"<html><body>Interface-driven recovery demo.</body></html>",
    "data.bin": bytes(range(64)),
}
