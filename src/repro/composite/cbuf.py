"""Zero-copy shared buffer manager (cbufs).

Models the CBufs subsystem the paper's RamFS uses to share file data with
the storage component: all but the producing component get *read-only*
access, which prevents fault propagation through the buffer
(Section II-C).  Like the kernel and storage, this component is assumed
protected and is never a fault-injection target (Section II-E).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.composite.component import Component, export
from repro.errors import ReproError

#: Per-operation base cost plus a per-16-bytes transfer cost.
CBUF_OP_CYCLES = 80
CBUF_BYTE_CYCLES_SHIFT = 4


class _Cbuf:
    __slots__ = ("owner", "data", "readers")

    def __init__(self, owner: str, size: int):
        self.owner = owner
        self.data = bytearray(size)
        self.readers: Set[str] = set()


class CbufManager(Component):
    def __init__(self, name: str = "cbuf"):
        super().__init__(name)
        self.buffers: Dict[int, _Cbuf] = {}
        self._next_id = 1

    def reinit(self) -> None:
        # Protected component: contents survive other components' reboots.
        if not hasattr(self, "buffers") or self.buffers is None:
            self.buffers = {}
            self._next_id = 1

    def pool_seal(self) -> None:
        self._sealed_buffers = {
            cbid: (buf.owner, bytes(buf.data), set(buf.readers))
            for cbid, buf in self.buffers.items()
        }
        self._sealed_next_id = self._next_id

    def _pool_restore_impl(self) -> None:
        # Like storage, reinit preserves contents; pooled restores
        # reinstate deep copies of the sealed buffers instead.
        super()._pool_restore_impl()
        self.buffers = {}
        for cbid, (owner, data, readers) in getattr(
            self, "_sealed_buffers", {}
        ).items():
            buf = _Cbuf(owner, len(data))
            buf.data[:] = data
            buf.readers = set(readers)
            self.buffers[cbid] = buf
        self._next_id = getattr(self, "_sealed_next_id", 1)

    def _charge(self, thread, nbytes: int = 0) -> None:
        self.kernel.charge(
            thread, CBUF_OP_CYCLES + (nbytes >> CBUF_BYTE_CYCLES_SHIFT)
        )

    # ------------------------------------------------------------------
    @export
    def cbuf_alloc(self, thread, spdid, size) -> int:
        self._charge(thread)
        cbid = self._next_id
        self._next_id += 1
        self.buffers[cbid] = _Cbuf(spdid, size)
        return cbid

    @export
    def cbuf_map(self, thread, spdid, cbid) -> int:
        """Grant ``spdid`` read-only access to the buffer."""
        self._charge(thread)
        if cbid not in self.buffers:
            return -1
        self.buffers[cbid].readers.add(spdid)
        return 0

    @export
    def cbuf_write(self, thread, spdid, cbid, offset, data) -> int:
        """Write into the buffer; only the producer may write."""
        self._charge(thread, len(data))
        buf = self.buffers.get(cbid)
        if buf is None:
            return -1
        if buf.owner != spdid:
            raise ReproError(
                f"{spdid} attempted to write read-only cbuf {cbid} "
                f"owned by {buf.owner}"
            )
        end = offset + len(data)
        if end > len(buf.data):
            buf.data.extend(b"\x00" * (end - len(buf.data)))
        buf.data[offset:end] = data
        return len(data)

    @export
    def cbuf_read(self, thread, spdid, cbid, offset, nbytes) -> bytes:
        self._charge(thread, nbytes)
        buf = self.buffers.get(cbid)
        if buf is None:
            return b""
        if spdid != buf.owner and spdid not in buf.readers:
            raise ReproError(f"{spdid} has no mapping for cbuf {cbid}")
        return bytes(buf.data[offset:offset + nbytes])

    @export
    def cbuf_size(self, thread, spdid, cbid) -> int:
        self._charge(thread)
        buf = self.buffers.get(cbid)
        return -1 if buf is None else len(buf.data)

    @export
    def cbuf_free(self, thread, spdid, cbid) -> int:
        self._charge(thread)
        buf = self.buffers.get(cbid)
        if buf is None:
            return -1
        if buf.owner != spdid:
            return -1
        del self.buffers[cbid]
        return 0
