"""The simulated COMPOSITE kernel.

Responsibilities, mirroring the real kernel of Section II-B:

* capability-mediated, synchronous component invocation (thread migration);
* the thread run loop (driven by :class:`~repro.composite.scheduler.RunQueue`
  and :class:`~repro.composite.scheduler.VirtualClock`);
* blocking/wakeup of threads inside server components;
* vectoring detected faults to the booter component, which micro-reboots
  the faulty component (Section III-D steps 2-4);
* upcalls into client components (used by MM recovery and U0); and
* reflection: letting a recovering service query kernel-held thread state.

Client-side interface stubs (hand-written C^3 or SuperGlue-generated) are
registered per (client, server) pair and interpose on every invocation —
exactly where the paper's stub code sits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.composite.scheduler import RunQueue, VirtualClock
from repro.composite.thread import Invoke, SimThread, Sleep, ThreadState, Yield
from repro.observe import recorder_for
from repro.errors import (
    BlockThread,
    CapabilityError,
    ConfigurationError,
    ReproError,
    SimulatedFault,
    SystemHang,
)

#: Sentinel returned by :meth:`Kernel.raw_invoke` when the server faulted
#: during the invocation and was micro-rebooted.  The client stub's redo
#: loop (Fig. 4) checks for it.
FAULT = type("_Fault", (), {"__repr__": lambda self: "<FAULT>"})()

#: Cycle cost of one component invocation (capability lookup + page-table
#: switch).  The paper reports kernel paths of ~0.5us at 2.4 GHz as the
#: *longest*; a typical invocation is a fraction of that.
INVOCATION_CYCLES = 600

#: Cycle cost of an upcall (same mechanism, executed from the kernel).
UPCALL_CYCLES = 700


class Kernel:
    """The simulated kernel plus the simulation loop."""

    def __init__(self, ft_mode: str = "none"):
        """``ft_mode`` is one of ``"none"``, ``"c3"``, ``"superglue"``.

        With ``"none"`` a detected component fault crashes the whole system
        (no recovery infrastructure), which is the unprotected baseline.
        """
        if ft_mode not in ("none", "c3", "superglue"):
            raise ConfigurationError(f"unknown ft_mode {ft_mode!r}")
        self.ft_mode = ft_mode
        self.clock = VirtualClock()
        #: Flight recorder (repro.observe): the shared no-op singleton
        #: unless tracing is enabled, in which case a live ring-buffer
        #: recorder stamped by this kernel's virtual clock.  Hot paths
        #: guard every emission on ``recorder.enabled``.
        self.recorder = recorder_for(self.clock)
        self.run_queue = RunQueue()
        self.components: Dict[str, object] = {}
        self.threads: Dict[int, SimThread] = {}
        self._caps: Dict[Tuple[str, str], bool] = {}
        self._stubs: Dict[Tuple[str, str], object] = {}
        self._server_stubs: Dict[str, object] = {}
        self.booter = None
        self.recovery_manager = None
        self.swifi = None
        self.crashed: Optional[SimulatedFault] = None
        self.current: Optional[SimThread] = None
        self._next_tid = 1
        self._next_image_base = 0x0100_0000
        self.stats = {
            "invocations": 0,
            "upcalls": 0,
            "faults_vectored": 0,
            "micro_reboots": 0,
            "steps": 0,
            # Two-tier trace engine accounting (see composite.fastpath and
            # the trace cache in composite.services.common).
            "interp_fast_runs": 0,
            "interp_slow_runs": 0,
            "trace_cache_hits": 0,
            "trace_cache_misses": 0,
            # Tier-3 super-trace accounting (see composite.supertrace):
            # invocation units replayed vs routed to the authoritative
            # dispatch path while a replay session was attached.
            "super_trace_runs": 0,
            "super_trace_bypasses": 0,
            # Divergence-tail accounting: prefix divergence events, units
            # run plain-authoritative after divergence, tail units
            # replayed from the tail cache, and tails sealed this run.
            "super_trace_divergences": 0,
            "super_trace_divergent_units": 0,
            "super_trace_tail_runs": 0,
            "super_trace_tail_records": 0,
            # Times a run() call returned with its step budget exhausted
            # while runnable/blocked work remained (see Kernel.run).
            "budget_exhausted": 0,
        }
        #: Whether the most recent run() ended on an exhausted budget.
        self.last_run_exhausted = False
        #: Attached tier-3 session (RecordingSession / ReplaySession),
        #: or None for plain two-tier execution.
        self._supertrace = None
        #: Hooks observing every fault vectoring: f(component, fault).
        self.fault_observers: List[Callable] = []
        self._sealed_fault_observers: Optional[List[Callable]] = None

    # ------------------------------------------------------------------
    # System-pool snapshot/restore (see repro.system.SystemSnapshot)
    # ------------------------------------------------------------------
    def pool_seal(self) -> None:
        """Capture post-boot kernel state a pooled restore reinstates."""
        self._sealed_fault_observers = list(self.fault_observers)
        self._sealed_zero_stats = dict.fromkeys(self.stats, 0)

    def pool_restore(self) -> None:
        """Reset every per-run kernel structure to its post-boot state.

        Static wiring — components, capabilities, stubs, the booter and
        recovery-manager references — is left alone; components restore
        their own images and state via ``Component.pool_restore``.
        """
        self.clock.reset()
        self.recorder = recorder_for(self.clock)
        self.run_queue.reset()
        self.threads.clear()
        self._next_tid = 1
        self.crashed = None
        self.current = None
        self.swifi = None
        self.last_run_exhausted = False
        self._supertrace = None
        zero = getattr(self, "_sealed_zero_stats", None)
        if zero is not None:
            # In-place zeroing that keeps the dict's identity (compiled
            # super-trace units bind it) — update() beats a Python loop.
            self.stats.update(zero)
        else:
            for key in self.stats:
                self.stats[key] = 0
        if self._sealed_fault_observers is not None:
            self.fault_observers = list(self._sealed_fault_observers)
        else:
            self.fault_observers.clear()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_component(self, component) -> None:
        if component.name in self.components:
            raise ConfigurationError(f"duplicate component {component.name!r}")
        self.components[component.name] = component
        component.attach(self, self._next_image_base)
        self._next_image_base += 0x0100_0000

    def component(self, name: str):
        try:
            return self.components[name]
        except KeyError:
            raise ConfigurationError(f"no component named {name!r}") from None

    def grant_cap(self, client: str, server: str) -> None:
        self._caps[(client, server)] = True

    def grant_all_caps(self) -> None:
        """Convenience for tests: full connectivity."""
        for client in self.components:
            for server in self.components:
                self._caps[(client, server)] = True

    def register_stub(self, client: str, server: str, stub) -> None:
        self._stubs[(client, server)] = stub

    def stub_for(self, client: str, server: str):
        return self._stubs.get((client, server))

    def register_server_stub(self, server: str, stub) -> None:
        self._server_stubs[server] = stub

    def server_stub_for(self, server: str):
        return self._server_stubs.get(server)

    def all_stubs_for_server(self, server: str) -> List[object]:
        return [s for (c, sv), s in self._stubs.items() if sv == server]

    def all_client_stubs(self) -> Dict[Tuple[str, str], object]:
        return dict(self._stubs)

    def all_server_stubs(self) -> Dict[str, object]:
        return dict(self._server_stubs)

    def create_thread(self, name: str, prio: int, home: str, body_factory) -> SimThread:
        thread = SimThread(self._next_tid, name, prio, home, body_factory)
        self._next_tid += 1
        self.threads[thread.tid] = thread
        self.run_queue.add(thread)
        return thread

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def charge(self, thread: Optional[SimThread], cycles: int) -> None:
        # Inline of clock.advance: charge is the hottest kernel entry
        # point and internal callers never pass negative cycles.
        self.clock.now += cycles
        if thread is not None:
            thread.cycles += cycles

    # ------------------------------------------------------------------
    # Invocation path
    # ------------------------------------------------------------------
    def invoke(self, thread: SimThread, action: Invoke):
        """Top-level component invocation, interposed by a client stub.

        With a tier-3 session attached (``composite.supertrace``), the
        session interposes here: a ReplaySession applies the recorded
        unit when its guard proves equivalence, and a RecordingSession
        diffs the authoritative execution into a new unit.  Nested
        invocations made *inside* a unit (``Component.call``) re-enter
        with ``busy`` set and run authoritatively.
        """
        st = self._supertrace
        if st is not None and not st.busy:
            return st.on_invoke(self, thread, action)
        return self._invoke_impl(thread, action)

    def _invoke_impl(self, thread: SimThread, action: Invoke):
        """The authoritative invocation path (two-tier engine)."""
        client = thread.executing_in or thread.home
        if not self._caps.get((client, action.server)):
            raise CapabilityError(
                f"{client} holds no capability for {action.server}"
            )
        stub = self._stubs.get((client, action.server))
        thread._last_stub = stub
        self.stats["invocations"] += 1
        thread.invocations += 1
        recorder = self.recorder
        if not recorder.enabled:
            return self._dispatch_invoke(thread, action, stub)
        # Traced invocation span: entry event plus a completion event
        # carrying the span's status and virtual-cycle cost.
        recorder.emit(
            "invoke",
            tid=thread.tid,
            client=client,
            server=action.server,
            fn=action.fn,
        )
        start = self.clock.now
        status = "ok"
        try:
            return self._dispatch_invoke(thread, action, stub)
        except BlockThread:
            status = "blocked"
            raise
        except SimulatedFault:
            status = "crash"
            raise
        finally:
            recorder.emit(
                "invoke_end",
                tid=thread.tid,
                server=action.server,
                fn=action.fn,
                status=status,
                cycles=self.clock.now - start,
            )

    def _dispatch_invoke(self, thread: SimThread, action: Invoke, stub):
        """Route an invocation through its client stub (if any)."""
        if stub is None:
            result = self.raw_invoke(thread, action.server, action.fn, action.args)
            if result is FAULT:
                # No stub means no recovery protocol: surface as a crash.
                raise SimulatedFault(
                    f"unrecovered fault in {action.server}",
                    component=action.server,
                    recoverable=False,
                )
            return result
        return stub.invoke(self, thread, action.fn, action.args)

    def raw_invoke(self, thread: SimThread, server: str, fn: str, args):
        """Capability-checked entry into the server's dispatch.

        Returns the server's return value, or the :data:`FAULT` sentinel if
        the server fail-stopped and was micro-rebooted (only in a fault-
        tolerant mode).  :class:`~repro.errors.BlockThread` propagates to
        the run loop, which parks the thread.
        """
        component = self.component(server)
        self.charge(thread, INVOCATION_CYCLES)
        prev = thread.executing_in
        thread.executing_in = server
        server_stub = self._server_stubs.get(server)
        try:
            if server_stub is not None:
                return server_stub.dispatch(self, thread, fn, args)
            return component.dispatch(fn, thread, args)
        except BlockThread:
            raise
        except SimulatedFault as fault:
            if not fault.recoverable:
                raise
            self.vector_fault(component, fault)
            if self.ft_mode == "none":
                raise SimulatedFault(
                    f"fault in {server} with no recovery: system reboot "
                    f"required ({fault})",
                    component=server,
                    recoverable=False,
                )
            return FAULT
        finally:
            thread.executing_in = prev

    def upcall(self, thread: SimThread, component_name: str, fn: str, *args):
        """Invoke a function in a (client) component from below.

        Used for MM mapping recovery and for U0 descriptor recreation.
        """
        component = self.component(component_name)
        self.charge(thread, UPCALL_CYCLES)
        self.stats["upcalls"] += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "upcall", tid=thread.tid, component=component_name, fn=fn
            )
        prev = thread.executing_in
        thread.executing_in = component_name
        try:
            return component.dispatch(fn, thread, args)
        finally:
            thread.executing_in = prev

    # ------------------------------------------------------------------
    # Fault vectoring and micro-reboot
    # ------------------------------------------------------------------
    def vector_fault(self, component, fault: SimulatedFault) -> None:
        """Hardware exception handler: divert to the booter (step 2)."""
        self.stats["faults_vectored"] += 1
        component.faults_detected += 1
        recorder = self.recorder
        if recorder.enabled:
            # Detection latency: virtual cycles between the SWIFI flip
            # landing and this fault being vectored (None for faults
            # with no preceding injection, e.g. monitor scrub hits on
            # residual corruption).
            latency = None
            if self.swifi is not None:
                latency = self.swifi.consume_delivery_latency(self.clock.now)
            if latency is not None:
                recorder.metrics.histogram(
                    "detection_latency_cycles"
                ).observe(latency)
            recorder.emit(
                "fault_vectored",
                component=component.name,
                kind=fault.kind,
                message=str(fault),
                detection_latency=latency,
            )
        for observer in self.fault_observers:
            observer(component, fault)
        if self.ft_mode == "none":
            return
        if self.booter is None:
            raise ConfigurationError("fault-tolerant mode without a booter")
        self.booter.handle_fault(component, fault)

    # ------------------------------------------------------------------
    # Blocking and wakeup
    # ------------------------------------------------------------------
    def _park(self, thread: SimThread, block: BlockThread, action: Invoke):
        thread.state = ThreadState.BLOCKED
        thread.blocked_in = block.component
        thread.block_token = block.token
        thread.block_invoke = action
        thread.block_on_wake = block.on_wake
        thread.block_stub = getattr(thread, "_last_stub", None)
        if block.timeout is not None:
            tid = thread.tid
            expected_token = block.token

            def _timeout_wake():
                t = self.threads.get(tid)
                if (
                    t is not None
                    and t.state is ThreadState.BLOCKED
                    and t.block_token == expected_token
                ):
                    self._unpark(t, timeout=True)

            self.clock.schedule(block.timeout, _timeout_wake)

    def _unpark(self, thread: SimThread, value=None, timeout=False, redo=False):
        thread.state = ThreadState.READY
        thread.blocked_in = None
        token = thread.block_token
        thread.block_token = None
        on_wake = thread.block_on_wake
        thread.block_on_wake = None
        stub = thread.block_stub
        thread.block_stub = None
        action = thread.block_invoke
        if redo:
            # Fault wakeup: the whole invocation must be re-issued through
            # the stub so recovery and re-blocking happen (T0 then redo).
            thread.pending = ("redo", action)
            return
        thread.block_invoke = None
        if on_wake is not None:
            value = on_wake(thread, token, timeout)
        if stub is not None and action is not None:
            # Defer the stub's completion tracking until the woken thread
            # is scheduled: the stub code runs on the woken thread, *after*
            # the waker's own invocation (and its tracking) completed —
            # otherwise a handoff's state transitions would be recorded in
            # inverted order.
            thread.pending = ("unblock", stub, action, value)
        else:
            thread.pending = ("value", value)

    def _sleep(self, thread: SimThread, until: int) -> None:
        """Handle a :class:`~repro.composite.thread.Sleep` action.

        The thread parks *outside* any component (``blocked_in`` stays
        ``None``), so fault wakeups (:meth:`wake_all_in`) and descriptor
        recovery never touch it; the wake is a plain clock callback,
        exactly like a timer expiry, so :meth:`VirtualClock
        .skip_to_next_expiry` covers it and a system that is only
        sleeping is never misdiagnosed as a hang.
        """
        if until <= self.clock.now:
            thread.pending = ("value", None)
            return
        thread.state = ThreadState.BLOCKED
        thread.blocked_in = None
        token = ("sleep", until)
        thread.block_token = token
        tid = thread.tid

        def _sleep_wake():
            t = self.threads.get(tid)
            if (
                t is not None
                and t.state is ThreadState.BLOCKED
                and t.blocked_in is None
                and t.block_token == token
            ):
                self._unpark(t)

        self.clock.schedule(until, _sleep_wake)

    def wake_token(self, component: str, token, value=None) -> int:
        """Wake all threads blocked in ``component`` on ``token``."""
        woken = 0
        for thread in self.run_queue.threads:
            if (
                thread.state is ThreadState.BLOCKED
                and thread.blocked_in == component
                and thread.block_token == token
            ):
                self._unpark(thread, value=value)
                woken += 1
        return woken

    def wake_all_in(self, component: str, redo: bool = True) -> int:
        """Fault wakeup (T0): wake every thread blocked in ``component``."""
        woken = 0
        for thread in self.run_queue.threads:
            if thread.state is ThreadState.BLOCKED and thread.blocked_in == component:
                self._unpark(thread, redo=redo)
                woken += 1
        return woken

    def blocked_threads_in(self, component: str) -> List[SimThread]:
        return [
            t
            for t in self.run_queue.threads
            if t.state is ThreadState.BLOCKED and t.blocked_in == component
        ]

    # ------------------------------------------------------------------
    # Reflection (kernel introspection used by recovering services)
    # ------------------------------------------------------------------
    def reflect_threads(self) -> List[dict]:
        """Expose kernel-held thread state (ids, priorities, block status).

        The scheduler service uses this after a micro-reboot to rebuild its
        thread bookkeeping, as in the C^3 scheduler recovery example.
        """
        return [
            {
                "tid": t.tid,
                "name": t.name,
                "prio": t.prio,
                "state": t.state.value,
                "blocked_in": t.blocked_in,
            }
            for t in self.run_queue.threads
        ]

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 1_000_000, max_cycles: Optional[int] = None):
        """Run until all threads finish, the system crashes, or a budget ends.

        Returns the number of scheduling steps taken.  Exhausting
        ``max_steps`` while live work remains is *not* clean completion
        — historically the two were indistinguishable, so callers could
        misread a livelocked run as success.  That condition is now
        counted in ``stats["budget_exhausted"]`` and exposed per call as
        :attr:`budget_exhausted` (reset at the start of each ``run()``,
        so a resumed system that later finishes cleanly is not still
        marked exhausted); workload ``check()`` paths and the campaign
        classifier consult it.
        """
        self.last_run_exhausted = False
        steps = 0
        # This loop runs tens of thousands of times per campaign: bind
        # the per-step collaborators once and batch the steps counter
        # into stats at exit (no mid-run reader observes it).
        clock = self.clock
        timers = clock._timers
        run_queue = self.run_queue
        pick = run_queue.pick
        step = self._step
        try:
            while steps < max_steps:
                if self.crashed is not None:
                    break
                if max_cycles is not None and clock.now >= max_cycles:
                    break
                if timers:
                    for callback in clock.pop_due():
                        callback()
                thread = pick()
                if thread is None:
                    if run_queue.all_done():
                        break
                    if not clock.skip_to_next_expiry():
                        raise SystemHang(
                            "all threads blocked with no pending timer "
                            "(deadlock)",
                            component="kernel",
                        )
                    continue
                step(thread)
                steps += 1
        finally:
            self.stats["steps"] += steps
        if (
            steps >= max_steps
            and self.crashed is None
            and not self.run_queue.all_done()
        ):
            self.stats["budget_exhausted"] += 1
            self.last_run_exhausted = True
        return steps

    @property
    def budget_exhausted(self) -> bool:
        """Did the most recent ``run()`` exhaust its step budget?"""
        return self.last_run_exhausted

    def _step(self, thread: SimThread) -> None:
        self.current = thread
        if thread.body is None:
            thread.start(self)
        pending = thread.pending
        thread.pending = None

        if pending is not None and pending[0] == "redo":
            # Re-issue a blocking invocation after a fault wakeup.
            self._perform(thread, pending[1])
            return
        if pending is not None and pending[0] == "unblock":
            # Run the stub's post-wakeup tracking on the woken thread.
            __, stub, action, value = pending
            st = self._supertrace
            if st is not None and not st.busy:
                value = st.on_unblock(self, thread, stub, action, value)
            else:
                value = stub.post_unblock(
                    self, thread, action.fn, action.args, value
                )
            pending = ("value", value)

        try:
            if pending is None:
                action = thread.body.send(None)
            elif pending[0] == "value":
                action = thread.body.send(pending[1])
            elif pending[0] == "throw":
                action = thread.body.throw(pending[1])
            else:  # pragma: no cover - defensive
                raise ReproError(f"bad pending {pending!r}")
        except StopIteration:
            thread.state = ThreadState.DONE
            return
        except SimulatedFault as fault:
            thread.state = ThreadState.CRASHED
            self.crashed = fault
            return

        if isinstance(action, Invoke):
            self._perform(thread, action)
        elif isinstance(action, Yield):
            thread.pending = ("value", None)
        elif isinstance(action, Sleep):
            self._sleep(thread, action.until)
        else:
            raise ReproError(f"thread {thread.name} yielded {action!r}")

    def _perform(self, thread: SimThread, action: Invoke) -> None:
        try:
            result = self.invoke(thread, action)
        except BlockThread as block:
            self._park(thread, block, action)
            return
        except SimulatedFault as fault:
            if fault.recoverable:  # pragma: no cover - defensive
                raise
            thread.state = ThreadState.CRASHED
            self.crashed = fault
            return
        thread.pending = ("value", result)
