"""Simulated threads.

COMPOSITE threads migrate synchronously between components on invocation
(Section II-B).  We model a thread as:

* a generator *body* (the workload code) that yields :class:`Invoke`
  actions to the simulator and receives the invocation's return value back;
* a private :class:`~repro.composite.machine.RegisterFile` — the state the
  SWIFI injector flips bits in;
* a fixed priority (smaller value = higher priority) used by the
  simulator's run queue, which is what makes *on-demand recovery at the
  accessing thread's priority* (T1) observable.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional

from repro.composite.machine import RegisterFile


class Invoke:
    """A component invocation request yielded by a thread body.

    Attributes:
        server: name of the server component.
        fn: interface function name.
        args: positional arguments (plain ints/strings — interface data).
    """

    __slots__ = ("server", "fn", "args")

    def __init__(self, server: str, fn: str, *args):
        self.server = server
        self.fn = fn
        self.args = args

    def __repr__(self):
        return f"Invoke({self.server}.{self.fn}{self.args!r})"


class Yield:
    """Cooperative yield: let equal-priority threads run."""

    __slots__ = ()

    def __repr__(self):
        return "Yield()"


class Sleep:
    """Park the thread until a virtual-clock instant, charging no CPU.

    Models waiting on the *outside world* — the open-loop load
    generator's arrival clock is a NIC raising interrupts, not work the
    simulated system performs.  The thread blocks directly on the
    kernel's clock, in no component: sleeping costs zero simulated
    cycles, is invisible to fault wakeups and descriptor recovery, and
    (unlike the timer service) involves no invocations that would
    distort the capacity the open-loop stream is calibrated against.
    A ``Sleep`` whose instant is already past resumes immediately.
    """

    __slots__ = ("until",)

    def __init__(self, until: int):
        self.until = until

    def __repr__(self):
        return f"Sleep(until={self.until})"


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    CRASHED = "crashed"


class SimThread:
    """A simulated thread.

    Attributes:
        tid: unique thread id.
        name: human-readable label.
        prio: fixed priority; smaller is more urgent.
        home: name of the component the thread's code lives in (the client
            side of its invocations).
        body_factory: callable ``(system, thread) -> generator`` producing
            the workload body; the body yields :class:`Invoke`/:class:`Yield`.
    """

    def __init__(
        self,
        tid: int,
        name: str,
        prio: int,
        home: str,
        body_factory: Callable[["object", "SimThread"], Iterator],
    ):
        self.tid = tid
        self.name = name
        self.prio = prio
        self.home = home
        self.body_factory = body_factory
        self.regs = RegisterFile()
        self.state = ThreadState.READY
        self.body: Optional[Iterator] = None
        # Value delivered to the body on next resume: ("value", v) or
        # ("throw", exc).  None means "first resume".
        self.pending = None
        # While blocked: the component name we are blocked in, the wait
        # token, and the original Invoke (for fault-redo), plus the client
        # stub whose post-tracking must run on wakeup.
        self.blocked_in: Optional[str] = None
        self.block_token = None
        self.block_invoke: Optional[Invoke] = None
        self.block_on_wake = None
        self.block_stub = None
        # The component the thread currently executes in (for SWIFI
        # targeting: faults are injected only into threads executing within
        # the target component).
        self.executing_in: Optional[str] = None
        # Statistics.
        self.cycles = 0
        self.invocations = 0

    def start(self, system) -> None:
        self.body = self.body_factory(system, self)

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.READY

    def __repr__(self):
        return (
            f"SimThread(tid={self.tid}, name={self.name!r}, prio={self.prio},"
            f" state={self.state.value})"
        )
