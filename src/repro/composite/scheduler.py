"""Simulator-level scheduling primitives: virtual clock and run queue.

This is the *simulator's* fixed-priority dispatcher, i.e. the stand-in for
the hardware timer plus the lowest-level context switch.  The *scheduler
service component* that the paper injects faults into lives in
:mod:`repro.composite.services.sched` and is itself scheduled by this run
queue like any other component.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.composite.thread import SimThread, ThreadState

#: Virtual cycles per microsecond: the paper's testbed is an Intel
#: i7-2760QM at 2.4 GHz with one core enabled.
CYCLES_PER_US = 2400


def cycles_to_us(cycles: int) -> float:
    """Convert virtual cycles to microseconds on the modelled 2.4 GHz part."""
    return cycles / CYCLES_PER_US


class VirtualClock:
    """Monotonic virtual time in cycles, with a timer wheel.

    Timers fire only when the simulator asks (either because time advanced
    past an expiry while threads executed, or because the system went idle
    and time skips forward to the next expiry).
    """

    def __init__(self):
        self.now: int = 0
        self._timers: List[Tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def reset(self) -> None:
        """Rewind to cycle 0 with no timers pending (system-pool reuse)."""
        self.now = 0
        self._timers.clear()
        self._counter = itertools.count()

    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += cycles

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Arrange for ``callback`` to run at absolute cycle time ``when``."""
        heapq.heappush(self._timers, (when, next(self._counter), callback))

    def next_expiry(self) -> Optional[int]:
        return self._timers[0][0] if self._timers else None

    def pop_due(self) -> List[Callable[[], None]]:
        """Remove and return callbacks whose expiry is <= now."""
        due = []
        while self._timers and self._timers[0][0] <= self.now:
            __, __, callback = heapq.heappop(self._timers)
            due.append(callback)
        return due

    def skip_to_next_expiry(self) -> bool:
        """Advance the clock to the next timer; False if none pending."""
        expiry = self.next_expiry()
        if expiry is None:
            return False
        if expiry > self.now:
            self.now = expiry
        return True


class RunQueue:
    """Fixed-priority run queue with FIFO order among equal priorities."""

    def __init__(self):
        self._threads: List[SimThread] = []
        self._rr: int = 0  # round-robin tiebreak counter

    def reset(self) -> None:
        """Drop every thread and the round-robin state (system-pool reuse)."""
        self._threads.clear()
        self._rr = 0

    def add(self, thread: SimThread) -> None:
        self._threads.append(thread)

    def remove(self, thread: SimThread) -> None:
        self._threads.remove(thread)

    @property
    def threads(self) -> List[SimThread]:
        return list(self._threads)

    def pick(self) -> Optional[SimThread]:
        """Highest-priority runnable thread; round-robin within a priority."""
        # Hot path (called once per scheduler step): one pass collecting
        # the best-priority peer list in place of the three comprehension
        # passes this used to take.
        ready = ThreadState.READY
        best_prio = None
        peers = None
        for t in self._threads:
            if t.state is not ready:
                continue
            prio = t.prio
            if best_prio is None or prio < best_prio:
                best_prio = prio
                peers = [t]
            elif prio == best_prio:
                peers.append(t)
        if peers is None:
            return None
        choice = peers[self._rr % len(peers)]
        self._rr += 1
        return choice

    def all_done(self) -> bool:
        return all(
            t.state in (ThreadState.DONE, ThreadState.CRASHED)
            for t in self._threads
        )

    def blocked(self) -> List[SimThread]:
        return [t for t in self._threads if t.state is ThreadState.BLOCKED]
