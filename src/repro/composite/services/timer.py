"""Timer manager service component: periodic blocking.

Interface (the paper's Timer workload: "a thread wakes up, then blocks for
a certain amount of time periodically"):

* ``timer_alloc(spdid, period) -> tmid``  — create a periodic timer.
* ``timer_block(spdid, tmid) -> 0``       — block until the next period
  boundary (virtual time).
* ``timer_expire(spdid, tmid) -> 0``      — the interface's wakeup
  function: force-wake threads blocked on the timer.
* ``timer_free(spdid, tmid) -> 0``        — terminate.

Model instance: blocking, no resource data, local descriptors, ``Solo``.
The descriptor meta-data is the period, which the client stub tracks so a
recovered timer keeps its cadence.
"""

from __future__ import annotations

from typing import Dict

from repro.composite.component import export
from repro.composite.services.common import ServiceComponent
from repro.errors import BlockThread

FIELD_PERIOD = 1
FIELD_EXPIRY = 2
FIELD_TMID = 3


class _TimerState:
    __slots__ = ("period",)

    def __init__(self, period: int):
        self.period = period


class TimerService(ServiceComponent):
    MAGIC = 0x717E4001

    def __init__(self, name: str = "timer"):
        super().__init__(name)
        self.timers: Dict[int, _TimerState] = {}
        self._next_id = 1

    def reinit(self) -> None:
        super().reinit()
        self.timers = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    @export
    def timer_alloc(self, thread, spdid, period) -> int:
        if period <= 0:
            return -1
        tmid = self._next_id
        self._next_id += 1
        record = self.new_record(tmid, [period, 0, tmid])
        trace = self.checked_create(
            record,
            args=[spdid, period],
            label="timer_alloc",
            scan=len(self.timers) + 1,
            retval=tmid,
        )
        self.timers[tmid] = _TimerState(period)
        return self.run_op(thread, trace, plausible=lambda v: 0 < v < (1 << 16))

    @export
    def timer_block(self, thread, spdid, tmid) -> int:
        record = self.record_for(tmid)
        state = self.timers[tmid]
        now = self.kernel.clock.now
        # Next period boundary strictly in the future.
        expiry = ((now // state.period) + 1) * state.period
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_PERIOD, state.period),
                (FIELD_TMID, tmid),
                (FIELD_EXPIRY, self.record_field(tmid, FIELD_EXPIRY)),
            ],
            stores=[(FIELD_EXPIRY, expiry)],
            scan=len(self.timers) + 1,  # timer-wheel insertion walk
            args=[spdid, tmid],
            label="timer_block",
            retval=0,
        )
        self.run_op(thread, trace, plausible=lambda v: v == 0)
        raise BlockThread(
            self.name,
            ("timer", tmid, thread.tid),
            timeout=expiry,
            on_wake=lambda t, token, timeout: 0,
        )

    @export
    def timer_expire(self, thread, spdid, tmid) -> int:
        """Wake threads blocked on the timer ahead of the clock expiry.

        This is the interface's ``I^wakeup`` function; the normal wakeup
        path is the virtual-clock expiry, but eager recovery (and tests)
        can force it.
        """
        record = self.record_for(tmid)
        state = self.timers[tmid]
        trace = self.checked_touch(
            record,
            expected=[(FIELD_PERIOD, state.period), (FIELD_TMID, tmid)],
            args=[spdid, tmid],
            label="timer_expire",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        for blocked in self.kernel.blocked_threads_in(self.name):
            token = blocked.block_token
            if isinstance(token, tuple) and token[:2] == ("timer", tmid):
                self.kernel.wake_token(self.name, token, value=0)
        return value

    @export
    def timer_free(self, thread, spdid, tmid) -> int:
        record = self.record_for(tmid)
        trace = self.checked_touch(
            record,
            expected=[(FIELD_TMID, tmid)],
            args=[spdid, tmid],
            label="timer_free",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.drop_record(tmid)
        del self.timers[tmid]
        return value

    # -- test introspection ----------------------------------------------------
    def period_of(self, tmid: int) -> int:
        return self.timers[tmid].period if tmid in self.timers else 0
