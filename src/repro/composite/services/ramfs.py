"""RAM filesystem service component (the paper's RamFS / "FS").

Interface (COMPOSITE's torrent-style API):

* ``tsplit(spdid, parent_fd, subpath) -> fd`` — open/create a file below an
  existing descriptor (``parent_fd``; the root directory is fd 1).
* ``tread(spdid, fd, nbytes) -> bytes``       — read at the descriptor's
  offset, advancing it.
* ``twrite(spdid, fd, data) -> count``        — write at the offset,
  advancing it.
* ``tseek(spdid, fd, offset) -> 0``           — reposition.
* ``trelease(spdid, fd) -> 0``                — terminate the descriptor
  (file *data* persists; only the descriptor goes away).

Model instance: non-blocking, **has resource data** (file contents),
local descriptors, ``Parent`` dependencies (fds derive from the root fd),
close-removes-dependency.

Resource data recovery (G1): file contents live in cbuf buffers owned by
RamFS; the storage component redundantly keeps ``path -> (cbid, length)``.
Those storage interactions happen *inside the critical region* that
mutates the RamFS structures — the paper adds them manually to close the
non-atomicity race (Section III-C, G1).  After a micro-reboot, a tsplit of
a known path finds its data again through storage.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.composite.component import export
from repro.composite.services.common import ServiceComponent
from repro.errors import InvalidDescriptor

FIELD_OFFSET = 1
FIELD_PATHHASH = 2
FIELD_FD = 3

ROOT_FD = 1
DATA_NS = "ramfs:data"


def path_hash(path: str) -> int:
    """Stable 32-bit id for a path (the paper: "a hash on its path")."""
    return zlib.crc32(path.encode("utf-8")) & 0xFFFFFFFF


class _File:
    __slots__ = ("path", "offset")

    def __init__(self, path: str, offset: int = 0):
        self.path = path
        self.offset = offset


class RamFSService(ServiceComponent):
    MAGIC = 0x4A3F5001

    def __init__(self, name: str = "ramfs", storage: str = "storage",
                 cbuf: str = "cbuf"):
        super().__init__(name)
        self.storage_name = storage
        self.cbuf_name = cbuf
        self.files: Dict[int, _File] = {}
        self._path_info: Dict[str, Tuple[int, int]] = {}  # path -> (cbid, len)
        self._next_fd = ROOT_FD + 1

    def reinit(self) -> None:
        super().reinit()
        self.files = {ROOT_FD: _File("/")}
        self._path_info = {}
        self._next_fd = ROOT_FD + 1
        self.new_record(ROOT_FD, [0, path_hash("/"), ROOT_FD])

    # ------------------------------------------------------------------
    def _lookup_path_info(self, thread, path: str) -> Optional[Tuple[int, int]]:
        """Find the file's backing cbuf: local cache first, then G1 storage."""
        info = self._path_info.get(path)
        if info is not None:
            return info
        stored = self.call(thread, self.storage_name, "store_get", DATA_NS, path)
        if stored is not None:
            self._path_info[path] = stored
            return stored
        return None

    def _store_path_info(self, thread, path: str, cbid: int, length: int):
        """Update the redundant storage record inside the critical region."""
        self._path_info[path] = (cbid, length)
        self.call(
            thread, self.storage_name, "store_put", DATA_NS, path, (cbid, length)
        )

    # ------------------------------------------------------------------
    @export
    def tsplit(self, thread, spdid, parent_fd, subpath) -> int:
        if parent_fd not in self.files:
            raise InvalidDescriptor(parent_fd, component=self.name)
        parent = self.files[parent_fd]
        parent_record = self.record_for(parent_fd)
        path = parent.path.rstrip("/") + "/" + str(subpath).lstrip("/")
        fd = self._next_fd
        self._next_fd += 1
        record = self.new_record(fd, [0, path_hash(path), fd])
        # Namespace walk proportional to the path length, plus validation
        # of the parent descriptor's record.
        trace = self.checked_create(
            record,
            args=[spdid, parent_fd, subpath],
            label="tsplit",
            scan=len(path),
            retval=fd,
            extend=lambda t: self._with_parent_check(t, parent_record, parent),
            extend_key=(parent_record.addr, path_hash(parent.path)),
        )
        info = self._lookup_path_info(thread, path)
        if info is None:
            cbid = self.call(thread, self.cbuf_name, "cbuf_alloc", self.name, 0)
            self.call(thread, self.cbuf_name, "cbuf_map", "storage", cbid)
            self._store_path_info(thread, path, cbid, 0)
        self.files[fd] = _File(path)
        return self.run_op(thread, trace, plausible=lambda v: 0 < v < (1 << 16))

    def _with_parent_check(self, trace, parent_record, parent: _File):
        from repro.composite.machine import EBX, ECX

        trace.li(EBX, parent_record.addr)
        trace.chk(EBX, 0, self.MAGIC)
        trace.ld(ECX, EBX, FIELD_PATHHASH)
        expected = path_hash(parent.path)
        trace.assert_range(ECX, expected, expected)
        return trace

    @export
    def twrite(self, thread, spdid, fd, data) -> int:
        if fd not in self.files:
            raise InvalidDescriptor(fd, component=self.name)
        file = self.files[fd]
        record = self.record_for(fd)
        info = self._lookup_path_info(thread, file.path)
        if info is None:
            # A known fd with no backing buffer is the root directory
            # (or a fuzzed fd that landed on it): writes to it are as
            # invalid as writes to an unknown descriptor.
            raise InvalidDescriptor(fd, component=self.name)
        cbid, length = info
        payload = bytes(data)
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_OFFSET, file.offset),
                (FIELD_PATHHASH, path_hash(file.path)),
                (FIELD_FD, fd),
            ],
            stores=[(FIELD_OFFSET, file.offset + len(payload))],
            scan=max(len(payload) >> 4, 1),
            args=[spdid, fd, payload],
            label="twrite",
            retval=len(payload),
        )
        value = self.run_op(
            thread, trace, plausible=lambda v: v == len(payload)
        )
        # Critical region: cbuf write and the redundant storage record are
        # updated together (manual G1).
        self.call(
            thread, self.cbuf_name, "cbuf_write", self.name, cbid,
            file.offset, payload,
        )
        new_length = max(length, file.offset + len(payload))
        self._store_path_info(thread, file.path, cbid, new_length)
        file.offset += len(payload)
        return value

    @export
    def tread(self, thread, spdid, fd, nbytes) -> bytes:
        if fd not in self.files:
            raise InvalidDescriptor(fd, component=self.name)
        file = self.files[fd]
        record = self.record_for(fd)
        info = self._lookup_path_info(thread, file.path)
        if info is None:
            return b""
        cbid, length = info
        count = max(min(nbytes, length - file.offset), 0)
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_OFFSET, file.offset),
                (FIELD_PATHHASH, path_hash(file.path)),
                (FIELD_FD, fd),
            ],
            stores=[(FIELD_OFFSET, file.offset + count)],
            scan=max(count >> 4, 1),
            args=[spdid, fd, nbytes],
            label="tread",
            retval=count,
        )
        self.run_op(thread, trace, plausible=lambda v: v == count)
        data = self.call(
            thread, self.cbuf_name, "cbuf_read", self.name, cbid,
            file.offset, count,
        )
        file.offset += count
        return data

    @export
    def tseek(self, thread, spdid, fd, offset) -> int:
        if fd not in self.files:
            raise InvalidDescriptor(fd, component=self.name)
        record = self.record_for(fd)
        file = self.files[fd]
        trace = self.checked_touch(
            record,
            expected=[(FIELD_OFFSET, file.offset), (FIELD_FD, fd)],
            stores=[(FIELD_OFFSET, offset)],
            args=[spdid, fd, offset],
            label="tseek",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        file.offset = offset
        return value

    @export
    def trelease(self, thread, spdid, fd) -> int:
        if fd == ROOT_FD:
            return -1
        if fd not in self.files:
            raise InvalidDescriptor(fd, component=self.name)
        record = self.record_for(fd)
        file = self.files[fd]
        trace = self.checked_touch(
            record,
            expected=[(FIELD_FD, fd), (FIELD_PATHHASH, path_hash(file.path))],
            args=[spdid, fd],
            label="trelease",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.drop_record(fd)
        del self.files[fd]
        return value

    # -- test introspection ----------------------------------------------------
    def offset_of(self, fd: int) -> int:
        return self.files[fd].offset if fd in self.files else -1

    def path_of(self, fd: int) -> Optional[str]:
        return self.files[fd].path if fd in self.files else None
