"""Shared machinery for service components.

Every service mirrors its descriptor bookkeeping into its simulated memory
image as fixed-layout *records* (a magic word followed by fields), and
executes micro-op traces that load, check, and store those records on each
interface operation.  The traces are what SWIFI bit flips land in.

Trace realism matters for the fault-activation profile (Table II reports
93-98% activation): real service code keeps nearly every register live
nearly all the time — arguments arrive *in registers*, record fields are
held in registers across computations, and stack registers are live from
prologue to epilogue.  The :class:`_CheckedTraceBuilder` skeleton
reproduces that density:

* the invocation pre-loads argument registers (``entry_regs``), and the
  trace validates them immediately — a flip at any point before the
  argument's last use is consumed;
* record fields load into distinct registers and are asserted against the
  authoritative python-side value — corruption of register *or* memory
  fail-stops;
* a stack canary is pushed at entry and popped+verified at exit, keeping
  ESP live across the whole body;
* every store is verified by an immediate readback;
* a cross-register checksum and a final magic-word re-check close the
  trace.

Only a flip landing in the last few ops — after a register's final use —
goes unobserved, which is the paper's small "undetected" residue.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.composite.component import Component
from repro.composite.machine import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDX,
    EDI,
    ESI,
    ESP,
    WORD_MASK,
    Trace,
)
from repro.errors import InvalidDescriptor

#: Upper bound used by range assertions on thread ids and small enums.
MAX_TID = 1 << 12
MAX_STATE = 8

#: Registers receiving interface arguments on entry, in order.
_ARG_REGS = (EBX, ECX, EDX, ESI)

#: Registers used to hold loaded record fields, in assignment order.
_FIELD_REGS = (EBX, ECX, EDX, ESI)

#: Base value folded into the entry digest / stack canary.
_CANARY = 0xCAFE57AC

#: Extra record re-verification passes per operation trace (body length
#: calibration; see the module docstring).
_VERIFY_ROUNDS = 2


def arg_word(value) -> int:
    """Map an interface argument to the 32-bit word it travels in."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & WORD_MASK
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value)) & WORD_MASK
    return zlib.crc32(str(value).encode("utf-8")) & WORD_MASK


class Record:
    """A python-side handle onto an in-image record."""

    __slots__ = ("addr", "nfields")

    def __init__(self, addr: int, nfields: int):
        self.addr = addr
        self.nfields = nfields


class _CheckedTraceBuilder:
    """Builds operation traces with full-register liveness (see module doc)."""

    def __init__(self, component: "ServiceComponent", label: str,
                 addr: int, args: Sequence = ()):
        self.component = component
        trace = Trace(label)
        # The invocation delivers the record address and the interface
        # arguments in registers: they are live from the first micro-op.
        words = [arg_word(a) for a in args][: len(_ARG_REGS)]
        digest = _CANARY
        for word in words:
            digest = (digest + word) & WORD_MASK
        digest = (digest + addr) & WORD_MASK
        trace.entry_regs = {EAX: addr & WORD_MASK, EDI: digest}
        self.known: Dict[int, Optional[int]] = {
            EAX: addr & WORD_MASK, EBX: None, ECX: None, EDX: None,
            ESI: None, EDI: digest,
        }
        for reg, word in zip(_ARG_REGS, words):
            trace.entry_regs[reg] = word
            self.known[reg] = word
        # Registers not carrying arguments hold caller state (callee-saved
        # contract): give them distinct live values; the closing checksum
        # consumes them, so corrupting "idle" caller state still activates.
        for index, reg in enumerate(_ARG_REGS[len(words):], start=1):
            value = (digest ^ (0x1010101 * index)) & WORD_MASK
            trace.entry_regs[reg] = value
            self.known[reg] = value
        self.trace = trace.prologue()
        # Validate the incoming argument registers and the digest.
        for reg, word in zip(_ARG_REGS, words):
            trace.assert_range(reg, word, word)
        trace.assert_range(EDI, digest, digest)
        # Spill the digest as a stack canary: ESP is live from here to the
        # closing pop.
        trace.push(EDI)
        self._canary = digest
        #: EBP/ESP value after the prologue (frame established one word
        #: below the stack top), asserted at close.
        self._frame = (component.image.stack_top - 1) & WORD_MASK

    def _consume(self, reg: int) -> None:
        """Verify a register's current value before overwriting it.

        Real code rarely clobbers a live value without having used it;
        this models that final use, so a flip in the window between a
        register's last read and its next write is still consumed instead
        of being silently overwritten.
        """
        known = self.known[reg]
        if known is not None:
            self.trace.assert_range(reg, known, known)

    def set(self, reg: int, value: int) -> None:
        value &= WORD_MASK
        self._consume(reg)
        self.trace.li(reg, value)
        self.known[reg] = value

    def load_expect(self, reg: int, addr_reg: int, off: int, value: int) -> None:
        value &= WORD_MASK
        self._consume(reg)
        self.trace.ld(reg, addr_reg, off)
        self.trace.assert_range(reg, value, value)
        self.known[reg] = value

    def scan(self, count: int) -> None:
        self.set(ESI, max(count, 0))
        self.trace.loop(ESI, 3)

    def close(self) -> None:
        t = self.trace
        # Consume the digest register, then pop and verify the canary
        # (consuming any ESP corruption).
        self._consume(EDI)
        t.pop(EDI)
        t.assert_range(EDI, self._canary, self._canary)
        self.known[EDI] = self._canary
        # Frame integrity: low-bit flips of ESP/EBP stay in the stack
        # range and would otherwise go unnoticed until the caller crashes.
        t.assert_range(ESP, self._frame, self._frame)
        t.assert_range(EBP, self._frame, self._frame)
        # Cross-register checksum over every register with a known value.
        total = self._canary
        for reg in (EBX, ECX, EDX, ESI):
            if self.known[reg] is not None:
                t.add(EDI, reg)
                total = (total + self.known[reg]) & WORD_MASK
        t.assert_range(EDI, total, total)
        t.chk(EAX, 0, self.component.MAGIC)


class ServiceComponent(Component):
    """Base class for the six recovery-target services.

    Subclasses set :attr:`MAGIC` and use :meth:`new_record` /
    :meth:`drop_record` plus the trace builders below.
    """

    MAGIC = 0x5EC0FFEE

    def __init__(self, name: str):
        super().__init__(name)
        self._records: Dict[object, Record] = {}

    def reinit(self) -> None:
        self._records = {}

    # -- record management ---------------------------------------------------
    def new_record(self, key, fields: Iterable[int]) -> Record:
        """Allocate and initialise an in-image record for ``key``."""
        values = [v & WORD_MASK for v in fields]
        addr = self.image.alloc_record(self.MAGIC, len(values))
        for off, value in enumerate(values, start=1):
            self.image.write_word(addr + off, value)
        record = Record(addr, len(values))
        self._records[key] = record
        return record

    def record_for(self, key) -> Record:
        try:
            return self._records[key]
        except KeyError:
            raise InvalidDescriptor(key, component=self.name) from None

    def has_record(self, key) -> bool:
        return key in self._records

    def drop_record(self, key) -> None:
        record = self._records.pop(key)
        self.image.free(record.addr, record.nfields + 1)

    def record_field(self, key, field: int) -> int:
        """Read a record field straight from the image (python-side)."""
        return self.image.read_word(self._records[key].addr + field)

    def set_record_field(self, key, field: int, value: int) -> None:
        self.image.write_word(self._records[key].addr + field, value & WORD_MASK)

    # -- trace builders --------------------------------------------------------
    def checked_create(
        self,
        record: Record,
        args: Sequence = (),
        label: str = "create",
        scan: int = 0,
    ) -> Trace:
        """Trace creating a record: store magic + fields, then verify."""
        builder = _CheckedTraceBuilder(self, label, record.addr, args)
        t = builder.trace
        builder.set(EBX, self.MAGIC)
        t.st(EBX, EAX, 0)
        values = [
            self.image.read_word(record.addr + off)
            for off in range(1, record.nfields + 1)
        ]
        for off, value in enumerate(values, start=1):
            builder.set(ECX, value)
            t.st(ECX, EAX, off)
        if scan:
            builder.scan(scan)
        # Readback verification of every field, repeated (see checked_touch
        # on why the body stays long relative to the closing validation).
        for __ in range(1 + _VERIFY_ROUNDS):
            for off, value in enumerate(values, start=1):
                builder.load_expect(EDX, EAX, off, value)
        builder.close()
        return t

    def checked_touch(
        self,
        record: Record,
        args: Sequence = (),
        expected: Sequence[Tuple[int, int]] = (),
        stores: Sequence[Tuple[int, int]] = (),
        scan: int = 0,
        label: str = "touch",
    ) -> Trace:
        """The standard high-liveness operation skeleton.

        ``args`` are the interface arguments (delivered in registers and
        validated on entry).  ``expected`` is (field_off, expected_value)
        pairs checked against the service's authoritative python-side
        state.  ``stores`` is (field_off, new_value) pairs, each verified
        by readback.  ``scan`` models a bounded queue/tree walk.
        """
        builder = _CheckedTraceBuilder(self, label, record.addr, args)
        t = builder.trace
        t.chk(EAX, 0, self.MAGIC)
        for (off, value), reg in zip(expected, _FIELD_REGS):
            builder.load_expect(reg, EAX, off, value)
        if scan:
            builder.scan(scan)
        for off, value in stores:
            value &= WORD_MASK
            builder.set(EDI, value)
            t.st(EDI, EAX, off)
            builder.load_expect(EDX, EAX, off, value)
        # Re-verification passes: real handlers touch their records many
        # times per invocation; this keeps the body long relative to the
        # closing validation (the only region where flips can still hide).
        current = {off: value for off, value in expected}
        for off, value in stores:
            current[off] = value & WORD_MASK
        for __ in range(_VERIFY_ROUNDS):
            for (off, value), reg in zip(sorted(current.items()), _FIELD_REGS):
                builder.load_expect(reg, EAX, off, value)
        builder.close()
        return t

    def finish(self, trace: Trace, retval: Optional[int] = None) -> Trace:
        """Close a trace: load the return value and run the epilogue."""
        if retval is not None:
            trace.li(EAX, retval & WORD_MASK)
        return trace.epilogue(EAX)

    def run_op(self, thread, trace: Trace, plausible=None) -> int:
        """Execute an operation trace; validate a tainted return value.

        A tainted return that still passes the interface plausibility
        predicate escapes into the client (propagated fault, Table II);
        an implausible tainted value is caught at the boundary.
        """
        result = self.execute(thread, trace)
        if plausible is None:
            plausible = lambda value: True  # noqa: E731 - tiny predicate
        return self.check_return(result, plausible)
