"""Shared machinery for service components.

Every service mirrors its descriptor bookkeeping into its simulated memory
image as fixed-layout *records* (a magic word followed by fields), and
executes micro-op traces that load, check, and store those records on each
interface operation.  The traces are what SWIFI bit flips land in.

Trace realism matters for the fault-activation profile (Table II reports
93-98% activation): real service code keeps nearly every register live
nearly all the time — arguments arrive *in registers*, record fields are
held in registers across computations, and stack registers are live from
prologue to epilogue.  The :class:`_CheckedTraceBuilder` skeleton
reproduces that density:

* the invocation pre-loads argument registers (``entry_regs``), and the
  trace validates them immediately — a flip at any point before the
  argument's last use is consumed;
* record fields load into distinct registers and are asserted against the
  authoritative python-side value — corruption of register *or* memory
  fail-stops;
* a stack canary is pushed at entry and popped+verified at exit, keeping
  ESP live across the whole body;
* every store is verified by an immediate readback;
* a cross-register checksum and a final magic-word re-check close the
  trace.

Only a flip landing in the last few ops — after a register's final use —
goes unobserved, which is the paper's small "undetected" residue.
"""

from __future__ import annotations

import os
import zlib
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.composite.component import Component
from repro.composite.machine import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDX,
    EDI,
    ESI,
    ESP,
    WORD_MASK,
    Trace,
)
from repro.errors import InvalidDescriptor

#: Upper bound used by range assertions on thread ids and small enums.
MAX_TID = 1 << 12
MAX_STATE = 8

#: Registers receiving interface arguments on entry, in order.
_ARG_REGS = (EBX, ECX, EDX, ESI)

#: Registers used to hold loaded record fields, in assignment order.
_FIELD_REGS = (EBX, ECX, EDX, ESI)

#: Base value folded into the entry digest / stack canary.
_CANARY = 0xCAFE57AC

#: Extra record re-verification passes per operation trace (body length
#: calibration; see the module docstring).
_VERIFY_ROUNDS = 2


def _always_plausible(value) -> bool:
    return True


def arg_word(value) -> int:
    """Map an interface argument to the 32-bit word it travels in."""
    if isinstance(value, int):
        # bools land here too: True & mask == 1 == int(True).
        return value & WORD_MASK
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value)) & WORD_MASK
    return zlib.crc32(str(value).encode("utf-8")) & WORD_MASK


class Record:
    """A python-side handle onto an in-image record."""

    __slots__ = ("addr", "nfields")

    def __init__(self, addr: int, nfields: int):
        self.addr = addr
        self.nfields = nfields


#: Default per-component trace-cache capacity.  Service working sets are a
#: handful of (operation, argument) shapes; the bound only matters for
#: workloads cycling through unbounded value streams (e.g. timer expiries).
TRACE_CACHE_CAPACITY = 2048


class TraceCache:
    """Bounded memo of finished operation traces (tier 1 of the engine).

    Keys capture *every* input that determines the built op list — the
    operation kind and label, the record address, the words read from the
    image, the argument words delivered in registers, scan bounds, the
    return value, and any extension key — so a hit is exactly the trace
    the builder would have produced.  Values are sealed
    :class:`~repro.composite.machine.Trace` objects (epilogue already
    appended, fast-path program attached on first clean execution), shared
    across invocations.

    Eviction is insertion-ordered (FIFO): steady-state working sets are
    tiny and re-inserted keys are rare, so LRU bookkeeping isn't worth its
    per-hit cost.
    """

    __slots__ = ("capacity", "entries", "hits", "misses")

    def __init__(self, capacity: int = TRACE_CACHE_CAPACITY):
        self.capacity = capacity
        self.entries: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        trace = self.entries.get(key)
        if trace is not None:
            self.hits += 1
        else:
            self.misses += 1
        return trace

    def put(self, key: tuple, trace) -> None:
        if len(self.entries) >= self.capacity:
            self.entries.pop(next(iter(self.entries)))
        self.entries[key] = trace


class _CheckedTraceBuilder:
    """Builds operation traces with full-register liveness (see module doc)."""

    def __init__(self, component: "ServiceComponent", label: str,
                 addr: int, args: Sequence = ()):
        self.component = component
        trace = Trace(label)
        # The invocation delivers the record address and the interface
        # arguments in registers: they are live from the first micro-op.
        words = [arg_word(a) for a in args][: len(_ARG_REGS)]
        digest = _CANARY
        for word in words:
            digest = (digest + word) & WORD_MASK
        digest = (digest + addr) & WORD_MASK
        trace.entry_regs = {EAX: addr & WORD_MASK, EDI: digest}
        self.known: Dict[int, Optional[int]] = {
            EAX: addr & WORD_MASK, EBX: None, ECX: None, EDX: None,
            ESI: None, EDI: digest,
        }
        for reg, word in zip(_ARG_REGS, words):
            trace.entry_regs[reg] = word
            self.known[reg] = word
        # Registers not carrying arguments hold caller state (callee-saved
        # contract): give them distinct live values; the closing checksum
        # consumes them, so corrupting "idle" caller state still activates.
        for index, reg in enumerate(_ARG_REGS[len(words):], start=1):
            value = (digest ^ (0x1010101 * index)) & WORD_MASK
            trace.entry_regs[reg] = value
            self.known[reg] = value
        self.trace = trace.prologue()
        # Validate the incoming argument registers and the digest.
        for reg, word in zip(_ARG_REGS, words):
            trace.assert_range(reg, word, word)
        trace.assert_range(EDI, digest, digest)
        # Spill the digest as a stack canary: ESP is live from here to the
        # closing pop.
        trace.push(EDI)
        self._canary = digest
        #: EBP/ESP value after the prologue (frame established one word
        #: below the stack top), asserted at close.
        self._frame = (component.image.stack_top - 1) & WORD_MASK

    def _consume(self, reg: int) -> None:
        """Verify a register's current value before overwriting it.

        Real code rarely clobbers a live value without having used it;
        this models that final use, so a flip in the window between a
        register's last read and its next write is still consumed instead
        of being silently overwritten.
        """
        known = self.known[reg]
        if known is not None:
            self.trace.assert_range(reg, known, known)

    def set(self, reg: int, value: int) -> None:
        value &= WORD_MASK
        self._consume(reg)
        self.trace.li(reg, value)
        self.known[reg] = value

    def load_expect(self, reg: int, addr_reg: int, off: int, value: int) -> None:
        value &= WORD_MASK
        self._consume(reg)
        self.trace.ld(reg, addr_reg, off)
        self.trace.assert_range(reg, value, value)
        self.known[reg] = value

    def scan(self, count: int) -> None:
        self.set(ESI, max(count, 0))
        self.trace.loop(ESI, 3)

    def close(self) -> None:
        t = self.trace
        # Consume the digest register, then pop and verify the canary
        # (consuming any ESP corruption).
        self._consume(EDI)
        t.pop(EDI)
        t.assert_range(EDI, self._canary, self._canary)
        self.known[EDI] = self._canary
        # Frame integrity: low-bit flips of ESP/EBP stay in the stack
        # range and would otherwise go unnoticed until the caller crashes.
        t.assert_range(ESP, self._frame, self._frame)
        t.assert_range(EBP, self._frame, self._frame)
        # Cross-register checksum over every register with a known value.
        total = self._canary
        for reg in (EBX, ECX, EDX, ESI):
            if self.known[reg] is not None:
                t.add(EDI, reg)
                total = (total + self.known[reg]) & WORD_MASK
        t.assert_range(EDI, total, total)
        t.chk(EAX, 0, self.component.MAGIC)


class ServiceComponent(Component):
    """Base class for the six recovery-target services.

    Subclasses set :attr:`MAGIC` and use :meth:`new_record` /
    :meth:`drop_record` plus the trace builders below.
    """

    MAGIC = 0x5EC0FFEE

    def __init__(self, name: str):
        super().__init__(name)
        self._records: Dict[object, Record] = {}
        #: Tier-1 trace compilation cache; ``REPRO_TRACE_CACHE=0`` disables
        #: it (every invocation then rebuilds its trace from scratch —
        #: useful when debugging the builder itself).
        self._trace_cache: Optional[TraceCache] = (
            TraceCache()
            if os.environ.get("REPRO_TRACE_CACHE", "1") != "0"
            else None
        )

    def reinit(self) -> None:
        self._records = {}

    # -- record management ---------------------------------------------------
    def new_record(self, key, fields: Iterable[int]) -> Record:
        """Allocate and initialise an in-image record for ``key``."""
        values = [v & WORD_MASK for v in fields]
        addr = self.image.alloc_record(self.MAGIC, len(values))
        for off, value in enumerate(values, start=1):
            self.image.write_word(addr + off, value)
        record = Record(addr, len(values))
        self._records[key] = record
        return record

    def record_for(self, key) -> Record:
        try:
            return self._records[key]
        except KeyError:
            raise InvalidDescriptor(key, component=self.name) from None

    def has_record(self, key) -> bool:
        return key in self._records

    def drop_record(self, key) -> None:
        record = self._records.pop(key)
        self.image.free(record.addr, record.nfields + 1)

    def record_field(self, key, field: int) -> int:
        """Read a record field straight from the image (python-side)."""
        return self.image.read_word(self._records[key].addr + field)

    def set_record_field(self, key, field: int, value: int) -> None:
        self.image.write_word(self._records[key].addr + field, value & WORD_MASK)

    # -- trace builders --------------------------------------------------------
    def _cache_lookup(self, key: Optional[tuple]) -> Optional[Trace]:
        if key is None:
            return None
        trace = self._trace_cache.get(key)
        if self.kernel is not None:
            stat = "trace_cache_hits" if trace is not None else "trace_cache_misses"
            self.kernel.stats[stat] += 1
        return trace

    def _cache_store(self, key: Optional[tuple], trace: Trace) -> None:
        if key is not None:
            self._trace_cache.put(key, trace)
            if self.kernel is not None and self.kernel.recorder.enabled:
                # A store follows a cache miss: the builder just
                # constructed this trace from scratch.  Steady state hits
                # the cache, so these events mark working-set growth.
                self.kernel.recorder.emit(
                    "trace_build",
                    component=self.name,
                    label=trace.label,
                    ops=len(trace),
                )

    def checked_create(
        self,
        record: Record,
        args: Sequence = (),
        label: str = "create",
        scan: int = 0,
        retval: Optional[int] = None,
        extend: Optional[Callable[[Trace], None]] = None,
        extend_key: Optional[tuple] = None,
    ) -> Trace:
        """Trace creating a record: store magic + fields, then verify.

        With ``retval`` given, the returned trace is *finished* (return
        value loaded, epilogue appended, sealed) and memoized in the
        component's trace cache; steady-state invocations reuse the
        prebuilt op list instead of reconstructing it.  ``extend`` appends
        extra validation ops before the epilogue; every value it bakes
        into the ops must be captured in ``extend_key``, which is part of
        the cache key.
        """
        values = tuple(
            self.image.read_word(record.addr + off)
            for off in range(1, record.nfields + 1)
        )
        key = None
        if retval is not None and self._trace_cache is not None:
            key = (
                "create", label, record.addr, values,
                tuple([arg_word(a) for a in args]), scan, retval, extend_key,
            )
            cached = self._cache_lookup(key)
            if cached is not None:
                return cached
        builder = _CheckedTraceBuilder(self, label, record.addr, args)
        t = builder.trace
        builder.set(EBX, self.MAGIC)
        t.st(EBX, EAX, 0)
        for off, value in enumerate(values, start=1):
            builder.set(ECX, value)
            t.st(ECX, EAX, off)
        if scan:
            builder.scan(scan)
        # Readback verification of every field, repeated (see checked_touch
        # on why the body stays long relative to the closing validation).
        for __ in range(1 + _VERIFY_ROUNDS):
            for off, value in enumerate(values, start=1):
                builder.load_expect(EDX, EAX, off, value)
        builder.close()
        if extend is not None:
            extend(t)
        if retval is not None:
            self.finish(t, retval=retval)
            self._cache_store(key, t)
        return t

    def checked_touch(
        self,
        record: Record,
        args: Sequence = (),
        expected: Sequence[Tuple[int, int]] = (),
        stores: Sequence[Tuple[int, int]] = (),
        scan: int = 0,
        label: str = "touch",
        retval: Optional[int] = None,
        extend: Optional[Callable[[Trace], None]] = None,
        extend_key: Optional[tuple] = None,
    ) -> Trace:
        """The standard high-liveness operation skeleton.

        ``args`` are the interface arguments (delivered in registers and
        validated on entry).  ``expected`` is (field_off, expected_value)
        pairs checked against the service's authoritative python-side
        state.  ``stores`` is (field_off, new_value) pairs, each verified
        by readback.  ``scan`` models a bounded queue/tree walk.

        ``retval``/``extend``/``extend_key`` behave as in
        :meth:`checked_create`: a ``retval`` makes the result a finished,
        sealed trace memoized in the component's trace cache.
        """
        key = None
        if retval is not None and self._trace_cache is not None:
            key = (
                "touch", label, record.addr,
                tuple([(off, value & WORD_MASK) for off, value in expected]),
                tuple([(off, value & WORD_MASK) for off, value in stores]),
                tuple([arg_word(a) for a in args]), scan, retval, extend_key,
            )
            cached = self._cache_lookup(key)
            if cached is not None:
                return cached
        builder = _CheckedTraceBuilder(self, label, record.addr, args)
        t = builder.trace
        t.chk(EAX, 0, self.MAGIC)
        for (off, value), reg in zip(expected, _FIELD_REGS):
            builder.load_expect(reg, EAX, off, value)
        if scan:
            builder.scan(scan)
        for off, value in stores:
            value &= WORD_MASK
            builder.set(EDI, value)
            t.st(EDI, EAX, off)
            builder.load_expect(EDX, EAX, off, value)
        # Re-verification passes: real handlers touch their records many
        # times per invocation; this keeps the body long relative to the
        # closing validation (the only region where flips can still hide).
        current = {off: value for off, value in expected}
        for off, value in stores:
            current[off] = value & WORD_MASK
        for __ in range(_VERIFY_ROUNDS):
            for (off, value), reg in zip(sorted(current.items()), _FIELD_REGS):
                builder.load_expect(reg, EAX, off, value)
        builder.close()
        if extend is not None:
            extend(t)
        if retval is not None:
            self.finish(t, retval=retval)
            self._cache_store(key, t)
        return t

    def finish(self, trace: Trace, retval: Optional[int] = None) -> Trace:
        """Close a trace: load the return value and run the epilogue.

        Sealed traces (cache-resident, already finished) pass through
        unchanged, so legacy ``checked_*(...)``/``finish(...)`` call pairs
        cannot grow a shared trace on a cache hit.
        """
        if trace.sealed:
            return trace
        if retval is not None:
            trace.li(EAX, retval & WORD_MASK)
        trace.epilogue(EAX)
        trace.sealed = True
        return trace

    def run_op(self, thread, trace: Trace, plausible=None) -> int:
        """Execute an operation trace; validate a tainted return value.

        A tainted return that still passes the interface plausibility
        predicate escapes into the client (propagated fault, Table II);
        an implausible tainted value is caught at the boundary.
        """
        result = self.execute(thread, trace)
        if plausible is None:
            plausible = _always_plausible
        return self.check_return(result, plausible)
