"""Event notification service component.

Interface (exactly the paper's Fig. 3 specification):

* ``evt_split(spdid, parent_evtid, grp) -> evtid`` — create an event
  (optionally as a child of ``parent_evtid``; ``grp`` marks event groups).
* ``evt_wait(spdid, evtid) -> 0``    — block until the event triggers.
* ``evt_trigger(spdid, evtid) -> 0`` — trigger; wakes a waiter (possibly in
  a *different* component — event descriptors are global).
* ``evt_free(spdid, evtid) -> 0``    — terminate.

Model instance (Fig. 3's ``service_global_info``): blocking, has data,
**global** descriptors, ``Parent`` dependencies, close-removes-dependency.
Global descriptors make Event the service that exercises every recovery
mechanism except D0: G0 (storage-held creator map), U0 (upcall into the
creator), plus T0/T1/R0/D1 and G1 for the pending-trigger counts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.composite.component import export
from repro.composite.machine import EBX, ECX
from repro.composite.services.common import ServiceComponent
from repro.errors import BlockThread, InvalidDescriptor

FIELD_PARENT = 1
FIELD_GRP = 2
FIELD_PENDING = 3
FIELD_EVTID = 4

PENDING_NS = "event:pending"


class _EventState:
    __slots__ = ("parent", "grp", "pending", "waiters", "creator", "uid")

    def __init__(self, parent: int, grp: int, creator: str):
        self.parent = parent
        self.grp = grp
        self.pending = 0  # triggers delivered with no waiter yet
        # A deque: releases/triggers wake from the head, and a busy
        # wait queue made list.pop(0) O(waiters) per wake.
        self.waiters: Deque[int] = deque()
        self.creator = creator
        #: Stable identity across micro-reboots: (creator, grp).  Pending
        #: trigger counts (the event's *resource data*, G1) are persisted
        #: in the storage component under this uid, so recovery does not
        #: lose triggers that raced the fault.  Events are therefore
        #: distinguished per (creator, grp); workloads allocate distinct
        #: grp values per concurrently live event.
        self.uid = (creator, grp)


class EventService(ServiceComponent):
    MAGIC = 0xE7E47001

    def __init__(self, name: str = "event", storage: str = "storage"):
        super().__init__(name)
        self.storage_name = storage
        self.events: Dict[int, _EventState] = {}
        self._next_id = 1

    def reinit(self) -> None:
        super().reinit()
        self.events = {}
        self._next_id = 1

    def _persist_pending(self, thread, state: _EventState) -> None:
        """G1: update the redundant pending-count record in storage."""
        self.call(
            thread, self.storage_name, "store_put",
            PENDING_NS, state.uid, state.pending,
        )

    def _load_pending(self, thread, state: _EventState) -> None:
        stored = self.call(
            thread, self.storage_name, "store_get", PENDING_NS, state.uid
        )
        if stored is not None:
            state.pending = stored

    # ------------------------------------------------------------------
    @export
    def evt_split(self, thread, spdid, parent_evtid, grp) -> int:
        if parent_evtid and parent_evtid not in self.events:
            raise InvalidDescriptor(parent_evtid, component=self.name)
        evtid = self._next_id
        self._next_id += 1
        state = _EventState(parent_evtid, grp, spdid)
        self._load_pending(thread, state)
        record = self.new_record(
            evtid, [parent_evtid, grp, state.pending, evtid]
        )
        extend = None
        extend_key = None
        if parent_evtid:
            parent_record = self.record_for(parent_evtid)
            parent_state = self.events[parent_evtid]
            extend_key = (parent_record.addr, parent_state.grp)

            def extend(t, addr=parent_record.addr, grp=parent_state.grp):
                # Validate the parent before linking under it.
                t.li(EBX, addr)
                t.chk(EBX, 0, self.MAGIC)
                t.ld(ECX, EBX, FIELD_GRP)
                t.assert_range(ECX, grp, grp)

        trace = self.checked_create(
            record,
            args=[spdid, parent_evtid, grp],
            label="evt_split",
            scan=len(self.events) + 1,
            retval=evtid,
            extend=extend,
            extend_key=extend_key,
        )
        self.events[evtid] = state
        return self.run_op(thread, trace, plausible=lambda v: 0 < v < (1 << 16))

    @export
    def evt_wait(self, thread, spdid, evtid) -> int:
        record = self.record_for(evtid)
        state = self.events[evtid]
        if state.pending > 0:
            trace = self.checked_touch(
                record,
                expected=[
                    (FIELD_PENDING, state.pending),
                    (FIELD_EVTID, evtid),
                    (FIELD_GRP, state.grp),
                ],
                stores=[(FIELD_PENDING, state.pending - 1)],
                args=[spdid, evtid],
                label="evt_wait_pending",
                retval=0,
            )
            self.run_op(thread, trace, plausible=lambda v: v == 0)
            state.pending -= 1
            self._persist_pending(thread, state)
            return 0
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_PENDING, 0),
                (FIELD_EVTID, evtid),
                (FIELD_GRP, state.grp),
            ],
            scan=len(state.waiters) + 1,  # wait-queue insertion
            args=[spdid, evtid],
            label="evt_wait",
            retval=0,
        )
        self.run_op(thread, trace, plausible=lambda v: v == 0)
        state.waiters.append(thread.tid)
        raise BlockThread(
            self.name,
            ("evt", evtid, thread.tid),
            on_wake=lambda t, token, timeout: 0,
        )

    @export
    def evt_trigger(self, thread, spdid, evtid) -> int:
        record = self.record_for(evtid)
        state = self.events[evtid]
        if state.waiters:
            waiter = state.waiters.popleft()
            trace = self.checked_touch(
                record,
                expected=[
                    (FIELD_PENDING, state.pending),
                    (FIELD_EVTID, evtid),
                    (FIELD_GRP, state.grp),
                ],
                scan=len(state.waiters) + 1,
                args=[spdid, evtid],
                label="evt_trigger_wake",
                retval=0,
            )
            value = self.run_op(thread, trace, plausible=lambda v: v == 0)
            self.kernel.wake_token(self.name, ("evt", evtid, waiter), value=0)
            return value
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_PENDING, state.pending),
                (FIELD_EVTID, evtid),
            ],
            stores=[(FIELD_PENDING, state.pending + 1)],
            args=[spdid, evtid],
            label="evt_trigger_pend",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        state.pending += 1
        self._persist_pending(thread, state)
        return value

    @export
    def evt_free(self, thread, spdid, evtid) -> int:
        record = self.record_for(evtid)
        state = self.events[evtid]
        trace = self.checked_touch(
            record,
            expected=[(FIELD_EVTID, evtid), (FIELD_GRP, state.grp)],
            args=[spdid, evtid],
            label="evt_free",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.call(
            thread, self.storage_name, "store_del", PENDING_NS, state.uid
        )
        self.drop_record(evtid)
        del self.events[evtid]
        return value

    # -- test introspection ----------------------------------------------------
    def pending_of(self, evtid: int) -> int:
        return self.events[evtid].pending if evtid in self.events else 0

    def waiters_of(self, evtid: int) -> List[int]:
        return list(self.events[evtid].waiters) if evtid in self.events else []
