"""Lock service component: mutual exclusion with blocking contention.

Interface (Section III-B's lock example):

* ``lock_alloc(spdid) -> lock_id``       — create (state "available")
* ``lock_take(spdid, lock_id) -> 0``     — take, or block if contended
* ``lock_release(spdid, lock_id) -> 0``  — release; wakes one waiter
* ``lock_free(spdid, lock_id) -> 0``     — terminate

Model instance: blocking (``B_r``), no resource data, local descriptors,
no inter-descriptor dependencies (``Solo``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.composite.component import export
from repro.composite.services.common import ServiceComponent
from repro.errors import BlockThread

FIELD_OWNER = 1
FIELD_CONTENDED = 2
FIELD_LOCKID = 3


class _LockState:
    __slots__ = ("owner", "waiters")

    def __init__(self):
        self.owner = 0  # 0 means free
        # A deque: releases/triggers wake from the head, and a busy
        # wait queue made list.pop(0) O(waiters) per wake.
        self.waiters: Deque[int] = deque()


class LockService(ServiceComponent):
    MAGIC = 0x10CC0001

    def __init__(self, name: str = "lock"):
        super().__init__(name)
        self.locks: Dict[int, _LockState] = {}
        self._next_id = 1

    def reinit(self) -> None:
        super().reinit()
        self.locks = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    @export
    def lock_alloc(self, thread, spdid) -> int:
        lock_id = self._next_id
        self._next_id += 1
        record = self.new_record(lock_id, [0, 0, lock_id])
        trace = self.checked_create(
            record, args=[spdid], label="lock_alloc", retval=lock_id
        )
        self.locks[lock_id] = _LockState()
        return self.run_op(thread, trace, plausible=lambda v: 0 < v < (1 << 16))

    @export
    def lock_take(self, thread, spdid, lock_id) -> int:
        record = self.record_for(lock_id)
        state = self.locks[lock_id]
        if state.owner == thread.tid:
            # Redo idempotence: a client stub re-issuing a take after a
            # fault may already have been handed the lock (the wakeup and
            # the micro-reboot raced).  Re-taking an owned lock is a no-op.
            trace = self.checked_touch(
                record,
                expected=[(FIELD_OWNER, thread.tid), (FIELD_LOCKID, lock_id)],
                args=[spdid, lock_id],
                label="lock_take_owned",
                retval=0,
            )
            return self.run_op(thread, trace, plausible=lambda v: v == 0)
        if state.owner == 0:
            trace = self.checked_touch(
                record,
                expected=[(FIELD_OWNER, 0), (FIELD_LOCKID, lock_id)],
                stores=[(FIELD_OWNER, thread.tid)],
                args=[spdid, lock_id],
                label="lock_take_fast",
                retval=0,
            )
            value = self.run_op(thread, trace, plausible=lambda v: v == 0)
            state.owner = thread.tid
            return value
        # Contended: bump the contention count and block the caller.
        contended = self.record_field(lock_id, FIELD_CONTENDED)
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_OWNER, state.owner),
                (FIELD_CONTENDED, contended),
                (FIELD_LOCKID, lock_id),
            ],
            stores=[(FIELD_CONTENDED, contended + 1)],
            scan=len(state.waiters) + 1,
            args=[spdid, lock_id],
            label="lock_take_contended",
            retval=0,
        )
        self.run_op(thread, trace, plausible=lambda v: v == 0)
        state.waiters.append(thread.tid)
        raise BlockThread(
            self.name,
            ("lock", lock_id, thread.tid),
            on_wake=lambda t, token, timeout: 0,
        )

    @export
    def lock_release(self, thread, spdid, lock_id) -> int:
        record = self.record_for(lock_id)
        state = self.locks[lock_id]
        if state.owner != thread.tid:
            return -1  # EPERM: releasing a lock we do not hold
        if state.waiters:
            next_tid = state.waiters.popleft()
            contended = self.record_field(lock_id, FIELD_CONTENDED)
            trace = self.checked_touch(
                record,
                expected=[
                    (FIELD_OWNER, thread.tid),
                    (FIELD_CONTENDED, contended),
                    (FIELD_LOCKID, lock_id),
                ],
                stores=[
                    (FIELD_OWNER, next_tid),
                    (FIELD_CONTENDED, max(contended - 1, 0)),
                ],
                scan=len(state.waiters) + 1,
                args=[spdid, lock_id],
                label="lock_release_handoff",
                retval=0,
            )
            value = self.run_op(thread, trace, plausible=lambda v: v == 0)
            state.owner = next_tid
            self.kernel.wake_token(self.name, ("lock", lock_id, next_tid), value=0)
            return value
        trace = self.checked_touch(
            record,
            expected=[(FIELD_OWNER, thread.tid), (FIELD_LOCKID, lock_id)],
            stores=[(FIELD_OWNER, 0)],
            args=[spdid, lock_id],
            label="lock_release",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        state.owner = 0
        return value

    @export
    def lock_free(self, thread, spdid, lock_id) -> int:
        record = self.record_for(lock_id)
        trace = self.checked_touch(
            record,
            expected=[(FIELD_LOCKID, lock_id)],
            args=[spdid, lock_id],
            label="lock_free",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.drop_record(lock_id)
        del self.locks[lock_id]
        return value

    # -- introspection used by tests ------------------------------------------
    def owner_of(self, lock_id: int) -> int:
        return self.locks[lock_id].owner if lock_id in self.locks else 0

    def waiters_of(self, lock_id: int) -> List[int]:
        return list(self.locks[lock_id].waiters) if lock_id in self.locks else []
