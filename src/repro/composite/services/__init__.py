"""System-level service components (the recovery targets of the paper).

Six services receive injected faults in the evaluation: scheduler, memory
manager, RAM filesystem, lock, event manager, and timer manager.  The
storage component (and the zero-copy buffer manager) are assumed protected
(Section II-E) and are recovery *helpers*, not targets.
"""

from repro.composite.services.event import EventService
from repro.composite.services.lock import LockService
from repro.composite.services.mm import MemoryManagerService
from repro.composite.services.ramfs import RamFSService
from repro.composite.services.sched import SchedService
from repro.composite.services.storage import StorageService
from repro.composite.services.timer import TimerService

__all__ = [
    "EventService",
    "LockService",
    "MemoryManagerService",
    "RamFSService",
    "SchedService",
    "StorageService",
    "TimerService",
]
