"""Scheduler service component: thread block/wakeup.

Interface (the paper's Sched workload uses ``sched_blk``/``sched_wakeup``):

* ``sched_register(spdid) -> tid`` — create a thread descriptor for the
  calling thread (the descriptor id is the kernel tid, so it is stable
  across recovery).
* ``sched_blk(spdid, tid) -> 0``   — block the calling thread.
* ``sched_wakeup(spdid, tid) -> 0``— wake ``tid`` (a wakeup racing a block
  is remembered, COMPOSITE-style).
* ``sched_exit(spdid, tid) -> 0``  — terminate the descriptor.

Model instance: blocking, no resource data, local descriptors, ``Solo``.
Recovery note: after a micro-reboot the scheduler *reflects on the kernel*
(Section II-F) to rebuild its thread table; blocked threads are then woken
eagerly (T0) and re-block themselves through the client stub's redo.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.composite.component import export
from repro.composite.services.common import ServiceComponent
from repro.errors import BlockThread, InvalidDescriptor

FIELD_STATE = 1  # 0 = ready, 1 = blocked
FIELD_PRIO = 2
FIELD_TID = 3

STATE_READY = 0
STATE_BLOCKED = 1


PENDING_NS = "sched:pending"


class SchedService(ServiceComponent):
    MAGIC = 0x5C4ED001

    def __init__(self, name: str = "sched", storage: str = "storage"):
        super().__init__(name)
        self.storage_name = storage
        self.registered: Dict[int, str] = {}
        self.pending_wakeups: Set[int] = set()

    def reinit(self) -> None:
        super().reinit()
        self.registered = {}
        self.pending_wakeups = set()

    def post_reboot_init(self) -> None:
        """Reflect to rebuild the thread table after a micro-reboot.

        The kernel is trusted (Section II-E); thread ids and priorities
        are recovered from it.  Block *state* is re-established by the
        woken threads themselves re-blocking through their client stubs.
        Wakeup *latches* (a wakeup that raced ahead of its block) are
        recovered from the protected storage component — the stand-in for
        the kernel-level state the paper's scheduler reflects on.
        """
        for info in self.kernel.reflect_threads():
            tid = info["tid"]
            if tid not in self.registered:
                self.registered[tid] = info["name"]
                self.new_record(tid, [STATE_READY, info["prio"], tid])
        storage = self.kernel.component(self.storage_name)
        for tid, __ in storage.store_list(None, PENDING_NS):
            self.pending_wakeups.add(tid)

    def _persist_latch(self, thread, tid: int, present: bool) -> None:
        fn = "store_put" if present else "store_del"
        args = (PENDING_NS, tid, True) if present else (PENDING_NS, tid)
        self.call(thread, self.storage_name, fn, *args)

    def _state_of(self, tid: int) -> int:
        return self.record_field(tid, FIELD_STATE)

    # ------------------------------------------------------------------
    @export
    def sched_register(self, thread, spdid) -> int:
        tid = thread.tid
        if not self.has_record(tid):
            record = self.new_record(tid, [STATE_READY, thread.prio, tid])
            trace = self.checked_create(
                record,
                args=[spdid],
                label="sched_register",
                scan=len(self.registered) + 1,
                retval=tid,
            )
        else:
            record = self.record_for(tid)
            trace = self.checked_touch(
                record,
                expected=[(FIELD_TID, tid), (FIELD_STATE, self._state_of(tid))],
                args=[spdid],
                label="sched_reregister",
                retval=tid,
            )
        self.registered[tid] = spdid
        return self.run_op(thread, trace, plausible=lambda v: v == tid)

    @export
    def sched_blk(self, thread, spdid, tid) -> int:
        if tid != thread.tid:
            return -1  # a thread can only block itself
        record = self.record_for(tid)
        if tid in self.pending_wakeups:
            # A wakeup raced ahead of this block: consume it and return.
            # The latch is consumed only *after* the trace ran fault-free —
            # a fail-stop mid-trace must leave it intact for the redo.
            trace = self.checked_touch(
                record,
                expected=[(FIELD_STATE, self._state_of(tid)), (FIELD_TID, tid)],
                stores=[(FIELD_STATE, STATE_READY)],
                args=[spdid, tid],
                label="sched_blk_raced",
                retval=0,
            )
            value = self.run_op(thread, trace, plausible=lambda v: v == 0)
            self.pending_wakeups.discard(tid)
            self._persist_latch(thread, tid, present=False)
            return value
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_STATE, self._state_of(tid)),
                (FIELD_PRIO, thread.prio),
                (FIELD_TID, tid),
            ],
            stores=[(FIELD_STATE, STATE_BLOCKED)],
            scan=len(self.registered) + 1,  # run-queue removal walk
            args=[spdid, tid],
            label="sched_blk",
            retval=0,
        )
        self.run_op(thread, trace, plausible=lambda v: v == 0)
        raise BlockThread(
            self.name,
            ("blk", tid),
            on_wake=lambda t, token, timeout: 0,
        )

    @export
    def sched_wakeup(self, thread, spdid, tid) -> int:
        if not self.has_record(tid):
            raise InvalidDescriptor(tid, component=self.name)
        record = self.record_for(tid)
        trace = self.checked_touch(
            record,
            expected=[(FIELD_STATE, self._state_of(tid)), (FIELD_TID, tid)],
            stores=[(FIELD_STATE, STATE_READY)],
            scan=len(self.registered) + 1,  # run-queue insertion walk
            args=[spdid, tid],
            label="sched_wakeup",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        woken = self.kernel.wake_token(self.name, ("blk", tid), value=0)
        if woken == 0:
            self.pending_wakeups.add(tid)
            self._persist_latch(thread, tid, present=True)
        return value

    @export
    def sched_exit(self, thread, spdid, tid) -> int:
        record = self.record_for(tid)
        trace = self.checked_touch(
            record,
            expected=[(FIELD_TID, tid)],
            args=[spdid, tid],
            label="sched_exit",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        self.drop_record(tid)
        self.registered.pop(tid, None)
        if tid in self.pending_wakeups:
            self.pending_wakeups.discard(tid)
            self._persist_latch(thread, tid, present=False)
        return value

    # -- test introspection ----------------------------------------------------
    def is_registered(self, tid: int) -> bool:
        return tid in self.registered
