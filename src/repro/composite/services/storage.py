"""Storage component: redundant state for G0/G1 recovery.

A trusted, protected component (never a fault target, Section II-E) that
keeps:

* creator records — which component created a given *global* descriptor
  (G0: the server-side stub queries this on EINVAL and upcalls the creator);
* alias records — old-id → new-id translations established when a global
  descriptor is recreated after a micro-reboot;
* resource data — ⟨id, offset, length, data⟩ slices for services whose
  resources carry data (G1: RamFS file contents, via cbuf references).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.composite.component import Component, export

#: Flat per-operation cost (protected component, no traces executed).
STORE_OP_CYCLES = 120


class StorageService(Component):
    def __init__(self, name: str = "storage"):
        super().__init__(name)
        self._data: Dict[Tuple[str, object], object] = {}

    def reinit(self) -> None:
        # Storage is protected: its contents deliberately survive any
        # micro-reboot of *other* components.  reinit only runs at attach.
        if not hasattr(self, "_data") or self._data is None:
            self._data = {}

    def pool_seal(self) -> None:
        self._sealed_data = dict(self._data)

    def _pool_restore_impl(self) -> None:
        # reinit preserves contents across micro-reboots by design; a
        # pooled restore must instead drop everything the previous run
        # stored and reinstate the sealed post-boot contents.
        super()._pool_restore_impl()
        self._data = dict(getattr(self, "_sealed_data", {}))

    # ------------------------------------------------------------------
    @export
    def store_put(self, thread, ns, key, value) -> int:
        # _ran is set here (not only in dispatch) because stubs and
        # recovery call the typed helpers below as plain methods; the
        # pooled-restore skip must still see the mutation.
        self._ran = True
        self.kernel.charge(thread, STORE_OP_CYCLES)
        self._data[(ns, key)] = value
        return 0

    @export
    def store_get(self, thread, ns, key):
        self.kernel.charge(thread, STORE_OP_CYCLES)
        return self._data.get((ns, key))

    @export
    def store_del(self, thread, ns, key) -> int:
        self._ran = True
        self.kernel.charge(thread, STORE_OP_CYCLES)
        self._data.pop((ns, key), None)
        return 0

    @export
    def store_list(self, thread, ns):
        """All (key, value) pairs in a namespace (used by eager recovery)."""
        self.kernel.charge(thread, STORE_OP_CYCLES)
        return [(k, v) for (n, k), v in self._data.items() if n == ns]

    # -- typed helpers used by stubs/recovery (python-level, same charges) ----
    def record_creator(self, thread, service: str, desc_id, creator: str) -> None:
        self.store_put(thread, f"creator:{service}", desc_id, creator)

    def lookup_creator(self, thread, service: str, desc_id) -> Optional[str]:
        return self.store_get(thread, f"creator:{service}", desc_id)

    def record_alias(self, thread, service: str, old_id, new_id) -> None:
        self.store_put(thread, f"alias:{service}", old_id, new_id)

    def resolve_alias(self, thread, service: str, desc_id):
        """Follow alias chains old→new until a fixed point."""
        seen = set()
        current = desc_id
        while current not in seen:
            seen.add(current)
            nxt = self.store_get(thread, f"alias:{service}", current)
            if nxt is None:
                break
            current = nxt
        return current
