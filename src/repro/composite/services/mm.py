"""Memory manager service component (Section II-D).

Interface (the recursive address-space model):

* ``mman_get_page(spdid, vaddr) -> vaddr`` — create a *root* mapping from
  a virtual page in ``spdid`` to a fresh physical frame.
* ``mman_alias_page(spdid, vaddr, dst_spdid, dst_vaddr) -> dst_vaddr`` —
  create a *child* mapping: share the frame into another component.  The
  parent/child relation spans components (``XCParent``).
* ``mman_release_page(spdid, vaddr) -> 0`` — revoke the mapping and the
  whole subtree of aliases rooted at it (recursive revocation, ``C_dr``).

Descriptors are ``(spdid, vaddr)`` pairs — client-chosen, so identity is
stable across recovery.  Recovery needs D1 (a mapping can only be
recovered after its aliased-from parent) and D0 (terminating a mapping
involves its tracked subtree).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.composite.component import export
from repro.composite.machine import EBX, ECX
from repro.composite.services.common import ServiceComponent
from repro.errors import InvalidDescriptor

FIELD_FRAME = 1
FIELD_VADDR = 2
FIELD_NCHILDREN = 3

MAX_FRAME = 1 << 20

MappingKey = Tuple[str, int]


class _Mapping:
    __slots__ = ("frame", "parent", "children")

    def __init__(self, frame: int, parent: Optional[MappingKey]):
        self.frame = frame
        self.parent = parent
        self.children: Set[MappingKey] = set()


class MemoryManagerService(ServiceComponent):
    MAGIC = 0x33A40001

    def __init__(self, name: str = "mm"):
        super().__init__(name)
        self.mappings: Dict[MappingKey, _Mapping] = {}
        self._next_frame = 1

    def reinit(self) -> None:
        super().reinit()
        self.mappings = {}
        self._next_frame = 1

    # ------------------------------------------------------------------
    @export
    def mman_get_page(self, thread, spdid, vaddr) -> int:
        key = (spdid, vaddr)
        if key in self.mappings:
            # Idempotent: re-granting an existing root mapping returns it.
            node = self.mappings[key]
            if node.parent is not None:
                return -1  # vaddr already used by an alias mapping
            record = self.record_for(key)
            trace = self.checked_touch(
                record,
                expected=[
                    (FIELD_FRAME, node.frame),
                    (FIELD_VADDR, vaddr),
                ],
                args=[spdid, vaddr],
                label="mman_get_page_hit",
                retval=vaddr,
            )
            return self.run_op(thread, trace, plausible=lambda v: v == vaddr)
        frame = self._next_frame
        self._next_frame += 1
        record = self.new_record(key, [frame, vaddr, 0])
        # Page-table installation: 4-level walk.
        trace = self.checked_create(
            record,
            args=[spdid, vaddr],
            label="mman_get_page",
            scan=4,
            retval=vaddr,
        )
        self.mappings[key] = _Mapping(frame, None)
        return self.run_op(
            thread, trace, plausible=lambda v: 0 < v < (1 << 31)
        )

    @export
    def mman_alias_page(self, thread, spdid, vaddr, dst_spdid, dst_vaddr) -> int:
        parent_key = (spdid, vaddr)
        child_key = (dst_spdid, dst_vaddr)
        if parent_key not in self.mappings:
            raise InvalidDescriptor(parent_key, component=self.name)
        parent = self.mappings[parent_key]
        if child_key in self.mappings:
            existing = self.mappings[child_key]
            if existing.parent == parent_key:
                return dst_vaddr  # idempotent replay during recovery
            return -1
        parent_record = self.record_for(parent_key)
        nchildren = self.record_field(parent_key, FIELD_NCHILDREN)
        record = self.new_record(child_key, [parent.frame, dst_vaddr, 0])
        def extend(t, addr=parent_record.addr, frame=parent.frame,
                   nch=nchildren):
            # Validate the parent mapping and bump its child count.
            t.li(EBX, addr)
            t.chk(EBX, 0, self.MAGIC)
            t.ld(ECX, EBX, FIELD_FRAME)
            t.assert_range(ECX, frame, frame)
            t.ld(ECX, EBX, FIELD_NCHILDREN)
            t.assert_range(ECX, nch, nch)
            t.addi(ECX, 1)
            t.st(ECX, EBX, FIELD_NCHILDREN)

        trace = self.checked_create(
            record,
            args=[spdid, vaddr, dst_spdid, dst_vaddr],
            label="mman_alias_page",
            scan=4,
            retval=dst_vaddr,
            extend=extend,
            extend_key=(parent_record.addr, parent.frame, nchildren),
        )
        self.mappings[child_key] = _Mapping(parent.frame, parent_key)
        parent.children.add(child_key)
        return self.run_op(
            thread, trace, plausible=lambda v: 0 < v < (1 << 31)
        )

    @export
    def mman_release_page(self, thread, spdid, vaddr) -> int:
        key = (spdid, vaddr)
        if key not in self.mappings:
            raise InvalidDescriptor(key, component=self.name)
        node = self.mappings[key]
        subtree = self._collect_subtree(key)
        record = self.record_for(key)
        trace = self.checked_touch(
            record,
            expected=[
                (FIELD_FRAME, node.frame),
                (FIELD_VADDR, vaddr),
            ],
            scan=len(subtree),  # revocation walk over the whole subtree
            args=[spdid, vaddr],
            label="mman_release_page",
            retval=0,
        )
        value = self.run_op(thread, trace, plausible=lambda v: v == 0)
        for node_key in subtree:
            sub = self.mappings.pop(node_key)
            if sub.parent in self.mappings:
                self.mappings[sub.parent].children.discard(node_key)
            if self.has_record(node_key):
                self.drop_record(node_key)
        return value

    def _collect_subtree(self, key: MappingKey) -> List[MappingKey]:
        """All mappings in the subtree rooted at ``key`` (key included)."""
        out: List[MappingKey] = []
        stack = [key]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self.mappings[current].children)
        return out

    # -- test introspection ----------------------------------------------------
    def has_mapping(self, spdid: str, vaddr: int) -> bool:
        return (spdid, vaddr) in self.mappings

    def frame_of(self, spdid: str, vaddr: int) -> int:
        return self.mappings[(spdid, vaddr)].frame

    def parent_of(self, spdid: str, vaddr: int) -> Optional[MappingKey]:
        return self.mappings[(spdid, vaddr)].parent
