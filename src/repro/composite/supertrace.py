"""Tier-3 execution engine: invocation super-traces.

The two-tier trace engine (PR 2) stops at the trace boundary: a clean
invocation still pays kernel dispatch, client-stub transition,
trace-cache lookups, and one Python call per micro-op trace.  This
module records the *whole clean invocation sequence* of a workload —
kernel ``invoke`` -> client stub -> service traces -> return, plus the
post-wakeup stub tracking that runs when a blocked invocation completes
— as a **super-trace**: an ordered list of invocation *units*, each
carrying the unit's complete observable effect (virtual-clock delta,
per-thread cycle/register end state, kernel statistics deltas, memory-
image stores and dirty-page transitions, Python-state patch operations,
and thread wakeups).  Replaying a unit applies those effects directly —
one guard check and one batch of stores instead of the full dispatch
pipeline — while ``execute_trace`` remains authoritative for everything
a recording cannot soundly capture.

Soundness model
---------------

A recording is made once per run spec, on the *pooled* system (the same
sealed system every pooled campaign run restores), by running the spec's
workload with no fault armed.  Replay is a strict prefix discipline over
that recording:

* Each unit's **guard** proves the run's trajectory is still identical
  to the recording's: same invocation signature, same virtual clock,
  no fault delivered, and — decisively — that the armed injection
  *would not have fired inside this unit* (the unit records how many
  eligible trace executions each component would have contributed to an
  armed fault's countdown; the guard adds that to the live countdown
  and bypasses the unit if it would cross the firing threshold, so the
  fault is delivered by the authoritative path at exactly the execution
  the two-tier engine would deliver it).
* Units that park a thread, schedule timers, create threads, return
  non-scalar values, leave register or memory taint, or mutate Python
  state the patch engine cannot prove it can reproduce are recorded as
  **bypass units**: at replay they execute authoritatively (the real
  stub/trace pipeline), then the session verifies the unit ended on the
  recording's virtual clock and keeps replaying.  Blocking workloads
  (lock contention, event waits) therefore stay replayable around
  their parks.
* Any guard failure — most importantly the first fault delivery —
  permanently **diverges** the session: every subsequent invocation
  runs authoritatively.  Replay never approximates; it either proves
  equivalence or steps aside.

The SWIFI purity contract is preserved: the seeded RNG is consumed only
at arm and delivery time (never while counting executions), replayed
units advance all injection countdowns exactly as the authoritative
path would, and replay reproduces memory-image *dirty-page transitions*
as well as word values, so a later authoritative memory-class delivery
draws its flip target from a bit-identical dirty set.

Super-traces are active only for pooled, untraced runs
(``REPRO_SUPER_TRACE=0`` disables them entirely; ``REPRO_SYSTEM_POOL=0``
and flight-recorder runs never attach one), because a recording binds
the sealed system object it was made on.
"""

from __future__ import annotations

import os
import types
import zlib
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.composite.memory import PAGE_SHIFT, PAGE_WORDS
from repro.composite.thread import ThreadState
from repro.errors import BlockThread

__all__ = [
    "super_trace_enabled",
    "tail_replay_enabled",
    "Recording",
    "RecordingSession",
    "ReplaySession",
    "SuperTraceRegistry",
    "REGISTRY",
]


def super_trace_enabled() -> bool:
    """Is the tier-3 engine on?  ``REPRO_SUPER_TRACE=0`` disables it."""
    return os.environ.get("REPRO_SUPER_TRACE", "1") != "0"


def tail_replay_enabled() -> bool:
    """Is divergence-tail re-recording on?  ``REPRO_TAIL_REPLAY=0``
    disables the tail cache while leaving prefix replay untouched."""
    return os.environ.get("REPRO_TAIL_REPLAY", "1") != "0"


#: Cap on cached tails per recording: divergence signatures key on the
#: *converged* post-divergence state (divergence cursor + SWIFI residue
#: + exact system fingerprint), and most injected faults funnel through
#: a handful of recovery paths into a small set of reachable states, so
#: real campaigns saturate far below this; the cap only bounds memory if
#: a workload produces pathological state churn.
_MAX_TAILS = 256


def _swifi_residue(kernel) -> tuple:
    """Order-stable scalar summary of every piece of SWIFI + reboot
    state that can influence execution from this point on.

    This is both tail cache key material and the per-unit pre-state
    guard for recorded tail units: the armed plan (component, reg, bit,
    firing point, countdown), the in-flight idl / burst residue, the
    reboot-log depth, and the *count* of delivered records.  Delivered
    record contents and the last-delivery clock are deliberately left
    out: their only readers are the flight recorder's detection-latency
    stamp (``consume_delivery_latency`` runs solely under
    ``recorder.enabled``, and traced runs never replay) and per-run
    classification (``delivered_count``), neither of which a shared tail
    can perturb.  Keying on the drawn values would make every seed's
    signature unique and no tail would ever be shared.
    """
    booter = kernel.booter
    reboots = len(booter.reboot_log) if booter is not None else 0
    swifi = kernel.swifi
    if swifi is None:
        return (reboots, None, None, None, 0, 0, 0)
    plan = swifi.pending
    if plan is not None:
        plan = (
            plan.component, plan.reg, plan.bit, plan.after_executions,
            plan.seen, plan.fault_class, plan.burst_k, plan.burst_window,
        )
    idl = swifi._idl_pending
    return (
        reboots,
        plan,
        None if idl is None else tuple(idl),
        swifi._idl_ret_pending,
        swifi._burst_remaining,
        swifi._burst_deadline,
        len(swifi.delivered),
    )


#: Lazily bound from :mod:`repro.system` on the first probe (a top-level
#: import would be circular: system builds on the composite package).
_FP_SKIP: Optional[frozenset] = None
_FP_MAX_DEPTH = 8

#: Per-class cache of fingerprint-relevant ``__slots__`` names: resolved
#: over the MRO once, skip-filtered and sorted.  Re-deriving them on
#: every probe is pure overhead — classes don't change mid-campaign.
_FREEZE_SLOTS: Dict[type, tuple] = {}


def _fp_slots(cls) -> tuple:
    slots = _FREEZE_SLOTS.get(cls)
    if slots is None:
        names = set()
        for klass in cls.__mro__:
            names.update(getattr(klass, "__slots__", ()))
        slots = _FREEZE_SLOTS[cls] = tuple(sorted(
            name for name in names
            if name not in _FP_SKIP and not name.startswith("_sealed")
        ))
    return slots


def _fp_freeze(obj, depth: int = 0):
    """Deterministic, hashable structural encoding of ``obj``.

    The probe-speed sibling of :func:`repro.system._flatten`: the same
    traversal semantics — slots + ``__dict__`` with the shared skip set,
    the same depth cap, CRCs for byte blobs, qualnames for callables —
    but it builds nested tuples instead of path-string -> value dicts.
    Equality is all the tail key needs, and dropping the f-string path
    assembly and flat-dict stores is most of the probe's speedup.
    """
    if obj is None:
        return None
    cls = obj.__class__
    if cls is int or cls is str or cls is bool or cls is float:
        return obj
    if depth > _FP_MAX_DEPTH:
        return ("<depth>", cls.__name__)
    if isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return ("b", len(obj), zlib.crc32(bytes(obj)))
    if callable(obj):
        return ("fn", getattr(obj, "__qualname__", repr(obj)))
    if isinstance(obj, dict):
        return ("d", tuple(
            (repr(key), _fp_freeze(obj[key], depth + 1))
            for key in sorted(obj, key=repr)
        ))
    if isinstance(obj, (list, tuple, deque)):
        return ("l", tuple(_fp_freeze(item, depth + 1) for item in obj))
    if isinstance(obj, (set, frozenset)):
        return ("l", tuple(
            _fp_freeze(item, depth) for item in sorted(obj, key=repr)
        ))
    items = []
    for name in _fp_slots(cls):
        try:
            items.append((name, _fp_freeze(getattr(obj, name), depth + 1)))
        except AttributeError:
            pass
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        for name in sorted(attrs):
            if name in _FP_SKIP or name.startswith("_sealed"):
                continue
            items.append((name, _fp_freeze(attrs[name], depth + 1)))
    return ("o", cls.__name__, tuple(items))


def _baseline_page_crcs(image) -> list:
    """Per-page CRCs of the image's sealed good words (the restore
    baseline).  Computed once per (recording, component) and cached —
    ``freeze_good_image`` runs only at attach time, so the baseline is
    stable for the kernel's lifetime."""
    good = image._good_words
    if good is None:
        # Unsealed image (never the case for pooled campaign systems):
        # impossible sentinel CRCs force every dirty page into the
        # delta, which is exact — clean pages are the constant zeros.
        return [-1] * len(image._dirty)
    size = image.size
    return [
        zlib.crc32(good[page << PAGE_SHIFT:
                        min((page + 1) << PAGE_SHIFT, size)].tobytes())
        for page in range(len(image._dirty))
    ]


def _image_delta(image, baseline: list) -> tuple:
    """Canonical content delta of ``image`` against its sealed baseline.

    Only dirty pages can differ from the good words (every write sets
    the page's dirty bit; restore copies good words back and clears it),
    so CRC-ing dirty pages alone discriminates exactly as well as the
    whole-image CRC — at a cost proportional to the run's footprint.
    Dirty pages whose content CRC-matches the baseline are dropped, so
    the delta is independent of *how* a page came to hold its bytes
    (written-then-restored vs never written).  Tainted pages always
    carry their taint-bit CRC: taint only exists on dirty pages, and
    including the bit pattern makes this strictly stronger than the old
    whole-image key (which summarised taint as a count).
    """
    words = image.words
    dirty = image._dirty
    taint = image._taint if image._taint_count else None
    size = image.size
    delta = []
    for page, bit in enumerate(dirty):
        if not bit:
            continue
        lo = page << PAGE_SHIFT
        hi = min(lo + PAGE_WORDS, size)
        tainted = taint is not None and any(taint[lo:hi])
        crc = zlib.crc32(words[lo:hi].tobytes())
        if tainted or crc != baseline[page]:
            delta.append((
                page, crc,
                zlib.crc32(bytes(taint[lo:hi])) if tainted else 0,
            ))
    return tuple(delta)


def _tail_state_key(kernel, page_crcs: Dict[str, list]) -> tuple:
    """Exact, hashable fingerprint of the mutable system state at a
    quiescent divergence point — the tail cache's pre-state proof.

    Two runs share a tail only when this key matches, which is the same
    induction the prefix rests on: the prefix proves its pre-state by
    "sealed snapshot + nothing delivered", a tail proves its by "this
    exact fingerprint".  Semantically the traversal matches
    :func:`repro.system._flatten` (the machinery ``REPRO_POOL_DEBUG``
    uses to prove restored == fresh) and covers everything a unit's
    effects can read: the virtual clock, every thread (registers,
    blocked/pending state, cycle counters), the run-queue order and
    round-robin cursor, every component's image (content delta against
    the sealed baseline + allocator, see :func:`_image_delta`) and state
    dicts, and both stub tracking tables.  ``page_crcs`` caches each
    image's baseline page CRCs across probes (one dict per recording —
    a recording is bound to one kernel, whose good images never change).

    Excluded on purpose: ``kernel.stats`` and engine counters (cold- vs
    warm-cache runs reach identical virtual state with different
    counters — the pooled==fresh differential proves cache state never
    affects virtual evolution), the SWIFI controller (covered by
    :func:`_swifi_residue`, and quiescence pins its RNG), and the
    recovery manager's sample logs (accounting, not behavior).
    """
    global _FP_SKIP, _FP_MAX_DEPTH
    if _FP_SKIP is None:
        from repro.system import _FINGERPRINT_MAX_DEPTH, _FINGERPRINT_SKIP
        _FP_SKIP = _FINGERPRINT_SKIP
        _FP_MAX_DEPTH = _FINGERPRINT_MAX_DEPTH
    threads = kernel.threads
    rq = kernel.run_queue
    key = [
        kernel.clock.now,
        kernel._next_tid,
        repr(kernel.crashed),
        tuple(t.tid for t in rq._threads),
        rq._rr,
        tuple((tid, _fp_freeze(threads[tid])) for tid in sorted(threads)),
    ]
    for name in sorted(kernel.components):
        component = kernel.components[name]
        image = component.image
        # Untouched components encode as a marker: the pool_restore
        # skip test already guarantees "pristine implies sealed state"
        # (a wrong skip would fail the REPRO_POOL_DEBUG differential),
        # and most of a system sits untouched at any divergence point.
        if (
            not (
                component._ran
                or component.reboot_epoch
                or component.faults_detected
            )
            and image.is_pristine()
        ):
            key.append((name, image._alloc_ptr, "pristine"))
            continue
        baseline = page_crcs.get(name)
        if baseline is None:
            baseline = page_crcs[name] = _baseline_page_crcs(image)
        key.append((
            name,
            image._alloc_ptr,
            _image_delta(image, baseline),
            _fp_freeze(image._free_lists),
            _fp_freeze(component),
        ))
    for pair in sorted(kernel._stubs):
        stub = kernel._stubs[pair]
        pristine = getattr(stub, "pool_pristine", None)
        if pristine is not None and pristine():
            key.append((pair, "pristine"))
        else:
            key.append((pair, _fp_freeze(stub)))
    for server in sorted(kernel._server_stubs):
        stub = kernel._server_stubs[server]
        pristine = getattr(stub, "pool_pristine", None)
        if pristine is not None and pristine():
            key.append((server, "pristine"))
        else:
            key.append((server, _fp_freeze(stub)))
    return tuple(key)


def _swifi_quiescent(swifi) -> bool:
    """No future injector RNG draw is possible: nothing armed, no burst
    in flight.  (A fired-but-unapplied retval flip is allowed — its bit
    was already drawn, so its eventual delivery is deterministic and the
    residue equality guards pin it.)  Only past this point can a
    divergence tail be keyed and recorded: before it, the injector may
    still consume the run's seeded RNG, which no recording can share."""
    return swifi is None or (
        swifi.pending is None
        and swifi._idl_pending is None
        and not swifi._burst_remaining
    )


# ---------------------------------------------------------------------------
# Snapshot / diff / patch engine for authoritative Python state
# ---------------------------------------------------------------------------

class _NotReplayable(Exception):
    """This unit's effects cannot be proven reproducible; record a bypass."""


_SCALARS = (bool, int, float, str, bytes, type(None))

#: Plain-data state classes the patch engine may recurse into and
#: reconstruct.  Every cross-reference among them is by key (tids,
#: cdescs, event ids, mapping keys), never by object identity, which is
#: what makes attribute-level patching and per-apply materialisation
#: sound.  Anything outside this set is compared by structural
#: fingerprint and forces a bypass unit if it changed.
_STATE_CLASSES = frozenset(
    {
        "_LockState",
        "_EventState",
        "_TimerState",
        "_Mapping",
        "_File",
        "_Cbuf",
        "Record",
        "DescriptorEntry",
        "TrackingTable",
    }
)

#: Component attributes outside the diff: identity/wiring, the memory
#: image (diffed separately via its dirty-page bitmap), and the trace
#: caches that are deliberately kept warm across pooled runs.
_COMPONENT_SKIP = frozenset(
    {"name", "kernel", "image", "_exports", "_trace_cache", "_track_traces"}
)

#: Client-stub attributes the diff covers (the rest is build-time wiring).
_CLIENT_STUB_ATTRS = ("table", "seen_epoch", "stats")
_SERVER_STUB_ATTRS = ("stats",)

_MAX_DEPTH = 12


def _is_state_obj(value) -> bool:
    cls = type(value)
    return (
        cls.__name__ in _STATE_CLASSES
        and cls.__module__.startswith("repro.")
    )


def _obj_attrs(value) -> List[str]:
    slots = getattr(type(value), "__slots__", None)
    if slots is not None:
        return [s for s in slots if hasattr(value, s)]
    return list(value.__dict__)


class _Snap:
    """One snapshotted slot value: kind tag, data, original reference."""

    __slots__ = ("kind", "data", "ref")

    def __init__(self, kind: str, data, ref=None):
        self.kind = kind
        self.data = data
        self.ref = ref


class _Frozen:
    """A record-time deep copy of a new value, materialised per apply."""

    __slots__ = ("kind", "data", "cls")

    def __init__(self, kind: str, data, cls=None):
        self.kind = kind
        self.data = data
        self.cls = cls


def _fingerprint(value):
    """Order-stable structural fingerprint for non-whitelisted objects."""
    from repro.system import _flatten

    out: Dict[str, object] = {}
    _flatten(value, "x", out)
    return out


def _snap_value(value, depth: int = 0) -> _Snap:
    if depth > _MAX_DEPTH:
        raise _NotReplayable("snapshot depth exceeded")
    if isinstance(value, _SCALARS):
        return _Snap("s", value)
    if isinstance(value, tuple):
        return _Snap("t", tuple(_snap_value(v, depth + 1) for v in value))
    if isinstance(value, list):
        return _Snap(
            "l", [_snap_value(v, depth + 1) for v in value], value
        )
    if isinstance(value, deque):
        return _Snap(
            "q", [_snap_value(v, depth + 1) for v in value], value
        )
    if isinstance(value, (set, frozenset)):
        for item in value:
            if not isinstance(item, _SCALARS + (tuple,)):
                raise _NotReplayable("set of non-scalars")
        return _Snap("e", frozenset(value), value)
    if isinstance(value, bytearray):
        return _Snap("b", bytes(value), value)
    if isinstance(value, dict):
        return _Snap(
            "d", {k: _snap_value(v, depth + 1) for k, v in value.items()},
            value,
        )
    if _is_state_obj(value):
        return _Snap(
            "o",
            {a: _snap_value(getattr(value, a), depth + 1)
             for a in _obj_attrs(value)},
            value,
        )
    if callable(value):
        return _Snap("c", None, value)
    return _Snap("x", _fingerprint(value), value)


def _freeze(value, depth: int = 0) -> object:
    """Record-time deep copy of a *new* value into plain data."""
    if depth > _MAX_DEPTH:
        raise _NotReplayable("freeze depth exceeded")
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return _Frozen("t", tuple(_freeze(v, depth + 1) for v in value))
    if isinstance(value, list):
        return _Frozen("l", [_freeze(v, depth + 1) for v in value])
    if isinstance(value, deque):
        return _Frozen("q", [_freeze(v, depth + 1) for v in value])
    if isinstance(value, (set, frozenset)):
        return _Frozen("e", frozenset(value))
    if isinstance(value, bytearray):
        return _Frozen("b", bytes(value))
    if isinstance(value, dict):
        return _Frozen("d", [(k, _freeze(v, depth + 1))
                             for k, v in value.items()])
    if _is_state_obj(value):
        return _Frozen(
            "o",
            [(a, _freeze(getattr(value, a), depth + 1))
             for a in _obj_attrs(value)],
            type(value),
        )
    raise _NotReplayable(f"cannot freeze {type(value).__name__}")


def _materialize(frozen):
    """Build a fresh instance of a frozen value (one per apply)."""
    if not isinstance(frozen, _Frozen):
        return frozen
    kind = frozen.kind
    if kind == "t":
        return tuple(_materialize(v) for v in frozen.data)
    if kind == "l":
        return [_materialize(v) for v in frozen.data]
    if kind == "q":
        return deque(_materialize(v) for v in frozen.data)
    if kind == "e":
        return set(frozen.data)
    if kind == "b":
        return bytearray(frozen.data)
    if kind == "d":
        return {k: _materialize(v) for k, v in frozen.data}
    if kind == "o":
        obj = frozen.cls.__new__(frozen.cls)
        for attr, value in frozen.data:
            setattr(obj, attr, _materialize(value))
        return obj
    raise AssertionError(f"bad frozen kind {kind!r}")


def _scalar_equal(a, b) -> bool:
    return type(a) is type(b) and a == b


def _snap_equal(snap: _Snap, live) -> bool:
    """Value equality between a snapshot node and a live value."""
    kind = snap.kind
    if kind == "s":
        return isinstance(live, _SCALARS) and _scalar_equal(snap.data, live)
    if kind == "t":
        return (
            isinstance(live, tuple)
            and len(live) == len(snap.data)
            and all(_snap_equal(s, v) for s, v in zip(snap.data, live))
        )
    if kind in ("l", "q"):
        return (
            live is snap.ref
            and len(live) == len(snap.data)
            and all(_snap_equal(s, v) for s, v in zip(snap.data, live))
        )
    if kind == "e":
        return live is snap.ref and frozenset(live) == snap.data
    if kind == "b":
        return live is snap.ref and bytes(live) == snap.data
    if kind == "c":
        return live is snap.ref
    return False  # dict / obj / opaque: diffed structurally, not by value


def _diff_slot(snap: Optional[_Snap], live, path: tuple, ops: list) -> None:
    """Emit patch operations turning the snapshotted slot into ``live``.

    ``path`` is the navigation from the root object: ``("a", name)`` for
    an attribute step, ``("k", key)`` for a container key.  Containers
    and whitelisted state objects are patched *in place* (closures and
    wait queues alias them); rebound or newly created values are frozen
    at record time and materialised fresh on every apply.
    """
    if snap is None:  # newly added slot
        ops.append(("set", path, _freeze(live)))
        return
    kind = snap.kind
    if kind == "s":
        if not (isinstance(live, _SCALARS) and _scalar_equal(snap.data, live)):
            ops.append(("set", path, _freeze(live)))
        return
    if kind == "t":
        if not _snap_equal(snap, live):
            ops.append(("set", path, _freeze(live)))
        return
    if kind in ("l", "q"):
        if live is not snap.ref:
            ops.append(("set", path, _freeze(live)))
        elif not (
            len(live) == len(snap.data)
            and all(_snap_equal(s, v) for s, v in zip(snap.data, live))
        ):
            code = "fill_list" if kind == "l" else "fill_deque"
            ops.append((code, path, _freeze(list(live))))
        return
    if kind == "e":
        if live is not snap.ref:
            ops.append(("set", path, _freeze(live)))
        elif frozenset(live) != snap.data:
            ops.append(("fill_set", path, frozenset(live)))
        return
    if kind == "b":
        if live is not snap.ref:
            ops.append(("set", path, _freeze(live)))
        elif bytes(live) != snap.data:
            ops.append(("fill_bytes", path, bytes(live)))
        return
    if kind == "d":
        if live is not snap.ref:
            ops.append(("set", path, _freeze(live)))
            return
        snap_children = snap.data
        for key in snap_children:
            if key not in live:
                ops.append(("del", path + (("k", key),), None))
        for key, value in live.items():
            _diff_slot(
                snap_children.get(key), value, path + (("k", key),), ops
            )
        return
    if kind == "o":
        if live is not snap.ref:
            ops.append(("set", path, _freeze(live)))
            return
        snap_children = snap.data
        live_attrs = _obj_attrs(live)
        for attr in snap_children:
            if attr not in live_attrs:
                ops.append(("del", path + (("a", attr),), None))
        for attr in live_attrs:
            _diff_slot(
                snap_children.get(attr),
                getattr(live, attr),
                path + (("a", attr),),
                ops,
            )
        return
    if kind == "c":
        if live is not snap.ref:
            raise _NotReplayable("callable slot rebound")
        return
    # opaque object: any structural change forces a bypass unit
    if live is not snap.ref or _fingerprint(live) != snap.data:
        raise _NotReplayable(f"opaque object changed: {type(live).__name__}")


def _navigate(root, steps):
    obj = root
    for code, key in steps:
        obj = getattr(obj, key) if code == "a" else obj[key]
    return obj


def _apply_op(root, op) -> None:
    code, path, payload = op
    if code == "set":
        parent = _navigate(root, path[:-1])
        scode, skey = path[-1]
        if scode == "a":
            setattr(parent, skey, _materialize(payload))
        else:
            parent[skey] = _materialize(payload)
        return
    if code == "del":
        parent = _navigate(root, path[:-1])
        scode, skey = path[-1]
        if scode == "a":
            delattr(parent, skey)
        else:
            del parent[skey]
        return
    target = _navigate(root, path)
    if code == "fill_list":
        target[:] = _materialize(payload)
    elif code == "fill_deque":
        target.clear()
        target.extend(_materialize(payload))
    elif code == "fill_set":
        target.clear()
        target.update(payload)
    elif code == "fill_bytes":
        target[:] = payload
    else:  # pragma: no cover - defensive
        raise AssertionError(f"bad op {code!r}")


# ---------------------------------------------------------------------------
# Unit records
# ---------------------------------------------------------------------------

class Unit:
    """One recorded invocation (or post-wakeup tracking) unit."""

    __slots__ = (
        "kind",          # "invoke" | "unblock" | "block" | "bypass"
        "okind",         # for bypass units: the original unit kind
        "sig",           # (tid, client, server, fn, args[, value_in])
        "start_clock",
        "end_clock",
        "retval",
        "threads_delta",  # ((tid, dcycles, dinvocations), ...)
        "regs_end",       # ((tid, (v0..v7)), ...)
        "stats_delta",    # ((key, delta), ...)
        "tc_delta",       # ((component, delta), ...) swifi.trace_counts
        "ic_delta",       # ((server, delta), ...)    swifi.invoke_counts
        "ic_map",         # dict view of ic_delta for the idl guard
        "armed_hits",     # {component: eligible trace executions}
        "images",         # ((image, stores, dirty_pages, alloc, free), ...)
        "ops",            # ((root_obj, op), ...)
        "wakes",          # ((tid, value, blocked_in, token, has_stub), ...)
        "stub",           # resolved client stub for thread._last_stub
        "fast",           # exec-compiled guard+apply, or None (interpreted)
        "pre",            # tail units: required _swifi_residue pre-state
        "block",          # block units: (component, token, timeout, on_wake)
    )


#: Divergence sentinel returned by compiled unit functions.  Unit return
#: values are scalars (or tuples of scalars), so an ``is`` check against
#: this unique object can never collide with a real result.
_NO = object()


def _key_expr(key) -> str:
    """A scalar (or tuple) as source text; raises unless repr round-trips."""
    if isinstance(key, (bool, int, str, bytes)) or key is None:
        return repr(key)
    if isinstance(key, float):
        if key != key or key in (float("inf"), float("-inf")):
            raise _NotReplayable("non-finite float literal")
        return repr(key)
    if isinstance(key, tuple):
        return (
            "(" + ", ".join(_key_expr(k) for k in key)
            + ("," if len(key) == 1 else "") + ")"
        )
    raise _NotReplayable(f"unliteralisable key {type(key).__name__}")


def _compile_unit(unit: Unit):
    """Compile one replayable unit into a single guard+apply function.

    The generated function takes ``(kernel, thread)`` and either returns
    the unit's recorded value after applying its whole effect, or the
    :data:`_NO` sentinel if any guard fails (caller then diverges to the
    authoritative path).  All constant effects — clock delta, register
    files, memory stores, patch targets — are inlined as literals or
    bound through the function's globals, so a replayed invocation costs
    one Python call of straight-line code.  Returns ``None`` (caller
    keeps the interpreted guard/apply) when a unit's shape defeats the
    code generator.
    """
    g = {
        "_NO": _NO,
        "_READY": ThreadState.READY,
        "_BLOCKED": ThreadState.BLOCKED,
        "_M": _materialize,
        "RV": unit.retval,
        "STUB": unit.stub,
    }
    L = ["def _fast(k, t):"]
    emit = L.append
    # ---- guards -----------------------------------------------------
    emit(f" if k.clock.now != {unit.start_clock}: return _NO")
    emit(" if k.crashed is not None: return _NO")
    if unit.pre is None:
        emit(" b = k.booter")
        emit(" if b is not None and b.reboot_log: return _NO")
        emit(" s = k.swifi")
        emit(" if s is not None:")
        emit("  if s.delivered or s._idl_ret_pending is not None"
             " or s._burst_remaining: return _NO")
        if unit.armed_hits:
            emit("  p = s.pending")
            emit("  if p is not None:")
            for comp, hits in unit.armed_hits.items():
                emit(f"   if p.component == {comp!r} and"
                     f" p.seen + {hits} > p.after_executions: return _NO")
        if unit.ic_map:
            emit("  i = s._idl_pending")
            emit("  if i is not None:")
            for server, delta in unit.ic_map.items():
                emit(f"   if i[0] == {server!r} and"
                     f" i[2] + {delta} > i[1]: return _NO")
    else:
        # Tail unit: the run is past its injection.  Prove the live
        # SWIFI + reboot residue — delivered-record count, pending
        # retval flips, burst state, reboot-log depth — equals the
        # residue the tail was recorded against; the full pre-state was
        # proven once by the tail signature's exact state fingerprint,
        # exactly as the primary path proves its "nothing delivered
        # yet" pre-state against the sealed snapshot.
        g["PRE"] = unit.pre
        g["_RES"] = _swifi_residue
        emit(" if _RES(k) != PRE: return _NO")
        emit(" s = k.swifi")
    emit(" T = k.threads")
    tids = sorted(
        {tid for tid, __, __ in unit.threads_delta}
        | {tid for tid, __ in unit.regs_end}
        | {w[0] for w in unit.wakes}
    )
    for tid in tids:
        emit(f" t{tid} = T.get({tid})")
        emit(f" if t{tid} is None: return _NO")
    for tid, value, blocked_in, token, has_stub in unit.wakes:
        emit(f" if t{tid}.state is not _BLOCKED: return _NO")
        emit(f" if t{tid}.blocked_in != {blocked_in!r}"
             f" or t{tid}.block_token != {token!r}: return _NO")
        emit(f" if (t{tid}.block_stub is not None and"
             f" t{tid}.block_invoke is not None) != {bool(has_stub)}:"
             " return _NO")
    for tid, __ in unit.regs_end:
        emit(f" if True in t{tid}.regs.taint: return _NO")
    for n, (image, __, __, __, __) in enumerate(unit.images):
        g[f"I{n}"] = image
        emit(f" if I{n}._taint_count: return _NO")
    # ---- apply ------------------------------------------------------
    delta = unit.end_clock - unit.start_clock
    if delta:
        emit(f" k.clock.now += {delta}")
    for tid, dc, di in unit.threads_delta:
        if dc:
            emit(f" t{tid}.cycles += {dc}")
        if di:
            emit(f" t{tid}.invocations += {di}")
    for tid, values in unit.regs_end:
        emit(f" t{tid}.regs.values[:] = {values!r}")
    emit(" S = k.stats")
    for key, d in unit.stats_delta:
        emit(f" S[{key!r}] += {d}")
    if unit.pre is None:
        emit(" S['super_trace_runs'] += 1")
    else:
        emit(" S['super_trace_tail_runs'] += 1")
    if unit.tc_delta or unit.ic_delta or unit.armed_hits or unit.ic_map:
        emit(" if s is not None:")
        emit("  c_ = s.trace_counts")
        for comp, d in unit.tc_delta:
            emit(f"  c_[{comp!r}] = c_.get({comp!r}, 0) + {d}")
        emit("  v_ = s.invoke_counts")
        for server, d in unit.ic_delta:
            emit(f"  v_[{server!r}] = v_.get({server!r}, 0) + {d}")
        if unit.armed_hits:
            emit("  p = s.pending")
            emit("  if p is not None:")
            for comp, hits in unit.armed_hits.items():
                emit(f"   if p.component == {comp!r}: p.seen += {hits}")
        if unit.ic_map:
            emit("  i = s._idl_pending")
            emit("  if i is not None:")
            for server, d in unit.ic_map.items():
                emit(f"   if i[0] == {server!r}: i[2] += {d}")
    for n, (image, stores, new_dirty, alloc, free) in enumerate(unit.images):
        if stores:
            g[f"W{n}"] = image.words
            for index, value in stores:
                emit(f" W{n}[{index}] = {value}")
        if new_dirty:
            g[f"D{n}"] = image._dirty
            for page in new_dirty:
                emit(f" D{n}[{page}] = 1")
        if alloc is not None:
            emit(f" I{n}._alloc_ptr = {alloc}")
        if free is not None:
            emit(f" f_ = I{n}._free_lists")
            emit(" f_.clear()")
            for nwords, addrs in free:
                emit(f" f_[{nwords}] = {list(addrs)!r}")
    try:
        npay = 0
        for n, (root, (code, path, payload)) in enumerate(unit.ops):
            rname = f"R{n}"
            g[rname] = root
            expr = rname
            for scode, skey in path[:-1]:
                expr += f".{skey}" if scode == "a" else f"[{_key_expr(skey)}]"
            scode, skey = path[-1]
            last = f".{skey}" if scode == "a" else f"[{_key_expr(skey)}]"
            if code == "set":
                if isinstance(payload, _SCALARS):
                    emit(f" {expr}{last} = {_key_expr(payload)}")
                else:
                    g[f"P{npay}"] = payload
                    emit(f" {expr}{last} = _M(P{npay})")
                    npay += 1
            elif code == "del":
                emit(f" del {expr}{last}")
            else:
                g[f"P{npay}"] = payload
                target = expr + last
                if code == "fill_list":
                    emit(f" {target}[:] = _M(P{npay})")
                elif code == "fill_deque":
                    emit(f" x_ = {target}")
                    emit(" x_.clear()")
                    emit(f" x_.extend(_M(P{npay}))")
                elif code == "fill_set":
                    emit(f" x_ = {target}")
                    emit(" x_.clear()")
                    emit(f" x_.update(P{npay})")
                elif code == "fill_bytes":
                    emit(f" {target}[:] = P{npay}")
                else:
                    return None
                npay += 1
    except _NotReplayable:
        return None
    for tid, value, __, __, __ in unit.wakes:
        emit(f" t{tid}.state = _READY")
        emit(f" t{tid}.blocked_in = None")
        emit(f" t{tid}.block_token = None")
        emit(f" t{tid}.block_on_wake = None")
        emit(f" s_ = t{tid}.block_stub")
        emit(f" t{tid}.block_stub = None")
        emit(f" a_ = t{tid}.block_invoke")
        emit(f" t{tid}.block_invoke = None")
        emit(" if s_ is not None and a_ is not None:")
        emit(f"  t{tid}.pending = ('unblock', s_, a_, {value!r})")
        emit(" else:")
        emit(f"  t{tid}.pending = ('value', {value!r})")
    if unit.okind == "invoke":
        emit(" t._last_stub = STUB")
    emit(" return RV")
    try:
        exec(compile("\n".join(L), "<supertrace>", "exec"), g)
    except SyntaxError:  # pragma: no cover - defensive
        return None
    return g["_fast"]


class Recording:
    """A finished super-trace: the unit sequence plus its provenance.

    Each replayable unit is compiled into one exec-generated function
    (guard checks and effect stores inlined as straight-line code, the
    same technique as :mod:`repro.composite.fastpath`); the interpreted
    guard/apply pair stays as the fallback for units the code generator
    declines.
    """

    __slots__ = ("units", "kernel", "meta", "tails", "page_crcs")

    def __init__(self, units: List[Unit], kernel, meta: dict):
        self.units = units
        self.kernel = kernel
        self.meta = meta
        #: Divergence-tail cache: signature -> compiled secondary unit
        #: sequence (or ``None`` for a tail whose recording failed, so
        #: runs diverging there never re-record it).  Shared by every
        #: replay session on this recording within the process.
        self.tails: Dict[tuple, Optional[List[Unit]]] = {}
        #: Baseline page CRCs per component (see :func:`_tail_state_key`).
        self.page_crcs: Dict[str, list] = {}
        for unit in units:
            unit.fast = (
                _compile_unit(unit) if unit.kind != "bypass" else None
            )

    @property
    def replayable_units(self) -> int:
        return sum(1 for u in self.units if u.kind != "bypass")

    @property
    def bypass_units(self) -> int:
        return sum(1 for u in self.units if u.kind == "bypass")


# ---------------------------------------------------------------------------
# Recording session
# ---------------------------------------------------------------------------

class RecordingSession:
    """Attached to a kernel (``kernel._supertrace``) during the one
    clean recording run; builds the unit list as the run executes."""

    def __init__(self, kernel, tail: bool = False):
        self.kernel = kernel
        #: Tail mode: recording the post-divergence remainder of a live
        #: injected run (instead of the clean whole-run sequence).  Tail
        #: units additionally capture the SWIFI residue at each unit
        #: start, and any unit that *changes* that residue (a retval
        #: flip landing, a delivery latency being consumed) demotes to a
        #: bypass unit so the change replays authoritatively.
        self.tail = tail
        self.units: List[Unit] = []
        self.failed: Optional[str] = None
        self.busy = False
        self._hits: Dict[str, int] = {}
        self._swifi = None
        self._external = False

    def mark_external(self) -> None:
        """Force the unit currently executing to record as a bypass.

        Called from workload-side hooks (e.g. the web server's
        ``on_served`` arming callback) whose side effects live outside
        the kernel state a unit diff captures: a replayed unit would
        skip the hook, so the unit must stay authoritative forever.
        """
        self._external = True

    # -- swifi instrumentation -----------------------------------------
    def instrument(self, swifi) -> None:
        """Count, per unit, the trace executions that would advance an
        armed fault's countdown (component match and non-empty trace)."""
        self._swifi = swifi
        hits = self._hits
        original = type(swifi).take_injection.__get__(swifi)

        def counting(component_name: str, trace_len: int):
            if trace_len > 0:
                hits[component_name] = hits.get(component_name, 0) + 1
            return original(component_name, trace_len)

        swifi.take_injection = counting

    # -- kernel hooks ----------------------------------------------------
    def on_invoke(self, kernel, thread, action):
        client = thread.executing_in or thread.home
        sig = (thread.tid, client, action.server, action.fn, action.args)
        return self._record_unit(
            kernel, "invoke", sig,
            lambda: kernel._invoke_impl(thread, action),
        )

    def on_unblock(self, kernel, thread, stub, action, value):
        sig = (
            thread.tid,
            getattr(stub, "client", None),
            getattr(stub, "server", None),
            action.fn,
            action.args,
            value if isinstance(value, _SCALARS) else "<nonscalar>",
        )
        return self._record_unit(
            kernel, "unblock", sig,
            lambda: stub.post_unblock(kernel, thread, action.fn,
                                      action.args, value),
        )

    def _record_unit(self, kernel, kind, sig, body):
        pre = self._snapshot(kernel)
        start = kernel.clock.now
        self.busy = True
        self._external = False
        try:
            result = body()
        except BlockThread as block:
            # A blocking invocation is unit-shaped too: its effects (wait
            # -queue insertion, trace-op accounting, cycle charges) end at
            # the raise, and the park itself happens in the kernel's run
            # loop *after* it.  Record a "block" unit — the effect diff
            # plus the reconstructible exception — so replay applies the
            # diff and re-raises instead of re-executing the server.
            unit = None
            if not self._external and _block_replayable(block):
                try:
                    unit = self._finish_unit(
                        kernel, kind, sig, pre, start, None
                    )
                except _NotReplayable:
                    unit = None
            if unit is None:
                unit = self._bypass_unit(kind, sig, start, kernel.clock.now)
            else:
                unit.kind = "block"
                unit.block = (
                    block.component, block.token, block.timeout,
                    block.on_wake,
                )
            self.units.append(unit)
            raise
        except BaseException as exc:
            self.failed = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.busy = False
        if self._external:
            self.units.append(
                self._bypass_unit(kind, sig, start, kernel.clock.now)
            )
            return result
        try:
            self.units.append(
                self._finish_unit(kernel, kind, sig, pre, start, result)
            )
        except _NotReplayable:
            self.units.append(
                self._bypass_unit(kind, sig, start, kernel.clock.now)
            )
        return result

    def _bypass_unit(self, okind, sig, start, end) -> Unit:
        unit = Unit()
        unit.kind = "bypass"
        unit.okind = okind
        unit.sig = sig
        unit.start_clock = start
        unit.end_clock = end
        unit.pre = None
        unit.block = None
        return unit

    # -- snapshot --------------------------------------------------------
    def _snapshot(self, kernel):
        self._hits.clear()
        swifi = kernel.swifi
        threads = {
            tid: (
                t.state,
                t.blocked_in,
                t.block_token,
                t.cycles,
                t.invocations,
                tuple(t.regs.values),
            )
            for tid, t in kernel.threads.items()
        }
        images = {}
        for name, comp in kernel.components.items():
            image = comp.image
            dirty = bytes(image._dirty)
            pages = {}
            words = image.words
            size = image.size
            for page in range(len(dirty)):
                if dirty[page]:
                    lo = page << PAGE_SHIFT
                    pages[page] = words[lo:min(lo + PAGE_WORDS, size)]
            images[name] = (
                dirty, pages, image._alloc_ptr,
                {k: tuple(v) for k, v in image._free_lists.items()},
            )
        roots = {}
        for name, comp in kernel.components.items():
            roots[("comp", name)] = {
                attr: _snap_value(value)
                for attr, value in comp.__dict__.items()
                if attr not in _COMPONENT_SKIP
                and not attr.startswith("_sealed")
            }
        for key, stub in kernel._stubs.items():
            roots[("cstub",) + key] = {
                attr: _snap_value(getattr(stub, attr))
                for attr in _CLIENT_STUB_ATTRS
                if hasattr(stub, attr)
            }
        for server, stub in kernel._server_stubs.items():
            roots[("sstub", server)] = {
                attr: _snap_value(getattr(stub, attr))
                for attr in _SERVER_STUB_ATTRS
                if hasattr(stub, attr)
            }
        return {
            "timers": len(kernel.clock._timers),
            "next_tid": kernel._next_tid,
            "n_threads": len(kernel.threads),
            "reboots": len(kernel.booter.reboot_log)
            if kernel.booter is not None else 0,
            "threads": threads,
            "stats": dict(kernel.stats),
            "tc": dict(swifi.trace_counts) if swifi is not None else {},
            "ic": dict(swifi.invoke_counts) if swifi is not None else {},
            "images": images,
            "roots": roots,
            "residue": _swifi_residue(kernel) if self.tail else None,
        }

    # -- diff ------------------------------------------------------------
    def _finish_unit(self, kernel, kind, sig, pre, start, result) -> Unit:
        if kernel.crashed is not None:
            raise _NotReplayable("kernel crashed inside unit")
        if len(kernel.clock._timers) != pre["timers"]:
            raise _NotReplayable("unit scheduled a timer")
        if kernel._next_tid != pre["next_tid"]:
            raise _NotReplayable("unit created a thread")
        if len(kernel.threads) != pre["n_threads"]:
            raise _NotReplayable("thread set changed")
        booter = kernel.booter
        if booter is not None and len(booter.reboot_log) != pre["reboots"]:
            raise _NotReplayable("unit micro-rebooted a component")
        if not _is_scalar_result(result):
            raise _NotReplayable("non-scalar return value")
        if self.tail and _swifi_residue(kernel) != pre["residue"]:
            # A delivery landed or latent injector state advanced inside
            # this unit; it must re-execute authoritatively at replay.
            raise _NotReplayable("swifi residue changed inside unit")

        threads_delta = []
        regs_end = []
        wakes = []
        for tid, t in kernel.threads.items():
            p_state, p_blocked, p_token, p_cycles, p_inv, p_regs = (
                pre["threads"][tid]
            )
            if True in t.regs.taint:
                raise _NotReplayable("register taint at unit end")
            if t.state is not p_state:
                if (
                    p_state is ThreadState.BLOCKED
                    and t.state is ThreadState.READY
                    and t.pending is not None
                    and t.pending[0] in ("unblock", "value")
                ):
                    value = (
                        t.pending[3] if t.pending[0] == "unblock"
                        else t.pending[1]
                    )
                    if not isinstance(value, _SCALARS):
                        raise _NotReplayable("non-scalar wake value")
                    wakes.append(
                        (tid, value, p_blocked, p_token,
                         t.pending[0] == "unblock")
                    )
                else:
                    raise _NotReplayable(
                        f"thread state {p_state}->{t.state}"
                    )
            dc = t.cycles - p_cycles
            di = t.invocations - p_inv
            if dc or di:
                threads_delta.append((tid, dc, di))
            regs = tuple(t.regs.values)
            if regs != p_regs:
                regs_end.append((tid, regs))

        stats_delta = tuple(
            (key, value - pre["stats"][key])
            for key, value in kernel.stats.items()
            if value != pre["stats"].get(key, 0)
        )
        swifi = kernel.swifi
        tc_delta: Tuple = ()
        ic_delta: Tuple = ()
        if swifi is not None:
            tc_delta = tuple(
                (c, n - pre["tc"].get(c, 0))
                for c, n in swifi.trace_counts.items()
                if n != pre["tc"].get(c, 0)
            )
            ic_delta = tuple(
                (s, n - pre["ic"].get(s, 0))
                for s, n in swifi.invoke_counts.items()
                if n != pre["ic"].get(s, 0)
            )

        images = []
        for name, comp in kernel.components.items():
            image = comp.image
            if image._taint_count:
                raise _NotReplayable("memory taint at unit end")
            p_dirty, p_pages, p_alloc, p_free = pre["images"][name]
            stores = []
            new_dirty = []
            dirty = image._dirty
            words = image.words
            good = image._good_words
            size = image.size
            for page in range(len(dirty)):
                if not dirty[page]:
                    continue
                lo = page << PAGE_SHIFT
                hi = min(lo + PAGE_WORDS, size)
                if p_dirty[page]:
                    old = p_pages[page]
                    if words[lo:hi] != old:
                        stores.extend(
                            (i, words[i])
                            for i in range(lo, hi)
                            if words[i] != old[i - lo]
                        )
                else:
                    new_dirty.append(page)
                    if good is not None and words[lo:hi] != good[lo:hi]:
                        stores.extend(
                            (i, words[i])
                            for i in range(lo, hi)
                            if words[i] != good[i]
                        )
            live_free = {k: tuple(v) for k, v in image._free_lists.items()}
            alloc = (
                image._alloc_ptr if image._alloc_ptr != p_alloc else None
            )
            free = (
                tuple(live_free.items()) if live_free != p_free else None
            )
            if stores or new_dirty or alloc is not None or free is not None:
                images.append(
                    (image, tuple(stores), tuple(new_dirty), alloc, free)
                )

        ops = []
        for root_key, slots in pre["roots"].items():
            tag = root_key[0]
            if tag == "comp":
                root = kernel.components[root_key[1]]
                live_slots = {
                    attr: value
                    for attr, value in root.__dict__.items()
                    if attr not in _COMPONENT_SKIP
                    and not attr.startswith("_sealed")
                }
            elif tag == "cstub":
                root = kernel._stubs[root_key[1:]]
                live_slots = {
                    attr: getattr(root, attr)
                    for attr in _CLIENT_STUB_ATTRS
                    if hasattr(root, attr)
                }
            else:
                root = kernel._server_stubs[root_key[1]]
                live_slots = {
                    attr: getattr(root, attr)
                    for attr in _SERVER_STUB_ATTRS
                    if hasattr(root, attr)
                }
            root_ops: List[tuple] = []
            for attr in slots:
                if attr not in live_slots:
                    root_ops.append(("del", (("a", attr),), None))
            for attr, value in live_slots.items():
                _diff_slot(slots.get(attr), value, (("a", attr),), root_ops)
            ops.extend((root, op) for op in root_ops)

        unit = Unit()
        unit.kind = kind
        unit.okind = kind
        unit.sig = sig
        unit.start_clock = start
        unit.end_clock = kernel.clock.now
        unit.retval = result
        unit.threads_delta = tuple(threads_delta)
        unit.regs_end = tuple(regs_end)
        unit.stats_delta = stats_delta
        unit.tc_delta = tc_delta
        unit.ic_delta = ic_delta
        unit.ic_map = dict(ic_delta)
        unit.armed_hits = dict(self._hits)
        unit.images = tuple(images)
        unit.ops = tuple(ops)
        unit.wakes = tuple(wakes)
        unit.stub = (
            kernel._stubs.get((sig[1], sig[2])) if kind == "invoke" else None
        )
        unit.pre = pre["residue"]
        unit.block = None
        return unit

    # -- completion ------------------------------------------------------
    def finish(self, meta: dict) -> Optional[Recording]:
        """Validate and seal the recording; ``None`` if the run failed."""
        if self.failed is not None:
            return None
        kernel = self.kernel
        if kernel.crashed is not None or kernel.last_run_exhausted:
            return None
        if kernel.booter is not None and kernel.booter.reboot_log:
            return None
        recorder = kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "super_trace_record",
                units=len(self.units),
                replayable=sum(
                    1 for u in self.units if u.kind != "bypass"
                ),
                service=str(meta.get("service", "")),
            )
        return Recording(list(self.units), kernel, dict(meta))

    def finish_tail(self, sig: tuple) -> Optional[List[Unit]]:
        """Validate and seal a divergence tail; ``None`` if unusable.

        Unlike :meth:`finish`, a rebooted run is *expected* here — the
        tail of a recovered injection contains the micro-reboot, demoted
        to a bypass unit by the reboot-log growth check.  Crashed or
        budget-exhausted runs are rejected: their ends are not unit-
        shaped, so the signature is cached as a dead entry instead.
        """
        if self.failed is not None:
            return None
        kernel = self.kernel
        if kernel.crashed is not None or kernel.last_run_exhausted:
            return None
        units = list(self.units)
        for unit in units:
            unit.fast = (
                _compile_unit(unit) if unit.kind != "bypass" else None
            )
        recorder = kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "super_trace_tail_record",
                unit_index=int(sig[0]),
                units=len(units),
                replayable=sum(1 for u in units if u.kind != "bypass"),
            )
        return units


def _is_scalar_result(result) -> bool:
    if isinstance(result, _SCALARS):
        return True
    return isinstance(result, tuple) and all(
        isinstance(v, _SCALARS) for v in result
    )


def _block_replayable(block: BlockThread) -> bool:
    """Can this :class:`BlockThread` be reconstructed at replay time?

    The component and token are plain data; ``on_wake`` must be a
    closure-free plain function (every in-tree service raises with
    ``lambda t, token, timeout: 0``), so its behavior depends only on
    its arguments and module globals.  A closure could capture
    record-run locals no replay can prove equal, and a bound method
    could pin record-run object identity — both force a bypass unit.
    """
    on_wake = block.on_wake
    if on_wake is not None and (
        not isinstance(on_wake, types.FunctionType) or on_wake.__closure__
    ):
        return False
    if not (block.timeout is None or isinstance(block.timeout, int)):
        return False
    return _is_scalar_result(block.token)


def _replay_block(unit: Unit) -> BlockThread:
    """A fresh :class:`BlockThread` equivalent to the recorded raise.

    Fresh per replay (never the record-time exception object): raising
    mutates ``__traceback__``, and the kernel's park path reads only the
    component/token/timeout/on_wake attributes reproduced here.
    """
    component, token, timeout, on_wake = unit.block
    return BlockThread(component, token, timeout=timeout, on_wake=on_wake)


# ---------------------------------------------------------------------------
# Replay session
# ---------------------------------------------------------------------------

class ReplaySession:
    """Attached to a kernel for one run; replays the recording prefix.

    With ``tails=True`` the session also drives the **divergence-tail
    cache**: once the prefix diverges (an injection fired), it waits for
    the injector to go quiescent (no future RNG draw possible), keys the
    remainder of the run by a signature — divergence cursor, the SWIFI +
    reboot residue, and an exact fingerprint of the converged system
    state — and either replays a previously recorded tail through the
    same guard+apply machinery or records this run's tail for the next
    run that diverges into the same state.  Keying on converged state
    (not on the values the injector drew) is what makes tails *shared*:
    dozens of distinct flips funnel through the same recovery path into
    the same post-reboot state, and one recorded tail covers them all.
    A guard failure inside a tail falls back to the authoritative
    engine permanently, exactly like the prefix.
    """

    __slots__ = (
        "recording", "cursor", "diverged", "busy",
        "tails", "div_cursor",
        "tail_units", "tail_cursor", "tail_rec", "tail_sig",
    )

    def __init__(self, recording: Recording, tails: bool = False):
        self.recording = recording
        self.cursor = 0
        self.diverged = False
        self.busy = False
        self.tails = recording.tails if tails else None
        self.div_cursor = 0
        self.tail_units: Optional[List[Unit]] = None
        self.tail_cursor = 0
        self.tail_rec: Optional[RecordingSession] = None
        self.tail_sig: Optional[tuple] = None

    # -- kernel hooks ----------------------------------------------------
    def on_invoke(self, kernel, thread, action):
        sig = (
            thread.tid,
            thread.executing_in or thread.home,
            action.server,
            action.fn,
            action.args,
        )
        if not self.diverged:
            units = self.recording.units
            cursor = self.cursor
            if cursor < len(units):
                unit = units[cursor]
                if unit.okind == "invoke" and unit.sig == sig:
                    if unit.kind == "bypass":
                        return self._run_bypass(
                            unit, kernel,
                            lambda: kernel._invoke_impl(thread, action),
                        )
                    fast = unit.fast
                    if fast is not None:
                        result = fast(kernel, thread)
                        if result is not _NO:
                            self.cursor = cursor + 1
                            if unit.kind == "block":
                                raise _replay_block(unit)
                            return result
                    elif self._guard(kernel, unit):
                        self.cursor = cursor + 1
                        self._apply(kernel, unit)
                        thread._last_stub = unit.stub
                        kernel.stats["super_trace_runs"] += 1
                        if unit.kind == "block":
                            raise _replay_block(unit)
                        return unit.retval
            self._diverge(kernel)
        return self._divergent(
            kernel, thread, "invoke", sig,
            lambda: kernel._invoke_impl(thread, action),
        )

    def on_unblock(self, kernel, thread, stub, action, value):
        sig = (
            thread.tid,
            getattr(stub, "client", None),
            getattr(stub, "server", None),
            action.fn,
            action.args,
            value if isinstance(value, _SCALARS) else "<nonscalar>",
        )
        if not self.diverged:
            units = self.recording.units
            cursor = self.cursor
            if cursor < len(units):
                unit = units[cursor]
                if unit.okind == "unblock" and unit.sig == sig:
                    if unit.kind == "bypass":
                        return self._run_bypass(
                            unit, kernel,
                            lambda: stub.post_unblock(
                                kernel, thread, action.fn, action.args, value
                            ),
                        )
                    fast = unit.fast
                    if fast is not None:
                        result = fast(kernel, thread)
                        if result is not _NO:
                            self.cursor = cursor + 1
                            if unit.kind == "block":
                                raise _replay_block(unit)
                            return result
                    elif self._guard(kernel, unit):
                        self.cursor = cursor + 1
                        self._apply(kernel, unit)
                        kernel.stats["super_trace_runs"] += 1
                        if unit.kind == "block":
                            raise _replay_block(unit)
                        return unit.retval
            self._diverge(kernel)
        return self._divergent(
            kernel, thread, "unblock", sig,
            lambda: stub.post_unblock(
                kernel, thread, action.fn, action.args, value
            ),
        )

    # -- divergence ------------------------------------------------------
    def _diverge(self, kernel) -> None:
        """Mark the permanent prefix divergence (counted exactly once)."""
        if not self.diverged:
            self.diverged = True
            self.div_cursor = self.cursor
            kernel.stats["super_trace_divergences"] += 1

    def _divergent(self, kernel, thread, kind, sig, body):
        """One post-divergence unit: tail replay, tail recording, or
        plain authoritative execution."""
        stats = kernel.stats
        tail = self.tail_units
        if tail is None and self.tail_rec is None and self.tails is not None:
            # Probing: the tail cache engages at the first unit boundary
            # where the injector can draw no further RNG — before that,
            # deliveries depend on the run's seed and no tail is shared.
            if _swifi_quiescent(kernel.swifi):
                tsig = (
                    self.div_cursor,
                    _swifi_residue(kernel),
                    _tail_state_key(kernel, self.recording.page_crcs),
                )
                tails = self.tails
                if tsig in tails:
                    cached = tails[tsig]
                    if cached is None:
                        # Known-dead signature (crashed/exhausted tail):
                        # authoritative for the rest of the run.
                        self.tails = None
                    else:
                        self.tail_units = tail = cached
                        self.tail_cursor = 0
                        recorder = kernel.recorder
                        if recorder.enabled:
                            recorder.emit(
                                "super_trace_tail_replay",
                                unit_index=int(self.div_cursor),
                                units=len(cached),
                            )
                elif len(tails) < _MAX_TAILS:
                    self.tail_rec = RecordingSession(kernel, tail=True)
                    self.tail_sig = tsig
                else:
                    self.tails = None
        if tail is not None:
            cursor = self.tail_cursor
            if cursor < len(tail):
                unit = tail[cursor]
                if unit.okind == kind and unit.sig == sig:
                    if unit.kind == "bypass":
                        return self._run_tail_bypass(unit, kernel, body)
                    fast = unit.fast
                    if fast is not None:
                        result = fast(kernel, thread)
                        if result is not _NO:
                            self.tail_cursor = cursor + 1
                            if unit.kind == "block":
                                raise _replay_block(unit)
                            return result
                    elif self._guard(kernel, unit):
                        self.tail_cursor = cursor + 1
                        self._apply(kernel, unit)
                        if unit.okind == "invoke":
                            thread._last_stub = unit.stub
                        stats["super_trace_tail_runs"] += 1
                        if unit.kind == "block":
                            raise _replay_block(unit)
                        return unit.retval
            # Tail guard failure or overrun: authoritative, permanently.
            self.tail_units = None
            self.tails = None
        stats["super_trace_divergent_units"] += 1
        self.busy = True
        try:
            if self.tail_rec is not None:
                return self.tail_rec._record_unit(kernel, kind, sig, body)
            return body()
        finally:
            self.busy = False

    # -- run completion --------------------------------------------------
    def finalize(self, kernel) -> None:
        """Seal a tail recorded during this run; call once at run end.

        A tail that failed to seal (crash, exhausted budget, recorder
        anomaly) is cached as a dead signature so later runs diverging
        identically go straight to the authoritative engine instead of
        re-recording a tail that can never seal.
        """
        rec = self.tail_rec
        if rec is None:
            return
        self.tail_rec = None
        units = rec.finish_tail(self.tail_sig)
        tails = self.recording.tails
        if len(tails) < _MAX_TAILS:
            tails[self.tail_sig] = units
            if units is not None:
                kernel.stats["super_trace_tail_records"] += 1

    # -- bypass units ----------------------------------------------------
    def _run_bypass(self, unit: Unit, kernel, body):
        """Execute a recorded bypass unit authoritatively, verifying the
        run is still on the recording's clock trajectory afterwards."""
        if kernel.clock.now != unit.start_clock:
            self._diverge(kernel)
            kernel.stats["super_trace_divergent_units"] += 1
            self.busy = True
            try:
                return body()
            finally:
                self.busy = False
        self.cursor += 1
        kernel.stats["super_trace_bypasses"] += 1
        self.busy = True
        try:
            result = body()
        except BlockThread:
            if kernel.clock.now != unit.end_clock:
                self._diverge(kernel)
            raise
        finally:
            self.busy = False
        if kernel.clock.now != unit.end_clock:
            self._diverge(kernel)
        return result

    def _run_tail_bypass(self, unit: Unit, kernel, body):
        """A recorded tail bypass unit: authoritative with the same
        start/end clock verification as the prefix bypass path."""
        if kernel.clock.now != unit.start_clock:
            self.tail_units = None
            self.tails = None
            kernel.stats["super_trace_divergent_units"] += 1
            self.busy = True
            try:
                return body()
            finally:
                self.busy = False
        self.tail_cursor += 1
        kernel.stats["super_trace_bypasses"] += 1
        self.busy = True
        try:
            result = body()
        except BlockThread:
            if kernel.clock.now != unit.end_clock:
                self.tail_units = None
                self.tails = None
            raise
        finally:
            self.busy = False
        if kernel.clock.now != unit.end_clock:
            self.tail_units = None
            self.tails = None
        return result

    # -- guard -----------------------------------------------------------
    def _guard(self, kernel, unit: Unit) -> bool:
        if kernel.clock.now != unit.start_clock:
            return False
        if kernel.crashed is not None:
            return False
        if unit.pre is not None:
            # Tail unit: the live SWIFI + reboot residue must equal the
            # recorded pre-state exactly.
            if _swifi_residue(kernel) != unit.pre:
                return False
        else:
            booter = kernel.booter
            if booter is not None and booter.reboot_log:
                return False
            swifi = kernel.swifi
            if swifi is not None:
                if swifi.delivered:
                    return False
                if swifi._idl_ret_pending is not None:
                    return False
                if swifi._burst_remaining:
                    return False
                pending = swifi.pending
                if pending is not None:
                    hits = unit.armed_hits.get(pending.component, 0)
                    if pending.seen + hits > pending.after_executions:
                        return False
                idl = swifi._idl_pending
                if idl is not None:
                    delta = unit.ic_map.get(idl[0], 0)
                    if idl[2] + delta > idl[1]:
                        return False
        threads = kernel.threads
        for tid, value, blocked_in, token, has_stub in unit.wakes:
            t = threads.get(tid)
            if t is None or t.state is not ThreadState.BLOCKED:
                return False
            if t.blocked_in != blocked_in or t.block_token != token:
                return False
            if (
                t.block_stub is not None and t.block_invoke is not None
            ) != has_stub:
                return False
        for tid, __ in unit.regs_end:
            t = threads.get(tid)
            if t is None or True in t.regs.taint:
                return False
        for image, __, __, __, __ in unit.images:
            if image._taint_count:
                return False
        return True

    # -- apply -----------------------------------------------------------
    def _apply(self, kernel, unit: Unit) -> None:
        kernel.clock.now += unit.end_clock - unit.start_clock
        threads = kernel.threads
        for tid, dc, di in unit.threads_delta:
            t = threads[tid]
            t.cycles += dc
            t.invocations += di
        for tid, values in unit.regs_end:
            threads[tid].regs.values[:] = values
        stats = kernel.stats
        for key, delta in unit.stats_delta:
            stats[key] += delta
        swifi = kernel.swifi
        if swifi is not None:
            tc = swifi.trace_counts
            for component, delta in unit.tc_delta:
                tc[component] = tc.get(component, 0) + delta
            ic = swifi.invoke_counts
            for server, delta in unit.ic_delta:
                ic[server] = ic.get(server, 0) + delta
            pending = swifi.pending
            if pending is not None:
                hits = unit.armed_hits.get(pending.component)
                if hits:
                    pending.seen += hits
            idl = swifi._idl_pending
            if idl is not None:
                delta = unit.ic_map.get(idl[0])
                if delta:
                    idl[2] += delta
        for image, stores, new_dirty, alloc, free in unit.images:
            words = image.words
            for index, value in stores:
                words[index] = value
            dirty = image._dirty
            for page in new_dirty:
                dirty[page] = 1
            if alloc is not None:
                image._alloc_ptr = alloc
            if free is not None:
                lists = image._free_lists
                lists.clear()
                for nwords, addrs in free:
                    lists[nwords] = list(addrs)
        for root, op in unit.ops:
            _apply_op(root, op)
        for tid, value, __, __, __ in unit.wakes:
            t = threads[tid]
            t.state = ThreadState.READY
            t.blocked_in = None
            t.block_token = None
            t.block_on_wake = None
            stub = t.block_stub
            t.block_stub = None
            action = t.block_invoke
            t.block_invoke = None
            if stub is not None and action is not None:
                t.pending = ("unblock", stub, action, value)
            else:
                t.pending = ("value", value)


# ---------------------------------------------------------------------------
# Per-process recording registry
# ---------------------------------------------------------------------------

class SuperTraceRegistry:
    """Process-global cache of recordings, keyed by run-spec identity.

    A recording binds the sealed pooled system it was made on (its
    units hold direct image/stub references), so entries are validated
    against the live system object and rebuilt if the pool was cleared.
    A failed build is cached as ``None`` so every run of that spec
    falls back to the authoritative path instead of re-recording.
    """

    def __init__(self):
        self._entries: Dict[tuple, Tuple[object, Optional[Recording]]] = {}
        self.stats = {"builds": 0, "failed_builds": 0, "hits": 0}

    def lookup(self, key: tuple, system) -> Tuple[bool, Optional[Recording]]:
        entry = self._entries.get(key)
        if entry is None or entry[0] is not system:
            return False, None
        self.stats["hits"] += 1
        return True, entry[1]

    def store(self, key: tuple, system, recording: Optional[Recording]):
        self._entries[key] = (system, recording)
        if recording is None:
            self.stats["failed_builds"] += 1
        else:
            self.stats["builds"] += 1

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide registry used by the campaign drivers.
REGISTRY = SuperTraceRegistry()
