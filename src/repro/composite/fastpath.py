"""Tier-2 execution engine: per-trace compiled clean-path interpreter.

The authoritative interpreter (:func:`repro.composite.machine.execute_trace`)
dispatches every micro-op through a string-keyed if/elif chain and threads
taint through every register and memory access.  On the *clean* path — no
pending :class:`~repro.composite.machine.Injection`, no tainted register,
no tainted word in the image — all of that bookkeeping is provably inert:
taint can only be introduced by a bit flip, so a taint-free start implies a
taint-free trace.  That clean path is ~100% of campaign executions (each
run delivers at most one injection into exactly one trace) and 100% of
webserver traffic.

This module compiles a :class:`~repro.composite.machine.Trace` once into a
single specialised Python function — straight-line direct-threaded code:
one statement sequence per micro-op, operands and ``OP_CYCLES`` folded in
as literals, memory bounds inlined as constants, no per-op dispatch and no
taint tracking.  The compiled program runs against the register-value list
and the image's ``array('I')`` words, and raises exactly the same fault
types (and messages) as the slow path.

The slow path remains authoritative: :func:`try_execute_fast` returns
``None`` whenever its preconditions do not hold (pending injection is
checked by the caller; taint is checked here), and the caller falls back
to ``execute_trace``.  The differential test suite in
``tests/composite/test_fastpath.py`` holds the two tiers to identical
results — (value, taint, cycles, stores_tainted), register/memory end
state, and raised-fault parity — over randomized traces.

Set ``REPRO_FAST_INTERP=0`` to disable compilation (every execution then
takes the slow path); the companion tier-1 trace cache is gated separately
by ``REPRO_TRACE_CACHE`` (see :mod:`repro.composite.services.common`).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.composite.machine import (
    ESP,
    HANG_LIMIT,
    OP_CYCLES,
    REG_NAMES,
    Trace,
    TraceResult,
    WORD_MASK,
)
from repro.composite.memory import PAGE_SHIFT
from repro.errors import (
    AssertionFault,
    CorruptionDetected,
    SegmentationFault,
    SystemHang,
)

#: Module-level gate, read from ``REPRO_FAST_INTERP`` at import.  Tests
#: monkeypatch this attribute to force the slow path.
FAST_INTERP_ENABLED = os.environ.get("REPRO_FAST_INTERP", "1") != "0"

#: Clean executions a trace must prove before the fast path will pay
#: ``builtins.compile`` for a *novel* op tuple (a program-cache miss,
#: ~1.4 ms).  Attaching an already-compiled program is nearly free, so
#: that happens on the second clean execution regardless.  Without the
#: higher bar, long-tail traces whose op lists are unique per cache key
#: (seed-dependent record values folded into the ops) each burn one
#: throwaway compile the moment a pooled system re-hits them — slower
#: than just interpreting them forever.
NOVEL_COMPILE_RUNS = 8


class FastProgram:
    """A trace compiled for one (image bounds, component) context.

    The generated code folds only the image's ``base``/``size`` and the
    component name (in fault messages) — never the image object — so a
    program is valid for *any* image with the same bounds.  That is what
    lets the module-level program cache below share compiles across the
    fresh systems a SWIFI campaign builds per run.
    """

    __slots__ = (
        "run", "base", "size", "component_name", "n_ops", "trace_len",
        "source",
    )

    def __init__(self, run, base: int, size: int, component_name: str,
                 n_ops: int, trace_len: int, source: str):
        #: ``run(values, words, dirty) -> (ret_value, cycles)``; raises
        #: the simulated-fault family exactly as the slow path would.
        #: ``dirty`` is the image's dirty-page bitmap: every compiled
        #: store marks its page, same as ``MemoryImage.write_word``.
        self.run = run
        self.base = base
        self.size = size
        self.component_name = component_name
        #: Ops actually compiled (stops at the first unconditional ret).
        self.n_ops = n_ops
        #: len(trace.ops) at compile time — staleness guard against a
        #: builder appending ops after compilation.
        self.trace_len = trace_len
        self.source = source


#: Module-level compiled-program memo.  A SWIFI campaign builds a fresh
#: system per run, so per-trace caching alone would recompile the same op
#: lists hundreds of times; keying on the full op tuple amortises each
#: compile across the whole campaign.  Bounded FIFO, same policy as the
#: tier-1 trace cache.
_PROGRAM_CACHE: dict = {}
_PROGRAM_CACHE_CAPACITY = 4096


def _make_fault_helpers(component_name: str) -> dict:
    """Fault constructors matching the slow path's messages exactly.

    The clean path carries no taint, so a stack access through a bad
    ESP/EBP can only be an untainted (recoverable) segmentation fault —
    the SystemCrash arm of ``_check_addr`` is unreachable here.

    Each helper receives the statically folded partial cycle total and
    the faulting op index (literals in the generated code, so the clean
    path pays nothing for them) and stamps them onto the fault, keeping
    fast-path faults cycle-accountable exactly like the slow path's.
    """

    def _stamp(fault, consumed: int, op_index: int):
        fault.cycles_consumed = consumed
        fault.op_index = op_index
        raise fault

    def oob(addr: int, reg: int, consumed: int, op_index: int):
        _stamp(
            SegmentationFault(
                f"access to unmapped address {addr:#x} "
                f"(via {REG_NAMES[reg]})",
                component=component_name,
            ),
            consumed, op_index,
        )

    def chk_fail(addr: int, word: int, magic: int, consumed: int, op_index: int):
        _stamp(
            CorruptionDetected(
                f"magic check failed at {addr:#x}: "
                f"{word:#x} != {magic:#x}",
                component=component_name,
            ),
            consumed, op_index,
        )

    def assert_eq_fail(reg: int, value: int, imm: int, consumed: int, op_index: int):
        _stamp(
            AssertionFault(
                f"assertion failed: {REG_NAMES[reg]}="
                f"{value:#x} != {imm:#x}",
                component=component_name,
            ),
            consumed, op_index,
        )

    def assert_range_fail(reg: int, value: int, lo: int, hi: int, consumed: int, op_index: int):
        _stamp(
            AssertionFault(
                f"range assertion failed: {REG_NAMES[reg]}="
                f"{value:#x} not in [{lo:#x}, {hi:#x}]",
                component=component_name,
            ),
            consumed, op_index,
        )

    def hang(iters: int, consumed: int, op_index: int):
        _stamp(
            SystemHang(
                f"loop bound {iters:#x} exceeds hang budget",
                component=component_name,
            ),
            consumed, op_index,
        )

    return {
        "_oob": oob,
        "_chk_fail": chk_fail,
        "_aeq_fail": assert_eq_fail,
        "_arange_fail": assert_range_fail,
        "_hang": hang,
    }


def compile_trace(trace: Trace, memory, component_name: str = "?") -> FastProgram:
    """Compile ``trace`` into a specialised clean-path function.

    ``memory`` is the :class:`~repro.composite.memory.MemoryImage` the
    trace will execute against; its base/size are folded into the code as
    literal bounds.  The ``words`` array is still passed per call so the
    program survives ``micro_reboot`` (which restores words in place) and
    transfers to any other image with the same bounds.
    """
    cache_key = (component_name, memory.base, memory.size, tuple(trace.ops))
    cached = _PROGRAM_CACHE.get(cache_key)
    if cached is not None:
        return cached
    base = memory.base
    end = memory.base + memory.size
    lines = ["def _compiled(v, w, d):"]
    emit = lines.append
    cycles = 0  # static cycle total, folded at compile time
    has_loop = False
    n_ops = 0

    for op_index, op in enumerate(trace.ops):
        code = op[0]
        cycles += OP_CYCLES[code]
        n_ops += 1
        # Cycles consumed if this op faults, folded into the generated
        # fault calls as a literal (plus the dynamic loop term once a
        # loop op has appeared) — mirrors the slow path's accounting.
        part = f"{cycles} + cyc" if has_loop or code == "loop" else str(cycles)
        if code == "li":
            emit(f"    v[{op[1]}] = {op[2]}")
        elif code == "mov":
            emit(f"    v[{op[1]}] = v[{op[2]}]")
        elif code == "ld":
            emit(f"    x = (v[{op[2]}] + {op[3]}) & {WORD_MASK}")
            emit(f"    if not {base} <= x < {end}: "
                 f"_oob(x, {op[2]}, {part}, {op_index})")
            emit(f"    v[{op[1]}] = w[x - {base}]")
        elif code == "st":
            emit(f"    x = (v[{op[2]}] + {op[3]}) & {WORD_MASK}")
            emit(f"    if not {base} <= x < {end}: "
                 f"_oob(x, {op[2]}, {part}, {op_index})")
            emit(f"    x -= {base}")
            emit(f"    w[x] = v[{op[1]}]")
            emit(f"    d[x >> {PAGE_SHIFT}] = 1")
        elif code == "add":
            emit(f"    v[{op[1]}] = (v[{op[1]}] + v[{op[2]}]) & {WORD_MASK}")
        elif code == "addi":
            emit(f"    v[{op[1]}] = (v[{op[1]}] + {op[2]}) & {WORD_MASK}")
        elif code == "xor":
            emit(f"    v[{op[1]}] ^= v[{op[2]}]")
        elif code == "chk":
            emit(f"    x = (v[{op[1]}] + {op[2]}) & {WORD_MASK}")
            emit(f"    if not {base} <= x < {end}: "
                 f"_oob(x, {op[1]}, {part}, {op_index})")
            emit(f"    if w[x - {base}] != {op[3]}: "
                 f"_chk_fail(x, w[x - {base}], {op[3]}, {part}, {op_index})")
        elif code == "assert_eq":
            emit(f"    if v[{op[1]}] != {op[2]}: "
                 f"_aeq_fail({op[1]}, v[{op[1]}], {op[2]}, {part}, {op_index})")
        elif code == "assert_range":
            emit(f"    if not {op[2]} <= v[{op[1]}] <= {op[3]}: "
                 f"_arange_fail({op[1]}, v[{op[1]}], {op[2]}, {op[3]}, "
                 f"{part}, {op_index})")
        elif code == "loop":
            has_loop = True
            emit(f"    n = v[{op[1]}]")
            emit(f"    if n > {HANG_LIMIT}: _hang(n, {part}, {op_index})")
            emit(f"    cyc += n * {op[2]}")
        elif code == "push":
            emit(f"    x = (v[{ESP}] - 1) & {WORD_MASK}")
            emit(f"    v[{ESP}] = x")
            emit(f"    if not {base} <= x < {end}: "
                 f"_oob(x, {ESP}, {part}, {op_index})")
            emit(f"    x -= {base}")
            emit(f"    w[x] = v[{op[1]}]")
            emit(f"    d[x >> {PAGE_SHIFT}] = 1")
        elif code == "pop":
            emit(f"    x = v[{ESP}]")
            emit(f"    if not {base} <= x < {end}: "
                 f"_oob(x, {ESP}, {part}, {op_index})")
            emit(f"    v[{op[1]}] = w[x - {base}]")
            emit(f"    v[{ESP}] = (x + 1) & {WORD_MASK}")
        elif code == "ret":
            total = f"{cycles} + cyc" if has_loop else str(cycles)
            emit(f"    return v[{op[1]}], {total}")
            break  # straight-line ISA: ops past an unconditional ret are dead
        else:  # pragma: no cover - defensive, mirrors the slow path
            raise AssertionError(f"unknown micro-op {code!r}")
    else:
        # Trace fell off the end without a ret: the slow path returns 0.
        total = f"{cycles} + cyc" if has_loop else str(cycles)
        emit(f"    return 0, {total}")

    if has_loop:
        lines.insert(1, "    cyc = 0")
    source = "\n".join(lines)
    namespace = _make_fault_helpers(component_name)
    exec(compile(source, f"<fastpath:{trace.label or component_name}>", "exec"),
         namespace)
    program = FastProgram(
        namespace["_compiled"], memory.base, memory.size, component_name,
        n_ops, len(trace.ops), source,
    )
    if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_CAPACITY:
        _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
    _PROGRAM_CACHE[cache_key] = program
    return program


def try_execute_fast(
    trace: Trace, regs, memory, component_name: str = "?", recorder=None
) -> Optional[TraceResult]:
    """Execute ``trace`` on the compiled clean path, if eligible.

    Returns ``None`` when the fast path cannot be used (disabled, tainted
    register, or tainted image word) — the caller must then fall back to
    :func:`~repro.composite.machine.execute_trace`.  The caller is
    responsible for ensuring no injection is pending.  Simulated faults
    propagate exactly as from the slow path.

    ``recorder`` is an (already enabled) flight recorder, or ``None``;
    it observes only the compile/attach boundary — nothing is emitted
    per executed micro-op, so tracing cannot perturb the fast path's
    per-op loop.
    """
    if not FAST_INTERP_ENABLED:
        return None
    try:
        tainted = memory._taint_count
    except AttributeError:
        # Not a MemoryImage stand-in we know how to vet: stay slow.
        return None
    if tainted or True in regs.taint:
        return None
    program = trace._compiled
    if (
        program is None
        or program.base != memory.base
        or program.size != memory.size
        or program.trace_len != len(trace.ops)
        or program.component_name != component_name
    ):
        runs = trace._clean_runs
        if runs == 0:
            # Warm-up: compiling costs far more than one interpreted run,
            # so a trace must prove it is re-executed (cache-hit service
            # traces, reused tracking traces) before it is compiled.
            # One-shot traces take the slow path forever.
            trace._clean_runs = 1
            return None
        if runs < NOVEL_COMPILE_RUNS:
            # Re-executed, but not yet hot enough to justify compiling
            # from scratch.  If an identical op tuple was already
            # compiled elsewhere (fresh campaign systems rebuild the
            # same traces every run), attach it — that is a dict lookup,
            # not a compile.  Otherwise keep interpreting until the
            # trace earns a novel compile.
            cached = _PROGRAM_CACHE.get(
                (component_name, memory.base, memory.size, tuple(trace.ops))
            )
            if cached is None:
                trace._clean_runs = runs + 1
                return None
        program = compile_trace(trace, memory, component_name)
        trace._compiled = program
        if recorder is not None:
            recorder.emit(
                "fastpath_compile",
                component=component_name,
                label=trace.label,
                ops=program.n_ops,
            )
    value, cycles = program.run(regs.values, memory.words, memory._dirty)
    return TraceResult(value, False, cycles, 0)
