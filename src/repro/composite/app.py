"""Application-level client components.

Client components host workload threads and, importantly for recovery,
receive *upcalls*: U0 recovery upcalls into the component that created a
global descriptor, and MM mapping-recovery upcalls (Section II-D).  The
handlers are registered dynamically (client stubs register themselves so
recovery can reach their tracking state).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.composite.component import Component
from repro.errors import CapabilityError


class AppComponent(Component):
    """A client component with dynamically registered upcall handlers."""

    def __init__(self, name: str):
        super().__init__(name)
        self._handlers: Dict[str, Callable] = {}

    def reinit(self) -> None:
        # Application components are not micro-rebooted in this work
        # (SuperGlue does not target application-level faults).
        if not hasattr(self, "_handlers"):
            self._handlers = {}

    def pool_seal(self) -> None:
        self._sealed_handlers = dict(self._handlers)

    def _pool_restore_impl(self) -> None:
        # reinit preserves handlers (apps are never micro-rebooted), so a
        # pooled restore reinstates the sealed registration set instead.
        super()._pool_restore_impl()
        self._handlers = dict(getattr(self, "_sealed_handlers", {}))

    def register_handler(self, fn: str, handler: Callable) -> None:
        """Expose ``handler`` as an upcall entry point named ``fn``."""
        self._ran = True
        self._handlers[fn] = handler

    def dispatch(self, fn: str, thread, args):
        handler = self._handlers.get(fn)
        if handler is None:
            return super().dispatch(fn, thread, args)
        self._ran = True
        return handler(thread, *args)

    @property
    def handlers(self):
        return dict(self._handlers)


class ClientComponentError(CapabilityError):
    """Raised when an upcall targets a handler that is not registered."""
