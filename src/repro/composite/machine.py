"""Simulated machine: register files, micro-op traces, and their interpreter.

The paper injects transient faults by flipping bits in CPU registers of
threads executing *within* a target system component (Section V-A).  For
that to be meaningful in a simulation, component interface functions must
actually *execute* through registers and memory.  This module provides:

* an 8-register, 32-bit register file per thread (6 general-purpose
  registers plus ``ESP``/``EBP``, as in the paper);
* a tiny micro-op ISA (loads, stores, ALU ops, magic-word checks,
  assertions, bounded loops, stack push/pop, return);
* a :class:`Trace` builder that services use to mirror each interface
  operation onto simulated memory; and
* an interpreter that executes traces, accounts virtual cycles, applies a
  pending bit-flip injection, and lets the *natural* consequences of the
  flip surface: out-of-range addresses raise simulated segmentation faults,
  corrupted magic words raise corruption checks, corrupted loop bounds hang,
  dead registers go unnoticed.

Taint is tracked so that a corrupted value escaping through ``ret`` can be
flagged — this is how fault *propagation* into clients is modelled.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import (
    AssertionFault,
    CorruptionDetected,
    SegmentationFault,
    SimulatedFault,
    SystemCrash,
    SystemHang,
)

WORD_MASK = 0xFFFFFFFF
NUM_REGS = 8

# Register names (x86-32 flavoured, as in the paper's SWIFI setup:
# six general-purpose registers plus the two special registers ESP, EBP).
EAX, EBX, ECX, EDX, ESI, EDI, ESP, EBP = range(8)
REG_NAMES = ("EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "ESP", "EBP")
GP_REGS = (EAX, EBX, ECX, EDX, ESI, EDI)

#: iterations above which a loop is declared hung (latent-fault detection
#: budget; C'MON-style watchdog).
HANG_LIMIT = 1 << 16

#: Per-op virtual cycle costs.  Loads/stores cost more than ALU ops; the
#: absolute values only matter relative to the invocation cost constants in
#: :mod:`repro.composite.kernel`.
OP_CYCLES = {
    "li": 1,
    "mov": 1,
    "add": 1,
    "addi": 1,
    "xor": 1,
    "ld": 3,
    "st": 3,
    "chk": 4,
    "assert_eq": 2,
    "assert_range": 2,
    "loop": 2,
    "push": 3,
    "pop": 3,
    "ret": 1,
}


class RegisterFile:
    """Eight 32-bit registers with per-register taint bits.

    Taint marks values derived from an injected bit flip; it is how the
    simulation distinguishes "the flip was overwritten before use"
    (undetected fault) from "the flip reached an observable action".
    """

    __slots__ = ("values", "taint")

    def __init__(self):
        self.values: List[int] = [0] * NUM_REGS
        self.taint: List[bool] = [False] * NUM_REGS

    def write(self, reg: int, value: int, tainted: bool = False) -> None:
        self.values[reg] = value & WORD_MASK
        self.taint[reg] = tainted

    def read(self, reg: int) -> int:
        return self.values[reg]

    def flip_bit(self, reg: int, bit: int) -> None:
        """Apply a single-event upset: flip one bit and mark the register."""
        self.values[reg] ^= (1 << bit) & WORD_MASK
        self.taint[reg] = True

    def clear_taint(self) -> None:
        for i in range(NUM_REGS):
            self.taint[i] = False

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self.values)


class Injection:
    """A pending single-bit flip to apply during trace execution.

    Attributes:
        reg: register index (0-7).
        bit: bit position (0-31).
        op_index: micro-op index before which the flip is applied.
    """

    __slots__ = ("reg", "bit", "op_index", "applied")

    def __init__(self, reg: int, bit: int, op_index: int):
        self.reg = reg
        self.bit = bit
        self.op_index = op_index
        self.applied = False

    def __repr__(self):
        return (
            f"Injection(reg={REG_NAMES[self.reg]}, bit={self.bit}, "
            f"op_index={self.op_index})"
        )


class Trace:
    """A straight-line micro-op trace for one interface operation.

    Services build one trace per interface call, mirroring the loads,
    stores, and consistency checks the real C implementation would perform
    on its data structures.
    """

    __slots__ = ("ops", "label", "entry_regs", "sealed", "_compiled", "_clean_runs")

    def __init__(self, label: str = ""):
        self.ops: List[tuple] = []
        self.label = label
        #: Register values the invocation delivers on entry (arguments and
        #: the record address travel in registers, so they are live — and
        #: flip-vulnerable — from the first micro-op).
        self.entry_regs: dict = {}
        #: Set by ServiceComponent.finish once the epilogue is appended;
        #: cached traces are sealed so a redundant finish cannot grow them.
        self.sealed = False
        #: Fast-path program (repro.composite.fastpath.FastProgram),
        #: compiled lazily once the trace proves hot (second clean run).
        self._compiled = None
        #: Clean executions seen so far; the fast path only compiles a
        #: trace that is executed more than once, so single-shot traces
        #: never pay the (comparatively large) compile cost.
        self._clean_runs = 0

    def __len__(self):
        return len(self.ops)

    # -- builders ----------------------------------------------------------
    def li(self, dst: int, imm: int) -> "Trace":
        self.ops.append(("li", dst, imm & WORD_MASK))
        return self

    def mov(self, dst: int, src: int) -> "Trace":
        self.ops.append(("mov", dst, src))
        return self

    def ld(self, dst: int, addr_reg: int, off: int = 0) -> "Trace":
        self.ops.append(("ld", dst, addr_reg, off))
        return self

    def st(self, src: int, addr_reg: int, off: int = 0) -> "Trace":
        self.ops.append(("st", src, addr_reg, off))
        return self

    def add(self, dst: int, src: int) -> "Trace":
        self.ops.append(("add", dst, src))
        return self

    def addi(self, dst: int, imm: int) -> "Trace":
        self.ops.append(("addi", dst, imm & WORD_MASK))
        return self

    def xor(self, dst: int, src: int) -> "Trace":
        self.ops.append(("xor", dst, src))
        return self

    def chk(self, addr_reg: int, off: int, magic: int) -> "Trace":
        """Load a word and verify it equals a magic value (fail-stop)."""
        self.ops.append(("chk", addr_reg, off, magic & WORD_MASK))
        return self

    def assert_eq(self, reg: int, imm: int) -> "Trace":
        self.ops.append(("assert_eq", reg, imm & WORD_MASK))
        return self

    def assert_range(self, reg: int, lo: int, hi: int) -> "Trace":
        self.ops.append(("assert_range", reg, lo & WORD_MASK, hi & WORD_MASK))
        return self

    def loop(self, reg: int, cost_per_iter: int = 2) -> "Trace":
        """Model a loop of ``reg`` iterations (e.g. a list/tree walk)."""
        self.ops.append(("loop", reg, cost_per_iter))
        return self

    def push(self, src: int) -> "Trace":
        self.ops.append(("push", src))
        return self

    def pop(self, dst: int) -> "Trace":
        self.ops.append(("pop", dst))
        return self

    def ret(self, src: int = EAX) -> "Trace":
        self.ops.append(("ret", src))
        return self

    # Conventional function prologue/epilogue: real stub/server code always
    # runs these, which is what exposes ESP/EBP to injections.
    def prologue(self) -> "Trace":
        return self.push(EBP).mov(EBP, ESP)

    def epilogue(self, retreg: int = EAX) -> "Trace":
        # x86 `leave`: restore the stack pointer from the frame pointer,
        # then pop the saved frame pointer.  This keeps EBP live (a flip in
        # it surfaces as a bad stack access) exactly as in real code.
        return self.mov(ESP, EBP).pop(EBP).ret(retreg)


class TraceResult:
    """Outcome of executing a trace."""

    __slots__ = ("value", "tainted", "cycles", "stores_tainted")

    def __init__(self, value: int, tainted: bool, cycles: int, stores_tainted: int):
        self.value = value
        self.tainted = tainted
        self.cycles = cycles
        self.stores_tainted = stores_tainted


def execute_trace(
    trace: Trace,
    regs: RegisterFile,
    memory,
    component_name: str = "?",
    injection: Optional[Injection] = None,
) -> TraceResult:
    """Interpret ``trace`` against ``regs`` and ``memory``.

    ``memory`` is a :class:`repro.composite.memory.MemoryImage`.  If
    ``injection`` is given, its bit flip is applied immediately before the
    micro-op at ``injection.op_index`` (clamped to the trace length), after
    which the corrupted register's effects play out naturally.

    Raises the :class:`~repro.errors.SimulatedFault` family on detected
    faults.  Returns a :class:`TraceResult` otherwise.
    """
    cycles = 0
    ret_value = 0
    ret_tainted = False
    stores_tainted = 0
    values = regs.values
    taint = regs.taint
    inj_index = -1
    if injection is not None and not injection.applied:
        inj_index = min(injection.op_index, max(len(trace.ops) - 1, 0))

    index = -1
    try:
        for index, op in enumerate(trace.ops):
            if index == inj_index:
                regs.flip_bit(injection.reg, injection.bit)
                injection.applied = True
            code = op[0]
            cycles += OP_CYCLES[code]

            if code == "li":
                values[op[1]] = op[2]
                taint[op[1]] = False
            elif code == "mov":
                values[op[1]] = values[op[2]]
                taint[op[1]] = taint[op[2]]
            elif code == "ld":
                addr = (values[op[2]] + op[3]) & WORD_MASK
                _check_addr(addr, memory, component_name, op[2], taint[op[2]], store=False)
                values[op[1]] = memory.read_word(addr)
                taint[op[1]] = taint[op[2]] or memory.is_tainted(addr)
            elif code == "st":
                addr = (values[op[2]] + op[3]) & WORD_MASK
                _check_addr(addr, memory, component_name, op[2], taint[op[2]], store=True)
                tainted_store = taint[op[1]] or taint[op[2]]
                memory.write_word(addr, values[op[1]], tainted=tainted_store)
                if tainted_store:
                    stores_tainted += 1
            elif code == "add":
                values[op[1]] = (values[op[1]] + values[op[2]]) & WORD_MASK
                taint[op[1]] = taint[op[1]] or taint[op[2]]
            elif code == "addi":
                values[op[1]] = (values[op[1]] + op[2]) & WORD_MASK
            elif code == "xor":
                values[op[1]] = values[op[1]] ^ values[op[2]]
                taint[op[1]] = taint[op[1]] or taint[op[2]]
            elif code == "chk":
                addr = (values[op[1]] + op[2]) & WORD_MASK
                _check_addr(addr, memory, component_name, op[1], taint[op[1]], store=False)
                word = memory.read_word(addr)
                if word != op[3]:
                    raise CorruptionDetected(
                        f"magic check failed at {addr:#x}: "
                        f"{word:#x} != {op[3]:#x}",
                        component=component_name,
                    )
            elif code == "assert_eq":
                if values[op[1]] != op[2]:
                    raise AssertionFault(
                        f"assertion failed: {REG_NAMES[op[1]]}="
                        f"{values[op[1]]:#x} != {op[2]:#x}",
                        component=component_name,
                    )
            elif code == "assert_range":
                if not (op[2] <= values[op[1]] <= op[3]):
                    raise AssertionFault(
                        f"range assertion failed: {REG_NAMES[op[1]]}="
                        f"{values[op[1]]:#x} not in [{op[2]:#x}, {op[3]:#x}]",
                        component=component_name,
                    )
            elif code == "loop":
                iters = values[op[1]]
                if iters > HANG_LIMIT:
                    raise SystemHang(
                        f"loop bound {iters:#x} exceeds hang budget",
                        component=component_name,
                    )
                cycles += iters * op[2]
            elif code == "push":
                values[ESP] = (values[ESP] - 1) & WORD_MASK
                addr = values[ESP]
                _check_addr(addr, memory, component_name, ESP, taint[ESP], store=True)
                memory.write_word(addr, values[op[1]], tainted=taint[op[1]] or taint[ESP])
            elif code == "pop":
                addr = values[ESP]
                _check_addr(addr, memory, component_name, ESP, taint[ESP], store=False)
                values[op[1]] = memory.read_word(addr)
                taint[op[1]] = taint[ESP] or memory.is_tainted(addr)
                values[ESP] = (values[ESP] + 1) & WORD_MASK
            elif code == "ret":
                ret_value = values[op[1]]
                ret_tainted = taint[op[1]]
                break
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown micro-op {code!r}")
    except SimulatedFault as fault:
        # Tell the caller how far execution actually got: the virtual
        # time of the ops up to and including the faulting one, and the
        # faulting op's index.  Component.execute charges exactly this
        # instead of approximating with the full-trace cost (which
        # overcharged first-op faults by the whole trace length).
        fault.cycles_consumed = cycles
        fault.op_index = index
        raise

    return TraceResult(ret_value, ret_tainted, cycles, stores_tainted)


def _check_addr(addr, memory, component_name, addr_reg, addr_tainted, store):
    """Bounds-check a memory access; raise the appropriate fault.

    An out-of-range access is a segmentation fault.  If the bad address
    came from a corrupted *stack* register, the exception path itself —
    which diverts the thread to the booter via the thread's stack — is
    destroyed, so the whole system exits with a segmentation fault rather
    than fail-stopping; this models the paper's "Not recovered (segfault)"
    outcome (Section V-D: Sched shows the most such crashes).
    """
    if memory.contains(addr):
        return
    if addr_reg in (ESP, EBP) and addr_tainted:
        raise SystemCrash(
            f"stack access through corrupted {REG_NAMES[addr_reg]} "
            f"at {addr:#x}: exception path destroyed",
            component=component_name,
        )
    raise SegmentationFault(
        f"access to unmapped address {addr:#x} "
        f"(via {REG_NAMES[addr_reg]})",
        component=component_name,
    )
