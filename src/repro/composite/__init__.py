"""Simulated COMPOSITE component-based OS substrate."""

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.cbuf import CbufManager
from repro.composite.component import Component, export
from repro.composite.kernel import FAULT, Kernel
from repro.composite.memory import MemoryImage
from repro.composite.thread import Invoke, SimThread, ThreadState, Yield

__all__ = [
    "AppComponent",
    "Booter",
    "CbufManager",
    "Component",
    "export",
    "FAULT",
    "Kernel",
    "MemoryImage",
    "Invoke",
    "SimThread",
    "ThreadState",
    "Yield",
]
