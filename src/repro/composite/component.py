"""Component base class: isolated memory, exported interface, micro-reboot.

A COMPOSITE component is a user-level, hardware-isolated module exporting a
set of interface functions (Section II-B).  Subclasses implement services
by:

* declaring interface functions with the :func:`export` decorator;
* keeping *authoritative* state in Python attributes (re-created by
  :meth:`Component.reinit`); and
* mirroring each operation onto the component's simulated
  :class:`~repro.composite.memory.MemoryImage` via micro-op traces executed
  with :meth:`Component.execute` — this is the surface SWIFI faults hit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.composite.fastpath import try_execute_fast
from repro.composite.machine import (
    EBP,
    ESP,
    WORD_MASK,
    Trace,
    TraceResult,
    execute_trace,
)
from repro.composite.memory import DEFAULT_IMAGE_WORDS, MemoryImage
from repro.errors import (
    AssertionFault,
    CapabilityError,
    PropagatedFault,
    ReproError,
)


def export(fn: Callable) -> Callable:
    """Mark a method as part of the component's exported interface."""
    fn.__exported__ = True
    return fn


class Component:
    """Base class for all simulated components.

    Attributes:
        name: unique component name (its "spdid" for interface purposes).
        kernel: back-reference, set when registered.
        image: the component's private simulated memory.
        reboot_epoch: incremented on every micro-reboot; client stubs compare
            it against the epoch they last synchronised with to detect that
            recovery is needed (the CSTUB_FAULT_UPDATE of Fig. 4).
    """

    #: Subclasses may override to size their image.
    image_words = DEFAULT_IMAGE_WORDS

    def __init__(self, name: str):
        self.name = name
        self.kernel = None
        self.image: Optional[MemoryImage] = None
        self.reboot_epoch = 0
        self.faults_detected = 0
        #: Set on every dispatch/execute; lets a pooled restore skip
        #: components the previous run never entered.
        self._ran = False
        self._exports: Dict[str, Callable] = {}
        for attr in dir(type(self)):
            # Look on the class (not the instance) so properties are not
            # evaluated before subclass __init__ completes.
            class_attr = getattr(type(self), attr, None)
            if callable(class_attr) and getattr(class_attr, "__exported__", False):
                self._exports[attr] = getattr(self, attr)

    # -- lifecycle ----------------------------------------------------------
    def attach(self, kernel, image_base: int) -> None:
        """Wire the component into a kernel and build its initial state."""
        self.kernel = kernel
        self.image = MemoryImage(image_base, self.image_words)
        self.reinit()
        self.image.freeze_good_image()

    def reinit(self) -> None:
        """(Re-)create the component's internal state from scratch.

        Called at attach time and again after every micro-reboot.  Must not
        assume any prior state survives.
        """

    def micro_reboot(self) -> int:
        """Restore the good image and re-initialise; returns cycle cost."""
        self.image.micro_reboot()
        self.reinit()
        self.reboot_epoch += 1
        return self.image.reboot_cost_cycles

    # -- system-pool snapshot/restore ----------------------------------------
    def pool_seal(self) -> None:
        """Capture post-boot state a pooled restore must reinstate.

        The base component needs nothing beyond the good image frozen at
        attach time; subclasses whose ``reinit`` deliberately preserves
        state across micro-reboots (storage, cbuf, apps) override this to
        copy that state aside.
        """

    def pool_restore(self) -> None:
        """Reset to the post-boot state, replaying :meth:`attach`'s path.

        Unlike :meth:`micro_reboot`, the allocator rewinds to its
        pre-init position so ``reinit`` re-allocates at exactly the
        addresses a fresh build would — restored and fresh systems stay
        structurally identical, which is what keeps pooled campaign runs
        bit-identical to fresh-build runs.

        Components the previous run never entered (no dispatch or trace
        execution, no reboot, image untouched) are skipped outright:
        their state *is* the post-boot state, and a typical campaign run
        enters only a handful of the system's components.
        """
        if not (
            self._ran
            or self.reboot_epoch
            or self.faults_detected
        ) and self.image.is_pristine():
            return
        self._pool_restore_impl()

    def _pool_restore_impl(self) -> None:
        self.image.restore_initial()
        self.reinit()
        self.reboot_epoch = 0
        self.faults_detected = 0
        self._ran = False

    # -- interface dispatch ---------------------------------------------------
    @property
    def exports(self):
        return frozenset(self._exports)

    def dispatch(self, fn: str, thread, args) -> object:
        if fn not in self._exports:
            raise CapabilityError(f"{self.name} does not export {fn!r}")
        self._ran = True
        return self._exports[fn](thread, *args)

    # -- trace execution --------------------------------------------------------
    def execute(self, thread, trace: Trace) -> TraceResult:
        """Run a micro-op trace in this component on behalf of ``thread``.

        Sets up the stack registers for entry into this component, pulls a
        pending SWIFI injection (if one is armed for this component), and
        charges the consumed cycles to the thread and the global clock.

        A tainted return value models a corrupted value crossing the
        interface; whether that becomes a *propagated* fault is decided by
        the caller (stub validation usually catches it).
        """
        self._ran = True
        regs = thread.regs
        # Entry-register setup is the per-trace hot path (one execute per
        # service/tracking trace): poke the register file's lists
        # directly instead of paying a method call per register.
        values = regs.values
        taint = regs.taint
        top = self.image.stack_top
        values[ESP] = top
        taint[ESP] = False
        values[EBP] = top
        taint[EBP] = False
        for reg, value in trace.entry_regs.items():
            values[reg] = value & WORD_MASK
            taint[reg] = False
        kernel = self.kernel
        if kernel is None:
            # Unattached execution (unit tests drive traces directly):
            # no SWIFI, no stats, no cycle accounting.
            result = try_execute_fast(trace, regs, self.image, self.name)
            if result is None:
                result = execute_trace(
                    trace, regs, self.image, component_name=self.name,
                    injection=None,
                )
            return result
        recorder = kernel.recorder
        traced = recorder.enabled
        swifi = kernel.swifi
        injection = (
            swifi.take_injection(self.name, len(trace))
            if swifi is not None else None
        )
        if injection is not None and traced:
            # The flip is applied inside the upcoming execution;
            # record exactly where it lands.  Events are emitted only
            # here, at the trace-execution boundary — never from
            # inside the interpreter or the compiled fast path.
            recorder.emit(
                "swifi_inject",
                component=self.name,
                reg=injection.reg,
                bit=injection.bit,
                op_index=injection.op_index,
                trace_len=len(trace),
                label=trace.label,
            )
        try:
            # Tier 2: no pending injection and no live taint means the
            # taint machinery is provably inert — run the compiled clean
            # path.  Anything else takes the authoritative interpreter.
            result = None
            if injection is None:
                result = try_execute_fast(
                    trace, regs, self.image, self.name,
                    recorder=recorder if traced else None,
                )
            fast = result is not None
            if not fast:
                result = execute_trace(
                    trace, regs, self.image, component_name=self.name,
                    injection=injection,
                )
                kernel.stats["interp_slow_runs"] += 1
            else:
                kernel.stats["interp_fast_runs"] += 1
        except Exception as exc:
            # A faulting trace still consumed time.  The trace engines
            # stamp the exact cycle count on the fault as it unwinds;
            # only faults raised before any op ran (entry guards,
            # harness errors) lack it, and those fall back to the
            # conservative whole-trace estimate.
            consumed = getattr(exc, "cycles_consumed", None)
            kernel.charge(
                thread, 3 * len(trace) if consumed is None else consumed
            )
            raise
        if traced:
            recorder.emit(
                "trace_exec",
                component=self.name,
                label=trace.label,
                fast=fast,
                injected=injection is not None,
                cycles=result.cycles,
            )
        kernel.charge(thread, result.cycles)
        return result

    def check_return(self, result: TraceResult, plausible) -> int:
        """Validate a trace's return value against interface expectations.

        ``plausible`` is a predicate over the returned value.  A tainted
        value that still looks plausible escapes into the client: that is a
        propagated fault (unrecoverable, Table II "propagated").  A tainted
        value that fails the predicate is caught by the interface's error
        checking: it fail-stops here (recoverable) instead of escaping.
        """
        if result.tainted:
            if plausible(result.value):
                raise PropagatedFault(
                    f"corrupted value {result.value:#x} escaped {self.name}",
                    component=self.name,
                )
            raise AssertionFault(
                f"implausible return value {result.value:#x} caught at "
                f"{self.name}'s interface",
                component=self.name,
            )
        return result.value

    # -- convenience -----------------------------------------------------------
    def call(self, thread, server: str, fn: str, *args):
        """Invoke another component's interface on behalf of ``thread``.

        Services use this for their own server dependencies (e.g. RamFS
        calling the storage component).  The call goes through the kernel's
        normal invocation path, so capabilities and stubs apply.
        """
        from repro.composite.thread import Invoke

        return self.kernel.invoke(thread, Invoke(server, fn, *args))

    def require_image(self) -> MemoryImage:
        if self.image is None:
            raise ReproError(f"component {self.name} not attached")
        return self.image

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r} epoch={self.reboot_epoch}>"
