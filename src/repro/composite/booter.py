"""The booter component: micro-reboot of failed components.

On a detected fault the hardware exception handler vectors here
(Section III-D steps 2-4): the booter memcpys a known-good image over the
faulty component, re-initialises it, and hands off to the recovery manager
for eager wakeup (T0) of threads the faulty component had blocked.

The booter itself (like the kernel and the storage component) is assumed
protected (Section II-E); faults are never injected into it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SimulatedFault


class Booter:
    """Micro-reboots faulty components and triggers recovery."""

    def __init__(self, kernel):
        self.kernel = kernel
        kernel.booter = self
        #: (clock cycles, component name, fault kind) log of every reboot.
        self.reboot_log: List[Tuple[int, str, str]] = []

    def pool_restore(self) -> None:
        self.reboot_log = []

    def handle_fault(self, component, fault: SimulatedFault) -> None:
        """Micro-reboot ``component`` after a detected fail-stop fault."""
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "micro_reboot_begin", component=component.name, kind=fault.kind
            )
        cost = component.micro_reboot()
        self.kernel.charge(None, cost)
        self.kernel.stats["micro_reboots"] += 1
        self.reboot_log.append((self.kernel.clock.now, component.name, fault.kind))
        # Re-initialisation upcall into the rebooted component (step 4).
        if hasattr(component, "post_reboot_init"):
            component.post_reboot_init()
        # Hand off to the recovery manager for eager wakeup (T0, step 5)
        # and any server-side bookkeeping.
        if self.kernel.recovery_manager is not None:
            self.kernel.recovery_manager.on_micro_reboot(component, fault)
        if recorder.enabled:
            recorder.emit(
                "micro_reboot_end",
                component=component.name,
                epoch=component.reboot_epoch,
                cost_cycles=cost,
            )
            recorder.metrics.counter("micro_reboots").inc()

    @property
    def reboots(self) -> int:
        return len(self.reboot_log)
