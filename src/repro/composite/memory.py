"""Per-component simulated memory images.

Hardware page-table isolation in COMPOSITE gives each component a private
address space; a component can only corrupt *its own* memory, which is what
bounds fault propagation (Section II-B).  We model that with one
:class:`MemoryImage` per component: a flat array of 32-bit words at a unique
base address.  Any access outside the image is a simulated segmentation
fault (raised by the trace interpreter, which bounds-checks through
:meth:`MemoryImage.contains`).

The image supports the booter's micro-reboot: after a component initialises,
:meth:`MemoryImage.freeze_good_image` snapshots the words ("a good image");
:meth:`MemoryImage.micro_reboot` memcpys it back (Section II-C step 3).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.composite.machine import WORD_MASK

#: Default image size in words.  Kept deliberately small so that a bit flip
#: in an address register usually lands outside the image (segfault), while
#: low-bit flips stay inside (silent corruption) — mirroring real address
#: fault behaviour.
DEFAULT_IMAGE_WORDS = 1 << 14

#: Words reserved at the top of each image for the execution stack.
STACK_WORDS = 1 << 10

#: Dirty-tracking page size: 2**PAGE_SHIFT words per page.  Coarse on
#: purpose — the tracking cost is one bytearray store per write (cheap
#: enough for the compiled fast path), and a SWIFI run touches a handful
#: of record pages plus the stack page, so restores copy a few pages
#: instead of the whole image.
PAGE_SHIFT = 8
PAGE_WORDS = 1 << PAGE_SHIFT

#: First heap word: the low words are reserved as a component header.
INITIAL_ALLOC_PTR = 16


class MemoryImage:
    """A component's private, bounds-checked flat memory.

    Attributes:
        base: lowest valid address.
        size: number of words.
        words: backing store — a compact ``array('I')`` so the fast-path
            interpreter indexes raw 32-bit words instead of boxed list
            entries.
    """

    def __init__(self, base: int, size: int = DEFAULT_IMAGE_WORDS):
        if base & 0xFFF:
            raise ReproError("image base must be page aligned")
        self.base = base & WORD_MASK
        self.size = size
        self.words: array = array("I", bytes(4 * size))
        # Per-word taint bits plus an O(1) census: the fast-path
        # interpreter is only eligible while the image is taint-free.
        self._taint: bytearray = bytearray(size)
        self._taint_count = 0
        #: Coarse dirty-page bitmap: one byte per PAGE_WORDS-word page,
        #: set by every write.  Taint is only ever introduced through a
        #: write, so tainted words always lie on dirty pages — restoring
        #: the dirty pages provably clears all taint.
        self._dirty: bytearray = bytearray((size + PAGE_WORDS - 1) >> PAGE_SHIFT)
        self._alloc_ptr = INITIAL_ALLOC_PTR  # low words reserved (header)
        self._good_words: Optional[array] = None
        self._good_alloc_ptr: Optional[int] = None
        self._free_lists: Dict[int, List[int]] = {}

    # -- address arithmetic -------------------------------------------------
    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def _index(self, addr: int) -> int:
        if not self.contains(addr):
            raise ReproError(f"address {addr:#x} outside image")
        return addr - self.base

    @property
    def stack_top(self) -> int:
        """Initial ESP for a thread entering this component."""
        return self.base + self.size  # pre-decrement push: first store is top-1

    @property
    def stack_base(self) -> int:
        return self.base + self.size - STACK_WORDS

    # -- raw access (used by the trace interpreter) -------------------------
    def read_word(self, addr: int) -> int:
        return self.words[addr - self.base]

    def write_word(self, addr: int, value: int, tainted: bool = False) -> None:
        index = addr - self.base
        self.words[index] = value & WORD_MASK
        self._dirty[index >> PAGE_SHIFT] = 1
        taint = self._taint
        if tainted:
            if not taint[index]:
                taint[index] = 1
                self._taint_count += 1
        elif taint[index]:
            taint[index] = 0
            self._taint_count -= 1

    def is_tainted(self, addr: int) -> bool:
        index = addr - self.base
        return 0 <= index < self.size and self._taint[index] != 0

    @property
    def taint_count(self) -> int:
        """Number of tainted words (0 means the fast path is eligible)."""
        return self._taint_count

    # -- allocation ----------------------------------------------------------
    def alloc(self, nwords: int) -> int:
        """Bump/free-list allocate ``nwords`` words; returns the address."""
        free = self._free_lists.get(nwords)
        if free:
            return free.pop()
        if self._alloc_ptr + nwords > self.size - STACK_WORDS:
            raise ReproError("component heap exhausted")
        addr = self.base + self._alloc_ptr
        self._alloc_ptr += nwords
        return addr

    def free(self, addr: int, nwords: int) -> None:
        """Zero a freed block and recycle it onto the size's free list.

        Zeroing goes through slice assignment (not a per-word
        ``write_word`` loop): one memset-style store for the words, one
        for the taint bits, keeping the taint census exact.
        """
        start = addr - self.base
        end = start + nwords
        self.words[start:end] = array("I", bytes(4 * nwords))
        tainted = self._taint.count(1, start, end)
        if tainted:
            self._taint[start:end] = bytes(nwords)
            self._taint_count -= tainted
        for page in range(start >> PAGE_SHIFT, ((end - 1) >> PAGE_SHIFT) + 1):
            self._dirty[page] = 1
        self._free_lists.setdefault(nwords, []).append(addr)

    def alloc_record(self, magic: int, nfields: int) -> int:
        """Allocate a record: one magic word followed by ``nfields`` fields."""
        addr = self.alloc(1 + nfields)
        self.write_word(addr, magic)
        return addr

    # -- dirty tracking --------------------------------------------------------
    @property
    def dirty_page_count(self) -> int:
        """Number of pages written since the last freeze/restore."""
        return self._dirty.count(1)

    def is_page_dirty(self, index: int) -> bool:
        """Has the page holding word ``index`` been written?"""
        return self._dirty[index >> PAGE_SHIFT] != 0

    def is_pristine(self) -> bool:
        """True when no word was written (or tainted) since the last
        freeze/restore — i.e. a restore would be a no-op memcpy."""
        return self._taint_count == 0 and 1 not in self._dirty

    def dirty_page_indices(self) -> List[int]:
        """Page numbers written since the last freeze/restore, ascending.

        These are the *hot* pages — the fault injector's memory class
        draws its flip targets from them, and a pooled restore copies
        exactly this set back from the good image.
        """
        dirty = self._dirty
        return [page for page in range(len(dirty)) if dirty[page]]

    def modified_word_offsets(self, page: int) -> List[int]:
        """Word offsets in ``page`` whose value differs from the good image.

        These are the *live* words — records and stack slots the workload
        actually changed.  Empty when no good image is frozen yet, or
        when every write to the page restored the boot-time value.
        """
        if self._good_words is None:
            return []
        lo = page << PAGE_SHIFT
        hi = min(lo + PAGE_WORDS, self.size)
        words = self.words
        good = self._good_words
        return [i for i in range(lo, hi) if words[i] != good[i]]

    def _copy_back_dirty_pages(self) -> int:
        """Copy dirty pages back from the good image; returns the count.

        Taint is cleared alongside: tainted words can only exist on dirty
        pages (taint is introduced exclusively through writes), so
        zeroing the taint slice of each restored page clears all of it.
        """
        if self._good_words is None:
            raise ReproError("no good image frozen; cannot restore")
        dirty = self._dirty
        words = self.words
        good = self._good_words
        taint = self._taint
        size = self.size
        restored = 0
        for page in range(len(dirty)):
            if dirty[page]:
                lo = page << PAGE_SHIFT
                hi = min(lo + PAGE_WORDS, size)
                words[lo:hi] = good[lo:hi]
                taint[lo:hi] = bytes(hi - lo)
                dirty[page] = 0
                restored += 1
        self._taint_count = 0
        return restored

    # -- micro-reboot support -------------------------------------------------
    def freeze_good_image(self) -> None:
        """Snapshot the post-initialisation state as the reboot image."""
        self._good_words = self.words[:]
        self._good_alloc_ptr = self._alloc_ptr
        # The image now *is* the good image: every page is clean, so the
        # next restore copies only what gets written from here on.
        self._dirty[:] = bytes(len(self._dirty))

    def restore(self) -> int:
        """Reset to the good image in O(dirty pages); returns pages copied.

        Wall-clock cost is proportional to what was written since the
        last freeze/restore, not to image size.  The *virtual* cost of a
        micro-reboot (:attr:`reboot_cost_cycles`) is unchanged: the
        modelled hardware still memcpys the whole image.
        """
        restored = self._copy_back_dirty_pages()
        self._alloc_ptr = self._good_alloc_ptr
        self._free_lists.clear()
        return restored

    def restore_initial(self) -> int:
        """Pool reset: like :meth:`restore`, but rewind the allocator to
        its pre-initialisation position so a replayed ``reinit()``
        allocates at exactly the addresses a fresh build would.
        """
        restored = self._copy_back_dirty_pages()
        self._alloc_ptr = INITIAL_ALLOC_PTR
        self._free_lists.clear()
        return restored

    def micro_reboot(self) -> None:
        """Restore the good image over this component's memory."""
        self.restore()

    @property
    def reboot_cost_cycles(self) -> int:
        """Virtual cost of the reboot memcpy (one cycle per 4 words)."""
        return max(self.size // 4, 1)

    # -- debugging -------------------------------------------------------------
    def corrupt_word(self, addr: int, value: int) -> None:
        """Deliberately corrupt a word (used by tests and fault injection)."""
        self.write_word(addr, value, tainted=True)

    def __repr__(self):
        return (
            f"MemoryImage(base={self.base:#x}, size={self.size}, "
            f"alloc_ptr={self._alloc_ptr})"
        )
