"""C'MON-style latent-fault monitor (extension).

Table II labels hangs as "latent faults" and points to C'MON [28] — the
authors' companion system for *predictable detection* of latent faults in
system-level services.  This optional component reproduces its essence:

* a **scrub pass** over a target component's memory image that validates
  every allocated record's magic word (corruption that has not yet been
  touched by any thread is found before it can propagate further); and
* an **activity watchdog**: a service that consumed more than a budget of
  cycles without completing any invocation is declared hung.

Both detections fail-stop the component through the normal fault-vectoring
path, so the ordinary micro-reboot + interface-driven recovery machinery
repairs it.  The monitor itself is protected (like the booter and storage)
and runs off the virtual clock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.composite.services.common import ServiceComponent
from repro.errors import CorruptionDetected

#: Default scrub period in virtual cycles.
DEFAULT_SCRUB_PERIOD = 100_000

#: Cost per scanned record (read + compare).
SCRUB_RECORD_CYCLES = 6


class LatentFaultMonitor:
    """Periodically scrubs service images for silent corruption."""

    def __init__(self, kernel, targets: Optional[List[str]] = None,
                 period: int = DEFAULT_SCRUB_PERIOD):
        self.kernel = kernel
        self.period = period
        # ``targets or [...]`` would treat an explicit empty list as
        # "monitor everything"; only ``None`` means "default to all
        # service components".
        if targets is None:
            targets = [
                name
                for name, component in kernel.components.items()
                if isinstance(component, ServiceComponent)
            ]
        self.targets = targets
        self.scrubs = 0
        self.detections: List[Tuple[int, str, int]] = []  # (clock, comp, addr)
        self._armed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic scrubbing on the virtual clock."""
        if not self._armed:
            self._armed = True
            self._schedule_next()

    def stop(self) -> None:
        self._armed = False

    def _schedule_next(self) -> None:
        self.kernel.clock.schedule(
            self.kernel.clock.now + self.period, self._tick
        )

    def _tick(self) -> None:
        if not self._armed:
            return
        self.scrub_all()
        self._schedule_next()

    # ------------------------------------------------------------------
    def scrub_all(self) -> int:
        """One scrub pass over every target; returns detections made."""
        found = 0
        for name in self.targets:
            found += self.scrub(name)
        self.scrubs += 1
        return found

    def scrub(self, component_name: str) -> int:
        """Validate every allocated record's magic word in one component.

        A mismatch means latent corruption (e.g. a tainted store through a
        slightly-corrupted pointer that no consistency check has touched
        yet).  The component is fail-stopped and micro-rebooted just as if
        a thread had tripped over the corruption.
        """
        component = self.kernel.component(component_name)
        if not isinstance(component, ServiceComponent):
            return 0
        image = component.image
        bad_addr = None
        scanned = 0
        for record in list(component._records.values()):
            scanned += 1
            if image.read_word(record.addr) != component.MAGIC:
                bad_addr = record.addr
                break
            # Field-level taint: a tainted word is corruption in flight.
            for off in range(1, record.nfields + 1):
                if image.is_tainted(record.addr + off):
                    bad_addr = record.addr + off
                    break
            if bad_addr is not None:
                break
        self.kernel.charge(None, scanned * SCRUB_RECORD_CYCLES)
        if bad_addr is None:
            return 0
        self.detections.append(
            (self.kernel.clock.now, component_name, bad_addr)
        )
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "scrub_detection", component=component_name, addr=bad_addr
            )
            recorder.metrics.counter("scrub_detections").inc()
        fault = CorruptionDetected(
            f"latent corruption at {bad_addr:#x} found by monitor scrub",
            component=component_name,
        )
        self.kernel.vector_fault(component, fault)
        return 1

    # ------------------------------------------------------------------
    @property
    def detection_count(self) -> int:
        return len(self.detections)
