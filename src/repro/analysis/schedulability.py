"""Worst-case recovery interference bounds (the predictability claim).

C^3's headline property — carried over by SuperGlue — is that recovery is
*predictable*: Song et al. [7] give a schedulability analysis where the
worst-case interference a task suffers from one fault is bounded.  With
on-demand (T1) recovery, a task's post-fault interference is:

    WCRI(task) = C_reboot + C_T0 + sum over descriptors the task touches
                 of C_walk(descriptor state)

(the micro-reboot memcpy, the eager wakeup of blocked threads, and the
replay walks of only *its own* descriptors; other tasks' descriptors are
recovered at those tasks' priorities and do not interfere).

This module computes the static bound from the compiled interface (walk
lengths × per-invocation cost) and lets tests verify that *measured*
recovery costs never exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.composite.kernel import INVOCATION_CYCLES
from repro.composite.memory import DEFAULT_IMAGE_WORDS
from repro.core.compiler.ir import InterfaceIR
from repro.errors import RecoveryError

#: Conservative per-replayed-invocation cost: kernel path + server work +
#: client-side bookkeeping (cycles).
REPLAY_CYCLES_BOUND = INVOCATION_CYCLES + 1200

#: Conservative per-restore-step cost (restore replays plus storage reads).
RESTORE_CYCLES_BOUND = REPLAY_CYCLES_BOUND + 800

#: Micro-reboot cost bound: image memcpy plus re-initialisation.
REBOOT_CYCLES_BOUND = DEFAULT_IMAGE_WORDS // 4 + 2000


@dataclass
class RecoveryBound:
    """Static worst-case recovery cost for one descriptor state."""

    service: str
    state: str
    walk: List[str]
    cycles: int

    @property
    def us(self) -> float:
        return self.cycles / 2400


@dataclass
class TaskRecoveryBound:
    """Worst-case recovery interference for one task after one fault."""

    service: str
    reboot_cycles: int
    descriptor_bounds: List[RecoveryBound] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.reboot_cycles + sum(
            b.cycles for b in self.descriptor_bounds
        )


def descriptor_walk_bound(ir: InterfaceIR, state: str) -> RecoveryBound:
    """Static bound on recovering one descriptor in ``state``.

    The walk length is known at compile time (the paper precomputes the
    shortest path through the state machine); each step costs at most one
    bounded invocation, plus the interface's restore steps.
    """
    walk = ir.sm.recovery_walk(state)
    cycles = len(walk) * REPLAY_CYCLES_BOUND
    cycles += len(ir.sm.restores) * RESTORE_CYCLES_BOUND
    if ir.model.desc_global:
        # Alias recording in the storage component after re-creation.
        cycles += INVOCATION_CYCLES + 400
    if ir.model.needs_parent_ordering:
        # One level of parent recovery (recursive chains multiply this;
        # callers supply per-descriptor depth if they nest deeper).
        cycles += len(ir.sm.recovery_walk(_init_state())) * REPLAY_CYCLES_BOUND
    return RecoveryBound(
        service=ir.name, state=state, walk=walk, cycles=cycles
    )


def _init_state() -> str:
    from repro.core.state_machine import INIT_STATE

    return INIT_STATE


def worst_case_state(ir: InterfaceIR) -> str:
    """The descriptor state with the longest recovery walk."""
    worst = _init_state()
    worst_len = len(ir.sm.recovery_walk(worst))
    for fn in ir.functions.values():
        if not ir.sm.changes_state(fn.name):
            continue
        if fn.is_terminal or fn.is_creation:
            continue
        try:
            length = len(ir.sm.recovery_walk(fn.name))
        except RecoveryError:
            # No path from the initial state reaches this state (e.g. a
            # modeled-but-unreachable transition): it cannot be a
            # descriptor's recovery target, so it cannot be the worst
            # case.  Anything else (a harness bug) must propagate.
            continue
        if length > worst_len:
            worst, worst_len = fn.name, length
    return worst


def task_recovery_bound(
    ir: InterfaceIR,
    n_descriptors: int,
    states: Optional[List[str]] = None,
) -> TaskRecoveryBound:
    """Bound the post-fault interference for a task touching
    ``n_descriptors`` descriptors of this interface."""
    if states is None:
        states = [worst_case_state(ir)] * n_descriptors
    bounds = [descriptor_walk_bound(ir, state) for state in states]
    return TaskRecoveryBound(
        service=ir.name,
        reboot_cycles=REBOOT_CYCLES_BOUND,
        descriptor_bounds=bounds,
    )


def all_service_bounds() -> Dict[str, RecoveryBound]:
    """Worst-case per-descriptor bound for each of the six services."""
    from repro.system import compile_all_interfaces

    out = {}
    for name, compiled in compile_all_interfaces().items():
        out[name] = descriptor_walk_bound(
            compiled.ir, worst_case_state(compiled.ir)
        )
    return out
