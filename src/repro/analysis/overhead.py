"""Overhead measurements behind Fig. 6(a) and Fig. 6(b).

* **Tracking (infrastructure) overhead** — run each service's workload
  with no stubs ("none") and with C^3 or SuperGlue stubs, and report the
  added virtual time per tracked operation, in microseconds.
* **Per-descriptor recovery overhead** — force micro-reboots and report
  the mean/stdev cost of bringing one descriptor back to its expected
  state (the R0 walk plus any dependency/storage/upcall work), also in
  microseconds.  The paper notes this correlates with how many recovery
  mechanisms a service engages (Event > Lock, for example).
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.composite.scheduler import cycles_to_us
from repro.errors import ReproError, SimulatedFault
from repro.swifi.injector import SwifiController
from repro.system import build_system
from repro.workloads import workload_for


def _run_workload(ft_mode: str, service: str, iterations: int):
    system = build_system(ft_mode=ft_mode)
    workload = workload_for(service)
    handle = workload.install(system, iterations=iterations)
    system.run(max_steps=200_000)
    if handle.budget_exhausted:
        raise RuntimeError(
            f"{service} workload under {ft_mode} exhausted its step budget "
            f"(livelock?): {handle.results}"
        )
    if not handle.check():
        raise RuntimeError(
            f"{service} workload failed under {ft_mode}: {handle.results}"
        )
    return system


def measure_tracking_overhead(
    service: str, ft_mode: str = "superglue", iterations: int = 6
) -> Dict[str, float]:
    """Fig. 6(a): per-operation descriptor-tracking cost in microseconds."""
    base = _run_workload("none", service, iterations)
    tracked = _run_workload(ft_mode, service, iterations)
    tracked_ops = sum(
        stub.stats["tracked_ops"]
        for (client, server), stub in tracked.client_stubs.items()
        if server == service
    )
    base_cycles = base.kernel.clock.now
    tracked_cycles = tracked.kernel.clock.now
    added = max(tracked_cycles - base_cycles, 0)
    per_op = added / tracked_ops if tracked_ops else 0.0
    return {
        "service": service,
        "ft_mode": ft_mode,
        "base_us": cycles_to_us(base_cycles),
        "tracked_us": cycles_to_us(tracked_cycles),
        "added_us": cycles_to_us(added),
        "tracked_ops": tracked_ops,
        "per_op_us": cycles_to_us(per_op),
    }


def measure_recovery_overhead(
    service: str,
    ft_mode: str = "superglue",
    runs: int = 30,
    iterations: int = 4,
    seed: int = 7,
) -> Dict[str, object]:
    """Fig. 6(b): per-descriptor recovery cost in microseconds.

    Injects one fault per run (like a mini campaign) and aggregates the
    recovery-cost samples the stubs report to the recovery manager.
    """
    samples: List[float] = []
    runs_dropped = 0
    workload = workload_for(service)
    for index in range(runs):
        system = build_system(ft_mode=ft_mode)
        swifi = SwifiController(system.kernel, seed=seed * 1000 + index)
        handle = workload.install(system, iterations=iterations)
        swifi.arm(service, after_executions=index % 8)
        try:
            system.run(max_steps=200_000)
        except (SimulatedFault, ReproError):
            # The injected fault escaped recovery (crash, propagation,
            # hang, ...): that run yields no recovery samples.  Count it
            # instead of silently deflating the sample set — anything
            # *else* (a TypeError, say) is a harness bug and propagates.
            runs_dropped += 1
            continue
        manager = system.recovery_manager
        if manager is None:
            runs_dropped += 1
            continue
        for cycles in manager.recovery_samples.get(service, []):
            samples.append(cycles_to_us(cycles))
    if not samples:
        return {
            "service": service,
            "ft_mode": ft_mode,
            "samples": 0,
            "runs_dropped": runs_dropped,
            "mean_us": 0.0,
            "stdev_us": 0.0,
        }
    return {
        "service": service,
        "ft_mode": ft_mode,
        "samples": len(samples),
        "runs_dropped": runs_dropped,
        "mean_us": statistics.fmean(samples),
        "stdev_us": statistics.pstdev(samples),
    }
