"""Lines-of-code accounting for Fig. 6(c).

Compares, per service:

* the SuperGlue IDL specification the developer writes;
* the recovery stub code the compiler generates from it; and
* the hand-written C^3 stub module the IDL replaces.

Counting convention (applied uniformly): non-blank lines that are not
pure comments.  Docstrings in the hand-written stubs are counted as code
the developer wrote and maintains, mirroring how the paper counts the
hand-written C stubs' boilerplate.
"""

from __future__ import annotations

import os
from typing import Dict

import repro.c3.stubs as c3_stubs_pkg
from repro.idl_specs import SERVICES

_C3_STUB_FILES = {
    "sched": "sched_stub.py",
    "mm": "mm_stub.py",
    "ramfs": "ramfs_stub.py",
    "lock": "lock_stub.py",
    "event": "event_stub.py",
    "timer": "timer_stub.py",
}


def loc_of_source(source: str, comment_prefixes=("#", "//")) -> int:
    """Count non-blank, non-comment lines."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if any(stripped.startswith(prefix) for prefix in comment_prefixes):
            continue
        count += 1
    return count


def c3_stub_loc(service: str) -> int:
    """LOC of the hand-written C^3 stub module for ``service``."""
    directory = os.path.dirname(os.path.abspath(c3_stubs_pkg.__file__))
    path = os.path.join(directory, _C3_STUB_FILES[service])
    with open(path, "r", encoding="utf-8") as handle:
        return loc_of_source(handle.read())


def loc_table() -> Dict[str, Dict[str, int]]:
    """The Fig. 6(c) table: per service, IDL vs generated vs C^3 LOC."""
    from repro.system import compile_all_interfaces

    compiled = compile_all_interfaces()
    table: Dict[str, Dict[str, int]] = {}
    for service in SERVICES:
        interface = compiled[service]
        table[service] = {
            "idl_loc": interface.idl_loc,
            "generated_loc": interface.generated_loc,
            "c3_loc": c3_stub_loc(service),
        }
    return table


def format_loc_table(table: Dict[str, Dict[str, int]]) -> str:
    header = f"{'Service':<10}{'IDL LOC':>10}{'Generated':>12}{'C^3 manual':>12}"
    lines = [header, "-" * len(header)]
    for service, row in table.items():
        lines.append(
            f"{service:<10}{row['idl_loc']:>10}{row['generated_loc']:>12}"
            f"{row['c3_loc']:>12}"
        )
    idl_avg = sum(r["idl_loc"] for r in table.values()) / len(table)
    c3_avg = sum(r["c3_loc"] for r in table.values()) / len(table)
    lines.append("-" * len(header))
    lines.append(
        f"{'average':<10}{idl_avg:>10.1f}{'':>12}{c3_avg:>12.1f}"
        f"   (paper: avg IDL 37 LOC, C^3 stubs up to 398+ LOC)"
    )
    return "\n".join(lines)
