"""Measurement helpers behind the Fig. 6 micro-benchmarks."""

from repro.analysis.loc import c3_stub_loc, loc_of_source, loc_table
from repro.analysis.overhead import (
    measure_recovery_overhead,
    measure_tracking_overhead,
)

__all__ = [
    "c3_stub_loc",
    "loc_of_source",
    "loc_table",
    "measure_recovery_overhead",
    "measure_tracking_overhead",
]
