"""Cluster campaigns: correlated node failures as a campaign axis.

``python -m repro cluster --nodes N --faults K --fault-class C
--workers W`` runs many seeded *scenarios*.  Each scenario drives a
cell of N simulated nodes through a schedule of SWIFI-injected
workload units while killing K correlated nodes at a seed-drawn
instant; the supervisor/scheduler layer fails units over, evicts the
dead nodes, whole-node-reboots them, and re-admits them after a
cooldown (see :mod:`repro.cluster.cell`).

Scenarios follow the repository's campaign discipline exactly:

* a scenario's row is a pure function of ``(ClusterSpec,
  scenario_seed)`` — rows derive only from virtual-time outcomes,
  never from engine counters that warm caches shift;
* scenario seeds fan out over
  :func:`repro.swifi.parallel.fan_out_chunks`'s process pool and rows
  merge in seed order, so the JSON artifact is byte-identical serial
  vs parallel, pooled vs fresh; and
* ``--trace`` records node-level events (kills, failovers, evictions,
  whole-node reboots, rejoins) on a per-cell flight recorder stamped
  with the cell's virtual clock, exported parent-side in seed order.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cell import Cell
from repro.cluster.node import node_pool_instance
from repro.observe import export as trace_export
from repro.observe.metrics import canonical_metrics, merge_metrics
from repro.swifi.campaign import (
    COVERAGE_KEYS,
    CampaignRunner,
    RunSpec,
    _campaign_recording,
    coverage_ratio,
)
from repro.swifi.injector import FAULT_CLASSES
from repro.swifi.parallel import default_workers, fan_out_chunks
from repro.system import GLOBAL_POOL, compile_all_interfaces, pooling_enabled


@dataclass(frozen=True)
class ClusterSpec:
    """Everything one cluster scenario depends on besides its seed."""

    service: str = "lock"
    ft_mode: str = "superglue"
    n_nodes: int = 4
    n_kill: int = 1
    units: int = 12
    iterations: int = 4
    horizon: int = 1
    recovery_mode: str = "ondemand"
    fault_class: str = "reg"
    evict_threshold: int = 2
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("ClusterSpec needs n_nodes >= 2")
        if not 0 <= self.n_kill < self.n_nodes:
            raise ValueError(
                f"ClusterSpec needs 0 <= n_kill < n_nodes "
                f"(got n_kill={self.n_kill}, n_nodes={self.n_nodes})"
            )
        if self.units < 1:
            raise ValueError("ClusterSpec needs units >= 1")
        if self.evict_threshold < 1:
            raise ValueError("ClusterSpec needs evict_threshold >= 1")
        if self.cooldown < 0:
            raise ValueError("ClusterSpec needs cooldown >= 0")
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {self.fault_class!r} "
                f"(expected one of {FAULT_CLASSES})"
            )

    def run_spec(self) -> RunSpec:
        """The per-unit SWIFI run spec (units are injection runs)."""
        return RunSpec(
            service=self.service,
            ft_mode=self.ft_mode,
            iterations=self.iterations,
            horizon=self.horizon,
            recovery_mode=self.recovery_mode,
            fault_class=self.fault_class,
        )

    def fingerprint(self) -> str:
        """Stable identity string (journals/trace artifacts key on it)."""
        return (
            f"cluster/{self.service}/{self.ft_mode}/n{self.n_nodes}"
            f"/k{self.n_kill}/u{self.units}/it{self.iterations}"
            f"/h{self.horizon}/{self.recovery_mode}/{self.fault_class}"
            f"/e{self.evict_threshold}/c{self.cooldown}"
        )


def cluster_run_seeds(seed: int, n_scenarios: int) -> List[int]:
    """The deterministic scenario-seed schedule (campaign stride)."""
    return [seed * 1_000_003 + i for i in range(n_scenarios)]


def calibrate_cluster_spec(
    service: str = "lock",
    ft_mode: str = "superglue",
    n_nodes: int = 4,
    n_kill: int = 1,
    units: int = 12,
    iterations: int = 4,
    recovery_mode: str = "ondemand",
    fault_class: str = "reg",
    evict_threshold: int = 2,
    cooldown: int = 2,
) -> ClusterSpec:
    """Build a ClusterSpec with a measured injection horizon.

    Runs the flat campaign's calibration pass once (in the parent) so
    workers receive the horizon through the spec, exactly like
    :class:`~repro.swifi.campaign.CampaignRunner` does.
    """
    runner = CampaignRunner(
        service,
        ft_mode=ft_mode,
        iterations=iterations,
        recovery_mode=recovery_mode,
        fault_class=fault_class,
    )
    horizon = runner.calibrate()
    return ClusterSpec(
        service=service,
        ft_mode=ft_mode,
        n_nodes=n_nodes,
        n_kill=n_kill,
        units=units,
        iterations=iterations,
        horizon=horizon,
        recovery_mode=recovery_mode,
        fault_class=fault_class,
        evict_threshold=evict_threshold,
        cooldown=cooldown,
    )


# ---------------------------------------------------------------------------
# Scenario execution (worker side)
# ---------------------------------------------------------------------------

def execute_scenario(
    spec: ClusterSpec, scenario_seed: int, cell: Optional[Cell] = None
) -> Dict[str, object]:
    """One scenario's campaign row — pure given ``(spec, seed)``.

    ``cell`` reuses an existing (reset) cell; omitted, a private one is
    built, which is the path unit tests and one-off calls take.
    """
    if cell is None:
        cell = Cell(spec)
    return cell.run_scenario(scenario_seed)


def execute_scenario_traced(
    spec: ClusterSpec, scenario_seed: int, cell: Optional[Cell] = None
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """One scenario with node-level tracing; returns ``(row, record)``.

    The cell's flight recorder (stamped with the cell's virtual clock)
    captures the kill/failover/evict/reboot/rejoin arc; the row is
    computed exactly as in the untraced path, so requesting a trace
    never changes campaign artifacts.
    """
    if cell is None or not cell.recorder.enabled:
        cell = Cell(spec, trace=True)
    row = cell.run_scenario(scenario_seed)
    record = {
        "fingerprint": spec.fingerprint(),
        "run_seed": scenario_seed,
        "service": spec.service,
        "ft_mode": spec.ft_mode,
        "fault_class": spec.fault_class,
        # The cluster's "injection" is the correlated kill round.
        "injection_point": row["kill_at"] if row["kill_at"] is not None else 0,
        "horizon": spec.units,
        "outcome": row["outcome"],
        "steps": row["steps"],
        "events": cell.recorder.events(),
        "dropped_events": cell.recorder.dropped,
        "metrics": row["metrics"],
    }
    return row, record


#: Worker-side campaign state (see ``repro.swifi.parallel``): set once
#: per process by the initializer so chunks carry only seed lists.
_CLUSTER_SPEC: Optional[ClusterSpec] = None
_CLUSTER_TRACE: bool = False
_CLUSTER_CELL: Optional[Cell] = None


def _init_cluster_worker(spec: ClusterSpec, trace: bool = False) -> None:
    """Campaign initializer: compile, build the cell, warm node pools.

    Under the fork start method this runs in the parent: workers
    inherit the compiled interfaces and every node's sealed pooled
    system copy-on-write.  Node systems are *per-process* pool entries
    (instance-keyed), so worker cells never share mutable state.
    """
    global _CLUSTER_SPEC, _CLUSTER_TRACE, _CLUSTER_CELL
    _CLUSTER_SPEC = spec
    _CLUSTER_TRACE = trace
    if spec.ft_mode == "superglue":
        compile_all_interfaces()
    _CLUSTER_CELL = Cell(spec, trace=trace)
    if pooling_enabled():
        run_spec = spec.run_spec()
        for node in _CLUSTER_CELL.nodes:
            node.acquire_system()
            # Pre-build this node's instance-keyed super-trace recording
            # (a no-op when the engine is off), so forked workers
            # inherit every node's recording copy-on-write and the
            # first scenario doesn't pay the warm-up passes.
            _campaign_recording(
                run_spec, instance=node_pool_instance(node.node_id)
            )


def _execute_cluster_chunk(seeds: List[int]):
    """Worker entry point: one chunk of scenarios.

    Returns ``(triples, coverage)``: ``(seed, row, record_or_None)``
    per scenario, plus the chunk's summed per-node supertrace coverage
    (sidecar-only — rows stay engine-invariant).
    """
    spec, trace, cell = _CLUSTER_SPEC, _CLUSTER_TRACE, _CLUSTER_CELL
    results: List[Tuple[int, Dict[str, object], Optional[dict]]] = []
    coverage = dict.fromkeys(COVERAGE_KEYS, 0)
    for seed in seeds:
        if trace:
            row, record = execute_scenario_traced(spec, seed, cell=cell)
        else:
            row, record = execute_scenario(spec, seed, cell=cell), None
        if cell is not None:
            for key, value in cell.coverage().items():
                coverage[key] += value
        results.append((seed, row, record))
    return results, coverage


# ---------------------------------------------------------------------------
# Campaign aggregation (parent side)
# ---------------------------------------------------------------------------

@dataclass
class ClusterCampaignResult:
    """A finished cluster campaign: per-scenario rows plus the aggregate."""

    spec: ClusterSpec
    seeds: List[int]
    rows: List[Dict[str, object]]
    aggregate: Dict[str, object]
    #: Wall-clock split (sidecar-only: the artifact stays deterministic).
    setup_wall: float = 0.0
    exec_wall: float = 0.0
    #: Summed per-node supertrace coverage (also sidecar-only: engine
    #: counters depend on the pooling/supertrace/tail knobs).
    coverage: Optional[Dict[str, int]] = None

    def to_json_dict(self) -> Dict[str, object]:
        """The deterministic campaign artifact (no wall-clock anywhere)."""
        return {
            "fingerprint": self.spec.fingerprint(),
            "spec": {
                "service": self.spec.service,
                "ft_mode": self.spec.ft_mode,
                "n_nodes": self.spec.n_nodes,
                "n_kill": self.spec.n_kill,
                "units": self.spec.units,
                "iterations": self.spec.iterations,
                "horizon": self.spec.horizon,
                "recovery_mode": self.spec.recovery_mode,
                "fault_class": self.spec.fault_class,
                "evict_threshold": self.spec.evict_threshold,
                "cooldown": self.spec.cooldown,
            },
            "seeds": list(self.seeds),
            "rows": self.rows,
            "aggregate": self.aggregate,
        }

    def write_json(self, path: str) -> None:
        """Write the artifact plus a ``.timing.json`` wall-clock sidecar."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2)
            handle.write("\n")
        timing: Dict[str, object] = {
            "scenarios": len(self.rows),
            "setup_wall": self.setup_wall,
            "exec_wall": self.exec_wall,
        }
        if self.coverage is not None:
            timing["coverage"] = dict(self.coverage)
            timing["replayed_unit_coverage"] = round(
                coverage_ratio(self.coverage), 6
            )
        with open(path + ".timing.json", "w", encoding="utf-8") as handle:
            json.dump(timing, handle, indent=2)
            handle.write("\n")


def aggregate_cluster_rows(
    rows: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Campaign aggregate: integer sums + merged metrics, order-free."""
    merged: Dict[str, object] = {}
    for row in rows:
        merge_metrics(merged, row["metrics"])
    totals = {
        name: sum(row[name] for row in rows)
        for name in (
            "units", "failovers", "evictions", "node_reboots", "rejoins",
            "recovered", "steps", "duration_cycles",
        )
    }
    outcome_tally: Dict[str, int] = {}
    for row in rows:
        for outcome, count in row["outcomes"].items():
            outcome_tally[outcome] = outcome_tally.get(outcome, 0) + count
    units = totals["units"]
    return {
        "scenarios": len(rows),
        **totals,
        "availability": (
            (units - totals["failovers"]) / units if units else 0.0
        ),
        "recovery_ratio": totals["recovered"] / units if units else 0.0,
        "outcomes": dict(sorted(outcome_tally.items())),
        "metrics": canonical_metrics(merged),
    }


def run_cluster_campaign(
    seeds: Sequence[int],
    spec: ClusterSpec,
    workers: Optional[int] = None,
    trace: Optional[str] = None,
    progress=None,
) -> ClusterCampaignResult:
    """Fan cluster scenarios over ``seeds`` and aggregate them.

    ``workers=None`` uses one process per CPU; ``workers=1`` (or a
    single seed) runs in-process.  Rows merge in ``seeds`` order
    whatever the completion order, so for a given schedule the artifact
    is byte-identical across worker counts — and, because rows derive
    from virtual-time outcomes only, across pooling modes.
    """
    if workers is None:
        workers = default_workers()
    seeds = list(seeds)
    tracing = trace is not None
    setup_start = time.perf_counter()
    rows_by_seed: Dict[int, Dict[str, object]] = {}
    records: Dict[int, dict] = {}
    coverage = dict.fromkeys(COVERAGE_KEYS, 0)

    def note(batch) -> None:
        triples, chunk_coverage = batch
        for key, value in chunk_coverage.items():
            coverage[key] += value
        for scenario_seed, row, record in triples:
            rows_by_seed[scenario_seed] = row
            if record is not None:
                records[scenario_seed] = record
            if progress is not None:
                progress(len(rows_by_seed), len(seeds), row)

    exec_start = time.perf_counter()
    fan_out_chunks(
        _execute_cluster_chunk,
        seeds,
        workers,
        initializer=_init_cluster_worker,
        initargs=(spec, tracing),
        on_batch=note,
    )
    exec_end = time.perf_counter()
    rows = [rows_by_seed[seed] for seed in seeds]
    if tracing:
        _export_cluster_trace(trace, spec, seeds, rows, records)
    return ClusterCampaignResult(
        spec=spec,
        seeds=seeds,
        rows=rows,
        aggregate=aggregate_cluster_rows(rows),
        setup_wall=exec_start - setup_start,
        exec_wall=exec_end - exec_start,
        coverage=coverage,
    )


def _export_cluster_trace(
    path: str,
    spec: ClusterSpec,
    seeds: Sequence[int],
    rows: Sequence[Dict[str, object]],
    records: Dict[int, dict],
) -> None:
    """Parent-side trace export in seed order (serial == parallel)."""
    merged_metrics: Dict[str, object] = {}
    with open(path, "a", encoding="utf-8") as handle:
        for seed in seeds:
            record = records.get(seed)
            if record is None:
                continue
            trace_export.write_run(handle, record)
            merge_metrics(merged_metrics, record["metrics"])
        tally: Dict[str, int] = {}
        for row in rows:
            tally[row["outcome"]] = tally.get(row["outcome"], 0) + 1
        trace_export.write_summary(
            handle,
            fingerprint=spec.fingerprint(),
            runs=len(seeds),
            replayed=0,
            outcomes=tally,
            metrics=canonical_metrics(merged_metrics),
        )


def format_cluster_campaign(result: ClusterCampaignResult) -> str:
    """Human summary of a cluster campaign (deterministic: no wall clock)."""
    spec = result.spec
    agg = result.aggregate
    lines = [
        f"Cluster campaign  {spec.fingerprint()}",
        (
            f"  scenarios: {agg['scenarios']}  units: {agg['units']}  "
            f"nodes: {spec.n_nodes}  correlated kills/scenario: "
            f"{spec.n_kill}"
        ),
        (
            f"  failovers: {agg['failovers']}  evictions: "
            f"{agg['evictions']}  whole-node reboots: "
            f"{agg['node_reboots']}  rejoins: {agg['rejoins']}"
        ),
        (
            f"  availability: {agg['availability']:.2%}  "
            f"recovery ratio: {agg['recovery_ratio']:.2%}"
        ),
        "  unit outcomes:",
    ]
    for outcome, count in agg["outcomes"].items():
        lines.append(f"    {outcome:<28} {count}")
    return "\n".join(lines)
