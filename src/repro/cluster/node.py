"""A simulated cluster node: one pooled System plus health accounting.

Each node owns a *private* sealed snapshot in the process-wide
:data:`~repro.system.GLOBAL_POOL`, keyed by the node id through the
pool's ``instance`` parameter — N nodes means N live Systems in one
process, none of them clobbering another's sealed image.  A node runs
workload units through the SWIFI campaign's ``_drive_run`` path, so a
unit's outcome is the same pure function of ``(RunSpec, unit_seed)``
the flat campaigns compute — which is exactly what makes failover
sound: re-executing a killed node's unit on any other node yields the
identical outcome.

Health is tracked in a :class:`~repro.observe.metrics.MetricsRegistry`
— the flight recorder's integer-only registry — folding only
*outcome-invariant* kernel counters (faults vectored, micro-reboots,
budget exhaustion) plus per-outcome tallies and recovery-cycle
samples.  Engine counters that warm caches shift between pooled and
fresh systems (trace-cache hits, fast-path runs) are deliberately
excluded so supervisor decisions stay identical across pooling modes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.observe.metrics import MetricsRegistry
from repro.swifi.campaign import (
    COVERAGE_KEYS,
    RunSpec,
    _drive_run,
    collect_coverage,
)
from repro.swifi.classify import Outcome
from repro.system import GLOBAL_POOL, System, build_system, pooling_enabled

#: Outcomes the supervisor counts as node-degrading crashes.
FATAL_OUTCOMES = frozenset(
    {
        Outcome.NOT_RECOVERED_SEGFAULT,
        Outcome.NOT_RECOVERED_PROPAGATED,
        Outcome.NOT_RECOVERED_OTHER,
    }
)


class Node:
    """One simulated node of a cluster cell."""

    def __init__(self, node_id: int, ft_mode: str, recovery_mode: str):
        self.node_id = node_id
        self.name = f"node{node_id}"
        self.ft_mode = ft_mode
        self.recovery_mode = recovery_mode
        #: Marked by the scenario's correlated-failure round; cleared by
        #: the whole-node reboot.
        self.killed = False
        #: Whole-node reboots over the node's lifetime (not reset per
        #: scenario reboot — the cell resets it per scenario).
        self.reboots = 0
        self.units_run = 0
        self.metrics = MetricsRegistry()
        #: Supertrace coverage summed over this node's units.  Kept
        #: *outside* the health metrics: engine counters depend on the
        #: pooling/supertrace knobs, and supervisor decisions must not.
        self.coverage = dict.fromkeys(COVERAGE_KEYS, 0)

    # ------------------------------------------------------------------
    def acquire_system(self) -> System:
        """This node's System, restored to its sealed post-boot state.

        Pooled by default — the pool key carries ``instance=(cluster,
        node_id)`` so every node holds its own snapshot — with the same
        fresh-build fallback (``REPRO_SYSTEM_POOL=0``) the flat
        campaigns use.  ``REPRO_POOL_DEBUG=1`` therefore verifies every
        node restore against a fresh build, which is what the
        whole-node-reboot differential test leans on.
        """
        if pooling_enabled():
            return GLOBAL_POOL.acquire(
                ft_mode=self.ft_mode,
                recovery_mode=self.recovery_mode,
                instance=("cluster", self.node_id),
            )
        return build_system(
            ft_mode=self.ft_mode, recovery_mode=self.recovery_mode
        )

    # ------------------------------------------------------------------
    def run_unit(
        self, spec: RunSpec, unit_seed: int
    ) -> Tuple[Outcome, int, int]:
        """Execute one workload unit; returns ``(outcome, steps, cycles)``.

        ``cycles`` is the unit's virtual duration (the kernel clock at
        the end of the run) — the cell clock advances by it, keeping
        cluster timelines wall-clock-free and therefore deterministic.

        Pooled units go through ``_drive_run``'s ``instance`` path: the
        run acquires this node's private snapshot *and* the super-trace
        recording keyed to it, so node units replay (prefix + tails)
        exactly like flat campaign runs.  With pooling off each unit
        builds fresh and executes on the authoritative engine — same
        outcomes, by the supertrace correctness contract.
        """
        if pooling_enabled():
            outcome, system, __, steps, __ = _drive_run(
                spec, unit_seed, instance=node_pool_instance(self.node_id)
            )
        else:
            outcome, system, __, steps, __ = _drive_run(
                spec, unit_seed, system=self.acquire_system()
            )
        self.units_run += 1
        self._fold_health(system, outcome)
        collect_coverage(system.kernel, self.coverage)
        return outcome, steps, system.kernel.clock.now

    def _fold_health(self, system: System, outcome: Outcome) -> None:
        """Fold one unit's outcome-invariant counters into node health."""
        metrics = self.metrics
        kernel = system.kernel
        metrics.counter("units").inc()
        metrics.counter(f"outcome_{outcome.value}").inc()
        if outcome in FATAL_OUTCOMES:
            metrics.counter("crashes").inc()
        metrics.counter("faults_vectored").inc(
            kernel.stats["faults_vectored"]
        )
        metrics.counter("micro_reboots").inc(kernel.stats["micro_reboots"])
        metrics.counter("budget_exhausted").inc(
            kernel.stats["budget_exhausted"]
        )
        manager = system.recovery_manager
        if manager is not None:
            hist = metrics.histogram("recovery_cycles")
            for samples in manager.recovery_samples.values():
                for cycles in samples:
                    hist.observe(cycles)

    # ------------------------------------------------------------------
    def crash_count(self) -> int:
        """Fatal outcomes since the last whole-node reboot."""
        return self.metrics.counter("crashes").value

    def reboot(self) -> None:
        """Whole-node reboot: seal-restore the entire System.

        With pooling on this is the pool's ~5us dirty-restore of the
        node's private snapshot; with pooling off the next
        :meth:`acquire_system` builds fresh, which is the same
        post-boot state by construction.  Either way the node's health
        window resets — a rebooted node is a healthy node.
        """
        if pooling_enabled():
            snapshot = GLOBAL_POOL.snapshot_for(
                ft_mode=self.ft_mode,
                recovery_mode=self.recovery_mode,
                instance=("cluster", self.node_id),
            )
            if snapshot is not None:
                snapshot.restore()
        self.killed = False
        self.reboots += 1
        self.metrics = MetricsRegistry()

    def reset(self) -> None:
        """Reset all scenario-scoped state (cell reuse across scenarios)."""
        self.killed = False
        self.reboots = 0
        self.units_run = 0
        self.metrics = MetricsRegistry()
        self.coverage = dict.fromkeys(COVERAGE_KEYS, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name} killed={self.killed} "
            f"units={self.units_run} reboots={self.reboots}>"
        )


#: Snapshot identity helper used by tests and the campaign initializer.
def node_pool_instance(node_id: int) -> Optional[tuple]:
    return ("cluster", node_id)
