"""Simulated multi-node cluster: a cell of live Systems plus supervision.

SuperGlue recovers individual components via micro-reboot + replay; this
package asks the next question — what happens when the *substrate*
fails — following ReHype's "recover the substrate, not just the
service" insight.  A :class:`~repro.cluster.cell.Cell` hosts N simulated
nodes in one process (each a pooled
:class:`~repro.system.System` with a private instance-keyed snapshot), a
:class:`~repro.cluster.cell.Supervisor` health-checks them through
flight-recorder metrics (crash / budget-exhaustion / recovery-cycle
counters), and a :class:`~repro.cluster.cell.Scheduler` places workload
units, fails them over when a node dies, evicts unhealthy nodes, and
whole-node-reboots them through the pool's ~5us dirty-restore path.

Campaigns (``python -m repro cluster``) drive correlated node failures
under SWIFI injection and preserve the repository's determinism
contract: scenario outcomes are pure functions of ``(spec, seed)``, and
campaign artifacts are byte-identical serial vs parallel workers and
pooled vs fresh systems.
"""

from repro.cluster.campaign import (  # noqa: F401
    ClusterCampaignResult,
    ClusterSpec,
    aggregate_cluster_rows,
    calibrate_cluster_spec,
    cluster_run_seeds,
    execute_scenario,
    format_cluster_campaign,
    run_cluster_campaign,
)
from repro.cluster.cell import (  # noqa: F401
    NODE_REBOOT_CYCLES,
    Cell,
    Scheduler,
    Supervisor,
)
from repro.cluster.node import Node  # noqa: F401
