"""The cluster cell: N live nodes, a supervisor, and a scheduler.

Treadmill-style supervision over SuperGlue systems: the
:class:`Scheduler` places workload units round-robin over the live
nodes, the :class:`Supervisor` health-checks each node through its
flight-recorder metrics after every unit, and together they evict
unhealthy or killed nodes, whole-node-reboot them through the pool's
dirty-restore path, and re-admit them after a cooldown.

Everything a scenario does is a pure function of ``(ClusterSpec,
scenario_seed)``:

* unit outcomes are node-independent (each node restores its System to
  the identical sealed post-boot state before a unit), so failing a
  killed node's unit over to a survivor reproduces the exact outcome
  the dead node would have computed;
* the correlated-failure round (which unit, which victims) is drawn
  from ``random.Random(scenario_seed)`` alone;
* supervisor decisions read only integer health counters derived from
  unit outcomes; and
* the cell clock advances by virtual unit durations and fixed reboot
  costs — never wall time — so traced timelines are deterministic too.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.node import Node
from repro.observe.metrics import MetricsRegistry
from repro.observe.recorder import NULL_RECORDER, FlightRecorder
from repro.swifi.campaign import COVERAGE_KEYS
from repro.swifi.classify import Outcome

#: Virtual cost of a whole-node reboot: the pool's dirty-restore is
#: ~5us of wall time on the reference box; at 2400 cycles/us that is
#: 12k virtual cycles charged to the cell clock.
NODE_REBOOT_CYCLES = 12_000


class CellClock:
    """The cell's virtual clock (cycles); stamps cluster trace events."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def advance(self, cycles: int) -> None:
        self.now += cycles


class Supervisor:
    """Health-checks nodes through their flight-recorder metrics.

    A node is unhealthy when it was killed by the scenario's
    correlated-failure round, or when its crash counter (fatal unit
    outcomes since its last whole-node reboot) reaches the eviction
    threshold.  Decisions read only the node's integer health counters,
    so for a given ``(spec, seed)`` the supervisor makes the same calls
    on every worker, every pooling mode, every run.
    """

    def __init__(self, evict_threshold: int):
        self.evict_threshold = evict_threshold

    def healthy(self, node: Node) -> bool:
        if node.killed:
            return False
        return node.crash_count() < self.evict_threshold

    def verdict(self, node: Node) -> str:
        """Why a node is unhealthy (stable strings for events/rows)."""
        if node.killed:
            return "killed"
        return "crash_threshold"


class Scheduler:
    """Round-robin placement over the live nodes, with failover.

    The placement cursor advances per *placement*, not per unit index,
    so evictions and rejoins deterministically shift subsequent
    assignments instead of leaving holes.
    """

    def __init__(self, nodes: List[Node]):
        self.nodes = nodes
        self.live: List[Node] = list(nodes)
        self._cursor = 0

    def place(self) -> Node:
        node = self.live[self._cursor % len(self.live)]
        self._cursor += 1
        return node

    def place_surviving(self) -> Optional[Node]:
        """The next live, un-killed node (failover target), if any."""
        for offset in range(len(self.live)):
            node = self.live[(self._cursor + offset) % len(self.live)]
            if not node.killed:
                self._cursor += offset + 1
                return node
        return None

    def evict(self, node: Node) -> None:
        if node in self.live:
            self.live.remove(node)

    def admit(self, node: Node) -> None:
        if node not in self.live:
            self.live.append(node)
            self.live.sort(key=lambda n: n.node_id)

    def reset(self) -> None:
        self.live = list(self.nodes)
        self._cursor = 0


class Cell:
    """N simulated nodes plus their supervision, in one process."""

    def __init__(self, spec, trace: bool = False):
        self.spec = spec
        self.clock = CellClock()
        self.nodes = [
            Node(node_id, spec.ft_mode, spec.recovery_mode)
            for node_id in range(spec.n_nodes)
        ]
        self.supervisor = Supervisor(spec.evict_threshold)
        self.scheduler = Scheduler(self.nodes)
        self.recorder = (
            FlightRecorder(clock=self.clock) if trace else NULL_RECORDER
        )

    def coverage(self) -> Dict[str, int]:
        """Supertrace coverage summed across nodes for the last scenario.

        Sidecar-only by the campaign discipline: engine counters depend
        on the pooling/supertrace/tail knobs, and scenario rows must
        not.
        """
        total = dict.fromkeys(COVERAGE_KEYS, 0)
        for node in self.nodes:
            for key, value in node.coverage.items():
                total[key] += value
        return total

    def reset(self) -> None:
        """Reset scenario-scoped state (the cell is reused per worker)."""
        self.clock.now = 0
        for node in self.nodes:
            node.reset()
        self.scheduler.reset()
        if self.recorder.enabled:
            # A fresh recorder, not clear(): clear() keeps the sequence
            # counter running, but a scenario's trace record must be a
            # pure function of (spec, seed) — independent of how many
            # scenarios this worker's cell ran before it.
            self.recorder = FlightRecorder(clock=self.clock)

    # ------------------------------------------------------------------
    def run_scenario(self, scenario_seed: int) -> Dict[str, object]:
        """One cluster scenario; returns its deterministic campaign row.

        Every unit is a full SWIFI injection run (per the spec's fault
        class); on top of that the scenario kills ``n_kill`` correlated
        nodes at a seed-drawn unit — always including the node the unit
        was just placed on, so each scenario exercises at least one
        failover and one whole-node reboot.
        """
        self.reset()
        spec = self.spec
        run_spec = spec.run_spec()
        recorder = self.recorder
        rng = random.Random(scenario_seed)
        kill_at = rng.randrange(spec.units) if spec.n_kill else None
        outcomes: Dict[str, int] = {}
        metrics = MetricsRegistry()
        failovers = evictions = reboots = rejoins = 0
        steps_total = 0
        victims: List[int] = []
        #: node -> unit index at which it rejoins the live set.
        cooling: Dict[Node, int] = {}

        for unit in range(spec.units):
            for node in [n for n, due in cooling.items() if due <= unit]:
                del cooling[node]
                self.scheduler.admit(node)
                rejoins += 1
                if recorder.enabled:
                    recorder.emit("node_rejoin", node=node.name, unit=unit)

            node = self.scheduler.place()
            if unit == kill_at:
                victims = self._kill_round(rng, node, unit)
            if node.killed:
                survivor = self.scheduler.place_surviving()
                if survivor is None:
                    # Every live node died in the same round: emergency
                    # whole-node reboot of the placed node, then run the
                    # unit there (no failover possible).
                    node.reboot()
                    reboots += 1
                    self.clock.advance(NODE_REBOOT_CYCLES)
                    if recorder.enabled:
                        recorder.emit(
                            "node_reboot",
                            node=node.name,
                            unit=unit,
                            cost_cycles=NODE_REBOOT_CYCLES,
                            epoch=node.reboots,
                        )
                else:
                    failovers += 1
                    if recorder.enabled:
                        recorder.emit(
                            "unit_failover",
                            unit=unit,
                            from_node=node.name,
                            to_node=survivor.name,
                        )
                    node = survivor

            unit_seed = scenario_seed * 1_000_003 + unit
            outcome, steps, cycles = node.run_unit(run_spec, unit_seed)
            self.clock.advance(cycles)
            steps_total += steps
            outcomes[outcome.value] = outcomes.get(outcome.value, 0) + 1
            metrics.counter(f"outcome_{outcome.value}").inc()
            if recorder.enabled:
                recorder.emit(
                    "unit_done",
                    node=node.name,
                    unit=unit,
                    outcome=outcome.value,
                    cycles=cycles,
                )

            for sick in [
                n for n in list(self.scheduler.live)
                if not self.supervisor.healthy(n)
            ]:
                reason = self.supervisor.verdict(sick)
                if len(self.scheduler.live) > 1:
                    self.scheduler.evict(sick)
                    cooling[sick] = unit + 1 + spec.cooldown
                    evictions += 1
                    if recorder.enabled:
                        recorder.emit(
                            "node_evict",
                            node=sick.name,
                            unit=unit,
                            reason=reason,
                        )
                sick.reboot()
                reboots += 1
                self.clock.advance(NODE_REBOOT_CYCLES)
                if recorder.enabled:
                    recorder.emit(
                        "node_reboot",
                        node=sick.name,
                        unit=unit,
                        cost_cycles=NODE_REBOOT_CYCLES,
                        epoch=sick.reboots,
                    )

        metrics.counter("units").inc(spec.units)
        metrics.counter("failovers").inc(failovers)
        metrics.counter("evictions").inc(evictions)
        metrics.counter("node_reboots").inc(reboots)
        metrics.counter("rejoins").inc(rejoins)
        metrics.counter("scenarios").inc()
        recovered = outcomes.get(Outcome.RECOVERED.value, 0)
        return {
            "scenario_seed": scenario_seed,
            "outcome": "failover" if failovers else "ok",
            "units": spec.units,
            "kill_at": kill_at,
            "victims": victims,
            "failovers": failovers,
            "evictions": evictions,
            "node_reboots": reboots,
            "rejoins": rejoins,
            # Fraction of unit slots served by their originally placed
            # node — the scenario's availability under the correlated
            # node-failure model (failed-over units still complete, but
            # their first placement was lost).
            "availability": (spec.units - failovers) / spec.units,
            "recovered": recovered,
            "outcomes": dict(sorted(outcomes.items())),
            "steps": steps_total,
            "duration_cycles": self.clock.now,
            "per_node": [
                {
                    "node": node.name,
                    "units_run": node.units_run,
                    "reboots": node.reboots,
                }
                for node in self.nodes
            ],
            "metrics": metrics.to_dict(),
        }

    def _kill_round(
        self, rng: random.Random, placed: Node, unit: int
    ) -> List[int]:
        """Kill ``n_kill`` correlated nodes, always including ``placed``.

        Modeling the interesting correlated failure — the node actually
        running the workload dies, possibly along with neighbors — and
        guaranteeing every scenario exercises the failover path.
        """
        victims = [placed]
        others = [n for n in self.nodes if n is not placed]
        extra = self.spec.n_kill - 1
        if extra > 0:
            victims.extend(rng.sample(others, extra))
        victims.sort(key=lambda n: n.node_id)
        for victim in victims:
            victim.killed = True
            if self.recorder.enabled:
                self.recorder.emit(
                    "node_kill", node=victim.name, unit=unit
                )
        return [v.node_id for v in victims]
