"""Fault-injection campaign driver (Section V-D, Table II).

For each target service, a campaign injects ``n_faults`` faults, one per
run: the system is built fresh (the paper reboots the machine between
runs "to clear any residual errors"), the service's workload is
installed, a fault of the campaign's class — register SEU, memory-image
bit flip, IDL-boundary corruption, or correlated burst (see
:data:`~repro.swifi.injector.FAULT_CLASSES`) — is armed to fire at a
random point of the workload's execution against the target, and the run
is driven to completion.  Each injection is then classified per Table
II's outcome taxonomy, and a campaign aggregates activation ratio and
recovery success rate per fault class.

Every run is self-deterministic: its injection point is derived from the
run seed alone (``random.Random(run_seed).randrange(horizon)``), so a
run's outcome is a pure function of ``(service, ft_mode, iterations,
horizon, recovery_mode, run_seed)``.  That makes runs order-independent
and lets :mod:`repro.swifi.parallel` fan a campaign out across a process
pool — or resume an interrupted one — with bit-identical aggregates.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.composite.supertrace import (
    REGISTRY,
    RecordingSession,
    ReplaySession,
    super_trace_enabled,
    tail_replay_enabled,
)
from repro.errors import BlockThread, ReproError, SimulatedFault, SystemHang
from repro.observe import tracing_enabled
from repro.swifi.classify import Outcome, OutcomeCounter
from repro.swifi.injector import FAULT_CLASSES, SwifiController
from repro.system import GLOBAL_POOL, build_system, pooling_enabled
from repro.workloads import workload_for

#: Default iterations of the micro-workload per injection run: enough for
#: latent corruption to surface, small enough for 500-fault campaigns.
DEFAULT_ITERATIONS = 4

#: Step budget per run; exceeding it means the system livelocked.
MAX_STEPS = 60_000

#: Kernel counters that make up a campaign's supertrace coverage report
#: (exported to the ``.timing.json`` sidecar — engine statistics are
#: knob-dependent, so they must stay out of the main artifact).
COVERAGE_KEYS = (
    "super_trace_runs",
    "super_trace_bypasses",
    "super_trace_tail_runs",
    "super_trace_tail_records",
    "super_trace_divergences",
    "super_trace_divergent_units",
)


def collect_coverage(kernel, into: Optional[Dict[str, int]] = None):
    """Fold one finished run's supertrace counters into ``into``."""
    if into is None:
        into = dict.fromkeys(COVERAGE_KEYS, 0)
    stats = kernel.stats
    for key in COVERAGE_KEYS:
        into[key] += stats[key]
    return into


def coverage_ratio(coverage: Dict[str, int]) -> float:
    """Fraction of executed invocation units served by replay.

    Replayed prefix units plus replayed tail units, over every unit that
    crossed the session — replayed, recorded-bypass, and plain
    post-divergence authoritative units alike.
    """
    replayed = (
        coverage["super_trace_runs"] + coverage["super_trace_tail_runs"]
    )
    total = (
        replayed
        + coverage["super_trace_bypasses"]
        + coverage["super_trace_divergent_units"]
    )
    return replayed / total if total else 0.0


@dataclass(frozen=True)
class RunSpec:
    """Everything a single injection run depends on, besides its seed.

    A ``RunSpec`` plus a ``run_seed`` fully determines a run's outcome,
    which is what lets :func:`execute_run` execute in a worker process
    with no shared state.  The horizon is measured once by
    :meth:`CampaignRunner.calibrate` and shared via the spec so workers
    skip the calibration pass.
    """

    service: str
    ft_mode: str
    iterations: int
    horizon: int
    recovery_mode: str = "ondemand"
    fault_class: str = "reg"

    def __post_init__(self) -> None:
        # A zero/negative horizon used to be silently masked to 1 by
        # injection_point, turning "the workload never executed in the
        # target" into "always inject at trace execution 0".  Fail loudly
        # instead: an empty horizon means the calibration was wrong.
        if self.horizon < 1:
            raise ValueError(
                f"RunSpec horizon must be >= 1 (got {self.horizon}): an "
                f"empty injection horizon means the workload never "
                f"executes in {self.service!r}"
            )
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {self.fault_class!r} "
                f"(expected one of {FAULT_CLASSES})"
            )

    def fingerprint(self) -> str:
        """Stable identity string, used to match journal entries."""
        return (
            f"{self.service}/{self.ft_mode}/it{self.iterations}"
            f"/h{self.horizon}/{self.recovery_mode}/{self.fault_class}"
        )


def injection_point(run_seed: int, horizon: int) -> int:
    """Injection point for one run, a pure function of its seed.

    ``horizon`` must be at least 1; masking an empty horizon (the old
    ``max(horizon, 1)``) would silently inject at trace execution 0 of a
    workload that never runs in the target.
    """
    if horizon < 1:
        raise ValueError(f"injection horizon must be >= 1, got {horizon}")
    return random.Random(run_seed).randrange(horizon)


def execute_run(spec: RunSpec, run_seed: int) -> Outcome:
    """Run one injection and classify it.  Pure: no shared state.

    Module-level (picklable) so a :class:`ProcessPoolExecutor` worker can
    execute it from a submitted ``(spec, seeds)`` chunk.
    """
    outcome, __, __, __, __ = _drive_run(spec, run_seed)
    return outcome


def execute_run_traced(spec: RunSpec, run_seed: int):
    """Run one injection with the flight recorder on; returns
    ``(outcome, run_record)``.

    The run record is a JSON-safe dict — the run's identity, its derived
    injection point, outcome, recorded events, and per-run metrics —
    ready for :func:`repro.observe.export.write_run`.  Tracing is forced
    for the scope of the run only, so workers trace their runs whether
    or not ``REPRO_TRACE`` is set in their environment.  Event emission
    never feeds back into execution, so the outcome is identical to the
    untraced :func:`execute_run` for the same ``(spec, run_seed)``.
    """
    from repro import observe

    with observe.tracing(True):
        outcome, system, swifi, steps, __ = _drive_run(spec, run_seed)
        recorder = system.kernel.recorder
        metrics = recorder.metrics
        # Fold the kernel's whole-run counters into the per-run registry
        # so campaign aggregation sees engine + recovery statistics in
        # one deterministic place.
        for stat in (
            "invocations", "upcalls", "faults_vectored", "micro_reboots",
            "steps", "interp_fast_runs", "interp_slow_runs",
            "trace_cache_hits", "trace_cache_misses",
            "super_trace_runs", "super_trace_bypasses",
            "super_trace_divergences", "super_trace_divergent_units",
            "super_trace_tail_runs", "super_trace_tail_records",
            "budget_exhausted",
        ):
            metrics.counter(stat).inc(system.kernel.stats[stat])
        metrics.counter("runs").inc()
        metrics.counter(f"outcome_{outcome.value}").inc()
        record = {
            "fingerprint": spec.fingerprint(),
            "run_seed": run_seed,
            "service": spec.service,
            "ft_mode": spec.ft_mode,
            "fault_class": spec.fault_class,
            "injection_point": injection_point(run_seed, spec.horizon),
            "horizon": spec.horizon,
            "outcome": outcome.value,
            "steps": steps,
            "events": recorder.events(),
            "dropped_events": recorder.dropped,
            "metrics": metrics.to_dict(),
        }
    return outcome, record


def _campaign_system(ft_mode: str, recovery_mode: str, instance=None):
    """A system for one campaign run: pooled by default, fresh otherwise.

    Pooling reuses a per-process sealed system, dirty-restoring it to
    its post-boot state between runs — outcomes are bit-identical
    because a restored system is structurally indistinguishable from a
    fresh build (``REPRO_POOL_DEBUG=1`` verifies that per restore).
    ``instance`` selects a private pool snapshot (e.g. one cluster
    node's) instead of the process-shared one.  Traced runs always build
    fresh: warm trace caches shift cache-hit counters that the flight
    recorder folds into per-run metrics, and trace artifacts must stay
    byte-identical serial vs parallel.
    """
    if pooling_enabled() and not tracing_enabled():
        return GLOBAL_POOL.acquire(
            ft_mode=ft_mode, recovery_mode=recovery_mode, instance=instance
        )
    return build_system(ft_mode=ft_mode, recovery_mode=recovery_mode)


def _arm_for_class(swifi: SwifiController, spec: RunSpec, point: int) -> None:
    """Arm the spec's fault class at the derived injection point."""
    if spec.fault_class == "reg":
        swifi.arm(spec.service, after_executions=point)
    elif spec.fault_class == "mem":
        swifi.arm_mem(spec.service, after_executions=point)
    elif spec.fault_class == "idl":
        swifi.arm_idl(spec.service, after_invocations=point)
    elif spec.fault_class == "burst":
        swifi.arm_burst(spec.service, after_executions=point)
    else:  # pragma: no cover - RunSpec validates the class
        raise ValueError(f"unknown fault class {spec.fault_class!r}")


def _campaign_recording(spec: RunSpec, instance=None):
    """The super-trace recording for this spec, built once per process.

    Recordings exist only for pooled, untraced campaigns: a recording's
    units hold direct references into the sealed pooled system (images,
    stubs), so fresh-per-run and flight-recorder runs always execute on
    the authoritative two-tier path — which is also what makes
    ``REPRO_SUPER_TRACE=0/1 × REPRO_SYSTEM_POOL=0/1`` artifacts
    byte-identical by construction.  ``instance`` keys the recording to
    a private pool snapshot (a cluster node's), whose unit references
    bind *that* snapshot's images and stubs — the shared-pool recording
    would silently guard-fail against them every run.  A failed build is
    cached as None so the campaign never retries it.
    """
    if not (
        super_trace_enabled() and pooling_enabled() and not tracing_enabled()
    ):
        return None
    key = (
        spec.service, spec.ft_mode, spec.iterations, spec.recovery_mode,
        instance,
    )
    system = GLOBAL_POOL.peek(
        ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode,
        instance=instance,
    )
    if system is not None:
        found, recording = REGISTRY.lookup(key, system)
        if found:
            return recording
    recording = _build_recording(spec, instance=instance)
    system = GLOBAL_POOL.peek(
        ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode,
        instance=instance,
    )
    REGISTRY.store(key, system, recording)
    return recording


def _build_recording(spec: RunSpec, instance=None):
    """Record the spec's clean (fault-free) invocation sequence.

    Two warm-up passes bring the pooled system's trace caches and
    exec-compiled fast paths to steady state (the fast path compiles
    after two clean runs), so the recorded per-unit statistics match the
    warm state every pooled campaign run executes in.  Any anomaly —
    workload failure, crash, reboot, exhausted budget — aborts to None:
    the campaign then runs fully authoritative, never approximated.
    """
    workload = workload_for(spec.service)
    session = None
    try:
        for warm in range(3):
            system = _campaign_system(
                spec.ft_mode, spec.recovery_mode, instance=instance
            )
            kernel = system.kernel
            swifi = SwifiController(kernel, seed=0)  # never armed
            handle = workload.install(system, iterations=spec.iterations)
            if warm == 2:
                session = RecordingSession(kernel)
                session.instrument(swifi)
                kernel._supertrace = session
            try:
                system.run(max_steps=MAX_STEPS)
            finally:
                kernel._supertrace = None
            if (
                not handle.check()
                or kernel.crashed is not None
                or kernel.budget_exhausted
                or system.booter.reboots > 0
            ):
                return None
    except (SystemHang, SimulatedFault, ReproError, BlockThread):
        return None
    return session.finish(
        {"service": spec.service, "ft_mode": spec.ft_mode,
         "iterations": spec.iterations, "recovery_mode": spec.recovery_mode}
    )


def _drive_run(spec: RunSpec, run_seed: int, system=None, instance=None):
    """Boot (or pool-restore) a system, inject per the spec, run it.

    ``instance`` routes the run through a private instance-keyed pool
    snapshot (a cluster node's) with its own instance-keyed super-trace
    recording, so node runs replay exactly like shared-pool campaign
    runs.  ``system`` lets a caller hand in a system it manages itself
    (e.g. a fresh per-run build); such runs always execute on the
    authoritative two-tier engine, since recordings bind direct
    references into a pooled system the caller's is not.
    """
    if system is None:
        # Build the recording *before* the final acquire: the warm-up
        # passes dirty the pooled snapshot, and this run must start from
        # a clean restore of it.
        recording = _campaign_recording(spec, instance=instance)
        system = _campaign_system(
            spec.ft_mode, spec.recovery_mode, instance=instance
        )
    else:
        recording = None
    kernel = system.kernel
    swifi = SwifiController(kernel, seed=run_seed)
    workload = workload_for(spec.service)
    handle = workload.install(system, iterations=spec.iterations)
    _arm_for_class(swifi, spec, injection_point(run_seed, spec.horizon))
    session = None
    if recording is not None and recording.kernel is kernel:
        session = ReplaySession(recording, tails=tail_replay_enabled())
        kernel._supertrace = session
    crash: Optional[BaseException] = None
    steps = 0
    try:
        steps = system.run(max_steps=MAX_STEPS)
    except SystemHang as hang:
        crash = hang
    except SimulatedFault as fault:
        crash = fault
    except ReproError as error:
        # Fuzzed interface values (idl) and mid-recovery re-faults
        # (burst) can surface library-level contract violations that are
        # not SimulatedFaults — e.g. an InvalidDescriptor escaping every
        # recovery tier, or a RecoveryError from a replay that keeps
        # re-faulting.  Those are real not-recovered outcomes of the
        # fault, not harness bugs: classify them instead of killing the
        # whole campaign.
        crash = error
    finally:
        kernel._supertrace = None
        if session is not None:
            # Seal (or dead-cache) a tail recorded during this run so
            # the next run diverging with the same signature replays it.
            session.finalize(kernel)
    if kernel.crashed is not None and crash is None:
        crash = kernel.crashed
    outcome = classify_run(spec.ft_mode, system, swifi, handle, crash, steps)
    return outcome, system, swifi, steps, handle


def classify_run(ft_mode, system, swifi, handle, crash, steps) -> Outcome:
    """Map one finished run onto Table II's outcome taxonomy."""
    delivered = swifi.delivered_count > 0
    if crash is not None:
        kind = getattr(crash, "kind", "fault")
        if kind == "crash" or (kind == "segfault" and ft_mode == "none"):
            return Outcome.NOT_RECOVERED_SEGFAULT
        if kind == "propagated":
            return Outcome.NOT_RECOVERED_PROPAGATED
        return Outcome.NOT_RECOVERED_OTHER
    if system.kernel.budget_exhausted:
        # Livelock: latent fault kept the system spinning past the step
        # budget with live work remaining (distinguished, since the
        # budget-exhaustion bugfix, from a run that merely *finished*
        # near the budget).
        return Outcome.NOT_RECOVERED_OTHER
    workload_ok = handle.check()
    rebooted = system.booter.reboots > 0
    if rebooted:
        return Outcome.RECOVERED if workload_ok else Outcome.NOT_RECOVERED_OTHER
    if not delivered:
        # The SEU landed where the workload no longer executed in the
        # target (e.g. after its last invocation): no effect.
        return Outcome.UNDETECTED
    if workload_ok:
        return Outcome.UNDETECTED
    return Outcome.NOT_RECOVERED_OTHER


@dataclass
class CampaignResult:
    """One Table II row."""

    service: str
    counter: OutcomeCounter
    seed: int
    ft_mode: str
    fault_class: str = "reg"
    #: Wall-clock split: calibration + spec construction vs run
    #: execution.  Deliberately *not* part of :meth:`row` — the Table II
    #: artifact must stay bit-identical across machines and pooling
    #: modes; timings go to the ``.timing.json`` sidecar instead.
    setup_wall: float = 0.0
    exec_wall: float = 0.0
    #: Summed supertrace engine counters (:data:`COVERAGE_KEYS`).  Also
    #: sidecar-only: the counters depend on the engine knobs
    #: (``REPRO_SUPER_TRACE``/``REPRO_TAIL_REPLAY``/pooling), which the
    #: main artifact must be invariant to.
    coverage: Optional[Dict[str, int]] = None

    @property
    def injected(self) -> int:
        return self.counter.injected

    def row(self) -> Dict[str, object]:
        c = self.counter
        return {
            "component": self.service,
            "fault_class": self.fault_class,
            "injected": c.injected,
            "recovered": c.recovered,
            "not_recovered_segfault": c.count(Outcome.NOT_RECOVERED_SEGFAULT),
            "not_recovered_propagated": c.count(Outcome.NOT_RECOVERED_PROPAGATED),
            "not_recovered_other": c.count(Outcome.NOT_RECOVERED_OTHER),
            "undetected": c.count(Outcome.UNDETECTED),
            "activation_ratio": c.activation_ratio,
            "recovery_success_rate": c.recovery_success_rate,
        }


class CampaignRunner:
    """Runs a SWIFI campaign against one target service."""

    def __init__(
        self,
        service: str,
        ft_mode: str = "superglue",
        n_faults: int = 500,
        iterations: int = DEFAULT_ITERATIONS,
        seed: int = 0,
        recovery_mode: str = "ondemand",
        fault_class: str = "reg",
    ):
        self.service = service
        self.ft_mode = ft_mode
        self.n_faults = n_faults
        self.iterations = iterations
        self.seed = seed
        self.recovery_mode = recovery_mode
        self.fault_class = fault_class
        self.workload = workload_for(service)
        self._horizon: Optional[int] = None

    # ------------------------------------------------------------------
    def calibrate(self) -> int:
        """Dry run: measure the campaign's injection horizon.

        For trace-delivered classes (reg, mem, burst) the horizon is the
        number of trace executions inside the target component; for the
        idl class it is the number of client-stub invocations of the
        target server.  The injection point is drawn uniformly from this
        horizon, which models the paper's periodic injection timer
        landing at a uniformly random instant of the workload's
        execution against the target.  Runs once per campaign; workers
        receive the result via the RunSpec.
        """
        system = _campaign_system(self.ft_mode, self.recovery_mode)
        swifi = SwifiController(system.kernel, seed=0)
        handle = self.workload.install(system, iterations=self.iterations)
        system.run(max_steps=MAX_STEPS)
        if not handle.check():
            raise RuntimeError(
                f"workload {self.workload.name} fails without faults: "
                f"{handle.results}"
            )
        if self.fault_class == "idl":
            observed = swifi.invoke_counts.get(self.service, 1)
        else:
            observed = swifi.trace_counts.get(self.service, 1)
        self._horizon = max(observed, 1)
        return self._horizon

    def spec(self) -> RunSpec:
        """The calibrated run spec (calibrating on first use)."""
        if self._horizon is None:
            self.calibrate()
        return RunSpec(
            service=self.service,
            ft_mode=self.ft_mode,
            iterations=self.iterations,
            horizon=self._horizon,
            recovery_mode=self.recovery_mode,
            fault_class=self.fault_class,
        )

    def run_seeds(self) -> List[int]:
        """The deterministic per-run seed schedule for this campaign."""
        return [self.seed * 1_000_003 + i for i in range(self.n_faults)]

    # ------------------------------------------------------------------
    def run_one(self, run_seed: int) -> Outcome:
        """One injection run; returns its classified outcome."""
        return execute_run(self.spec(), run_seed)

    # ------------------------------------------------------------------
    def run(
        self,
        progress=None,
        workers: Optional[int] = None,
        journal: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> CampaignResult:
        """Run the campaign.

        ``workers=None`` uses one worker per CPU; ``workers > 1`` fans
        runs out over a process pool (see :mod:`repro.swifi.parallel`);
        the aggregate is bit-identical to the serial path for the same
        seed.  ``journal`` names a JSONL
        checkpoint file: completed runs are appended as they finish and
        skipped on a rerun, so an interrupted campaign resumes where it
        left off.  ``trace`` names a flight-recorder JSONL artifact:
        every run executes with tracing on and its event journal +
        metrics are appended there (outcomes are unchanged by tracing).
        """
        from repro.swifi.parallel import run_campaign

        setup_start = time.perf_counter()
        spec = self.spec()
        seeds = self.run_seeds()
        coverage = dict.fromkeys(COVERAGE_KEYS, 0)
        exec_start = time.perf_counter()
        counter = run_campaign(
            spec,
            seeds,
            workers=workers,
            journal=journal,
            progress=progress,
            trace=trace,
            coverage=coverage,
        )
        exec_end = time.perf_counter()
        return CampaignResult(
            service=self.service,
            counter=counter,
            seed=self.seed,
            ft_mode=self.ft_mode,
            fault_class=self.fault_class,
            setup_wall=exec_start - setup_start,
            exec_wall=exec_end - exec_start,
            coverage=coverage,
        )


def run_full_campaign(
    services=None,
    n_faults: int = 500,
    ft_mode: str = "superglue",
    seed: int = 0,
    workers: Optional[int] = None,
    journal: Optional[str] = None,
    trace: Optional[str] = None,
    fault_class: str = "reg",
) -> List[CampaignResult]:
    """Reproduce Table II: one campaign per target service.

    ``fault_class`` selects the injected fault model (one of
    :data:`~repro.swifi.injector.FAULT_CLASSES`) — each class is its own
    campaign column with its own outcome distribution.  One journal file
    covers the whole multi-service campaign: entries carry the run
    spec's fingerprint (which includes the fault class), so each service
    resumes only its own completed runs.  Likewise one ``trace``
    artifact accumulates the flight-recorder export of every service's
    campaign (each appends its runs and a per-campaign summary line).
    """
    from repro.idl_specs import SERVICES

    results = []
    for service in services or SERVICES:
        runner = CampaignRunner(
            service, ft_mode=ft_mode, n_faults=n_faults, seed=seed,
            fault_class=fault_class,
        )
        results.append(runner.run(workers=workers, journal=journal, trace=trace))
    return results


def format_table2(results: List[CampaignResult]) -> str:
    """Render campaign results in the shape of Table II."""
    header = (
        f"{'Component':<10}{'Injected':>9}{'Recovered':>10}"
        f"{'NR(segf)':>9}{'NR(prop)':>9}{'NR(other)':>10}{'Undetect':>9}"
        f"{'ActRatio':>10}{'SuccRate':>10}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        row = result.row()
        lines.append(
            f"{row['component']:<10}{row['injected']:>9}{row['recovered']:>10}"
            f"{row['not_recovered_segfault']:>9}"
            f"{row['not_recovered_propagated']:>9}"
            f"{row['not_recovered_other']:>10}{row['undetected']:>9}"
            f"{row['activation_ratio']:>9.2%}{row['recovery_success_rate']:>9.2%}"
        )
    return "\n".join(lines)


def write_table2_json(results: List[CampaignResult], path: str) -> None:
    """Emit the machine-readable Table II artifact: one dict per row.

    This is the format the nightly campaign workflow uploads and checks
    against ``benchmarks/baselines/table2_smoke.json``.  Wall-clock
    timings are machine-dependent, so they go to a ``.timing.json``
    sidecar — the main artifact stays bit-identical across machines,
    worker counts, and pooling modes.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([result.row() for result in results], handle, indent=2)
        handle.write("\n")
    timing = []
    for result in results:
        entry = {
            "component": result.service,
            "injected": result.injected,
            "setup_wall": result.setup_wall,
            "exec_wall": result.exec_wall,
        }
        if result.coverage is not None:
            entry["coverage"] = dict(result.coverage)
            entry["replayed_unit_coverage"] = round(
                coverage_ratio(result.coverage), 6
            )
        timing.append(entry)
    with open(path + ".timing.json", "w", encoding="utf-8") as handle:
        json.dump(timing, handle, indent=2)
        handle.write("\n")
