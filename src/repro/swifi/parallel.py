"""Parallel, resumable SWIFI campaign execution.

Injection campaigns are embarrassingly parallel: each run boots a fresh
system (the paper reboots the machine between runs), so runs share
nothing but the calibrated :class:`~repro.swifi.campaign.RunSpec`.  This
module fans a campaign's run seeds out across a
:class:`~concurrent.futures.ProcessPoolExecutor`, streams each chunk's
``(run_seed, outcome)`` pairs back to the parent as it completes, and
merges them in seed-schedule order so the aggregated
:class:`~repro.swifi.classify.OutcomeCounter` is bit-identical to the
serial path.

A JSONL journal makes campaigns resumable: every completed run is
appended as ``{"fingerprint", "run_seed", "outcome"}`` the moment its
chunk finishes, and a rerun against the same journal replays those
outcomes instead of re-executing them.  Entries are keyed by the spec
fingerprint, so one journal file can checkpoint a whole multi-service
Table II campaign.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observe import export as trace_export
from repro.observe.metrics import canonical_metrics, merge_metrics
from repro.swifi.campaign import (
    COVERAGE_KEYS,
    RunSpec,
    _campaign_recording,
    _drive_run,
    collect_coverage,
    execute_run_traced,
)
from repro.swifi.classify import Outcome, OutcomeCounter
from repro.system import GLOBAL_POOL, compile_all_interfaces, pooling_enabled

#: Target chunks per worker: small enough to stream progress and balance
#: load, large enough to amortise task-submission overhead.
CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker-count default: one per CPU."""
    return os.cpu_count() or 1


def worker_start_method() -> str:
    """The process-pool start method: ``REPRO_WORKER_START`` or auto.

    ``fork`` is the zero-copy path: the parent pays all per-process
    setup once (IDL compilation, pooled boot + seal, the super-trace
    recording), and forked workers inherit the sealed ``array('I')``
    images and compiled units copy-on-write — no per-worker boot, no
    re-pickling.  ``spawn`` keeps the per-worker initializer (each
    worker boots its own pooled system), which is also the clean
    fallback wherever fork is unavailable; an explicit
    ``REPRO_WORKER_START=fork`` on such a platform degrades to spawn
    rather than failing.
    """
    choice = os.environ.get("REPRO_WORKER_START", "auto")
    if choice == "spawn":
        return "spawn"
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


def chunk_seeds(seeds: Sequence[int], workers: int) -> List[List[int]]:
    """Split the seed schedule into contiguous chunks for distribution."""
    if not seeds:
        return []
    n_chunks = max(1, min(len(seeds), workers * CHUNKS_PER_WORKER))
    size = -(-len(seeds) // n_chunks)  # ceil division
    return [list(seeds[i:i + size]) for i in range(0, len(seeds), size)]


#: Worker-side campaign parameters, set once by the chunk initializer.
#: Chunks then carry only seed lists: the spec crosses the process
#: boundary exactly once per worker (spawn) or zero times (fork — the
#: parent runs the initializer and workers inherit everything COW).
_WORKER_SPEC: Optional[RunSpec] = None
_WORKER_TRACE: bool = False


def _init_campaign_worker(spec: RunSpec, trace: bool = False) -> None:
    """Campaign initializer: pay all per-process setup costs once.

    Without this, every worker lazily recompiled the six IDL interfaces
    on its first run (the ``compile_all_interfaces`` cache is
    per-process and starts cold) and built a system per run.  Here each
    process compiles once and — when pooling is enabled — boots and
    seals its pooled system and builds the spec's super-trace recording
    before the first chunk arrives, so chunk wall times measure
    injection runs, not setup.  Under fork this runs in the *parent*
    and workers inherit the whole warm state copy-on-write.
    """
    global _WORKER_SPEC, _WORKER_TRACE
    _WORKER_SPEC = spec
    _WORKER_TRACE = trace
    if spec.ft_mode == "superglue":
        compile_all_interfaces()
    if not trace and pooling_enabled():
        GLOBAL_POOL.acquire(
            ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
        )
        _campaign_recording(spec)


def fan_out_chunks(
    execute,
    pending: Sequence[int],
    workers: int,
    initializer=None,
    initargs: tuple = (),
    on_batch=None,
) -> None:
    """Fan ``execute`` out over chunked seeds — the shared campaign core.

    ``execute(seeds)`` must be a picklable module-level function taking
    only the chunk's seed list (per-campaign parameters travel through
    ``initializer(*initargs)``, never per chunk) and returning one
    result per seed; ``on_batch(results)`` is invoked in the parent as
    each chunk completes (completion order — callers that need
    determinism merge by seed afterwards, as :func:`run_campaign`
    does).  With ``workers <= 1`` or at most one pending seed, the
    initializer runs in-process and everything executes seed-by-seed
    with no pool overhead but the identical per-run code path.  Under
    the ``fork`` start method (see :func:`worker_start_method`) the
    initializer also runs in the parent, *before* the pool exists, so
    forked workers inherit its work — sealed pooled system, compiled
    interfaces, super-trace recording — copy-on-write instead of
    rebuilding it per worker.  Used by both the SWIFI table campaigns
    and the web-server Fig. 7 campaign.
    """
    if workers <= 1 or len(pending) <= 1:
        if initializer is not None:
            initializer(*initargs)
        for seed in pending:
            on_batch(execute([seed]))
        return
    chunks = chunk_seeds(pending, workers)
    method = worker_start_method()
    pool_initializer, pool_initargs = initializer, initargs
    if method == "fork" and initializer is not None:
        initializer(*initargs)
        pool_initializer, pool_initargs = None, ()
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context(method),
        initializer=pool_initializer,
        initargs=pool_initargs,
    ) as pool:
        futures = [pool.submit(execute, chunk) for chunk in chunks]
        for future in as_completed(futures):
            on_batch(future.result())


def _execute_chunk(seeds: List[int]):
    """Worker entry point: execute one chunk of runs.

    Reads the campaign parameters from the initializer-set module
    globals — the submitted payload is just the seed list.  Returns
    ``(triples, coverage)`` where the triples are ``(run_seed,
    outcome.value, run_record_or_None)`` — plain strings/dicts, not
    enum members, so results serialise cheaply across the process
    boundary and into the journal — and ``coverage`` sums the chunk's
    supertrace engine counters (zeros when the engine is off or the
    run is traced).  With the trace flag set, each run executes under
    the flight recorder and ships its event journal + per-run metrics
    back to the parent, which merges and exports them
    deterministically.
    """
    spec, trace = _WORKER_SPEC, _WORKER_TRACE
    coverage = dict.fromkeys(COVERAGE_KEYS, 0)
    results: List[Tuple[int, str, Optional[dict]]] = []
    if not trace:
        for seed in seeds:
            outcome, system, __, __, __ = _drive_run(spec, seed)
            collect_coverage(system.kernel, coverage)
            results.append((seed, outcome.value, None))
        return results, coverage
    for seed in seeds:
        outcome, record = execute_run_traced(spec, seed)
        results.append((seed, outcome.value, record))
    return results, coverage


class CampaignJournal:
    """Append-only JSONL checkpoint of completed injection runs."""

    def __init__(self, path: str):
        self.path = path

    def load(self, spec: RunSpec) -> Dict[int, Outcome]:
        """Completed ``{run_seed: outcome}`` for this spec's fingerprint.

        Tolerates a truncated final line (the campaign may have been
        killed mid-write); anything unparseable is simply re-run.
        """
        done: Dict[int, Outcome] = {}
        if not os.path.exists(self.path):
            return done
        fingerprint = spec.fingerprint()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if entry["fingerprint"] != fingerprint:
                        continue
                    done[int(entry["run_seed"])] = Outcome(entry["outcome"])
                except (ValueError, KeyError):
                    continue
        return done

    def append(
        self, spec: RunSpec, completed: Iterable[Tuple[int, str]]
    ) -> None:
        """Record finished runs; flushed immediately so a kill loses at
        most the in-flight chunk."""
        fingerprint = spec.fingerprint()
        with open(self.path, "a", encoding="utf-8") as handle:
            for run_seed, outcome in completed:
                handle.write(
                    json.dumps(
                        {
                            "fingerprint": fingerprint,
                            "run_seed": run_seed,
                            "outcome": outcome,
                        }
                    )
                    + "\n"
                )
            handle.flush()


def run_campaign(
    spec: RunSpec,
    run_seeds: Sequence[int],
    workers: Optional[int] = None,
    journal: Optional[str] = None,
    progress=None,
    trace: Optional[str] = None,
    coverage: Optional[Dict[str, int]] = None,
) -> OutcomeCounter:
    """Execute a campaign's runs and aggregate their outcomes.

    ``coverage``, if given, is filled in place with the campaign's
    summed supertrace engine counters (see
    :data:`~repro.swifi.campaign.COVERAGE_KEYS`) — engine statistics
    are knob-dependent, so they ride the timing sidecar, never the
    main artifact.  Journal-replayed runs were not re-executed and
    contribute nothing.

    ``workers=None`` uses one worker per CPU (:func:`default_workers`);
    ``workers=1`` (or a single pending run) stays in-process with no
    pool overhead.  The merge happens in ``run_seeds`` order regardless
    of completion order (and regardless of how many runs were replayed
    from the journal), so for a given seed schedule the resulting
    counter is bit-identical across worker counts and across resumes.

    ``trace`` names a flight-recorder JSONL artifact to append to: each
    run then executes with tracing on (workers serialize each run's
    event journal + metrics back to the parent), and the parent writes
    runs in seed-schedule order and merges per-run metrics in that same
    order — so the exported file and the merged metrics are also
    identical across worker counts.  Runs replayed from the journal were
    not re-executed and contribute no events; the summary line counts
    them.
    """
    if workers is None:
        workers = default_workers()
    book = CampaignJournal(journal) if journal else None
    outcomes: Dict[int, Outcome] = book.load(spec) if book else {}
    replayed = {seed for seed in run_seeds if seed in outcomes}
    pending = [seed for seed in run_seeds if seed not in outcomes]
    total = len(run_seeds)
    completed = total - len(pending)
    records: Dict[int, dict] = {}
    tracing = trace is not None

    def note(batch) -> None:
        nonlocal completed
        triples, chunk_coverage = batch
        if coverage is not None:
            for key, value in chunk_coverage.items():
                coverage[key] = coverage.get(key, 0) + value
        if book is not None:
            book.append(spec, [(seed, value) for seed, value, __ in triples])
        for run_seed, value, record in triples:
            outcomes[run_seed] = Outcome(value)
            if record is not None:
                records[run_seed] = record
            completed += 1
            if progress is not None:
                progress(completed, total, outcomes[run_seed])

    fan_out_chunks(
        _execute_chunk,
        pending,
        workers,
        initializer=_init_campaign_worker,
        initargs=(spec, tracing),
        on_batch=note,
    )

    counter = OutcomeCounter()
    for seed in run_seeds:
        counter.add(outcomes[seed])
    if tracing:
        _export_trace(trace, spec, run_seeds, outcomes, records, replayed)
    return counter


def _export_trace(
    path: str,
    spec: RunSpec,
    run_seeds: Sequence[int],
    outcomes: Dict[int, Outcome],
    records: Dict[int, dict],
    replayed,
) -> None:
    """Append this campaign's runs + summary to the trace artifact.

    Everything is written parent-side in seed-schedule order, and the
    metrics merge follows the same order, so the artifact is
    byte-identical whether the runs executed serially or across a
    process pool.
    """
    merged_metrics: Dict[str, object] = {}
    with open(path, "a", encoding="utf-8") as handle:
        for seed in run_seeds:
            record = records.get(seed)
            if record is None:
                continue
            trace_export.write_run(handle, record)
            merge_metrics(merged_metrics, record["metrics"])
        tally: Dict[str, int] = {}
        for seed in run_seeds:
            value = outcomes[seed].value
            tally[value] = tally.get(value, 0) + 1
        trace_export.write_summary(
            handle,
            fingerprint=spec.fingerprint(),
            runs=len(run_seeds),
            replayed=len(replayed),
            outcomes=tally,
            metrics=canonical_metrics(merged_metrics),
        )
