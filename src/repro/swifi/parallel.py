"""Parallel, resumable SWIFI campaign execution.

Injection campaigns are embarrassingly parallel: each run boots a fresh
system (the paper reboots the machine between runs), so runs share
nothing but the calibrated :class:`~repro.swifi.campaign.RunSpec`.  This
module fans a campaign's run seeds out across a
:class:`~concurrent.futures.ProcessPoolExecutor`, streams each chunk's
``(run_seed, outcome)`` pairs back to the parent as it completes, and
merges them in seed-schedule order so the aggregated
:class:`~repro.swifi.classify.OutcomeCounter` is bit-identical to the
serial path.

A JSONL journal makes campaigns resumable: every completed run is
appended as ``{"fingerprint", "run_seed", "outcome"}`` the moment its
chunk finishes, and a rerun against the same journal replays those
outcomes instead of re-executing them.  Entries are keyed by the spec
fingerprint, so one journal file can checkpoint a whole multi-service
Table II campaign.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.swifi.campaign import RunSpec, execute_run
from repro.swifi.classify import Outcome, OutcomeCounter

#: Target chunks per worker: small enough to stream progress and balance
#: load, large enough to amortise task-submission overhead.
CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker-count default: one per CPU."""
    return os.cpu_count() or 1


def chunk_seeds(seeds: Sequence[int], workers: int) -> List[List[int]]:
    """Split the seed schedule into contiguous chunks for distribution."""
    if not seeds:
        return []
    n_chunks = max(1, min(len(seeds), workers * CHUNKS_PER_WORKER))
    size = -(-len(seeds) // n_chunks)  # ceil division
    return [list(seeds[i:i + size]) for i in range(0, len(seeds), size)]


def _execute_chunk(
    spec: RunSpec, seeds: List[int]
) -> List[Tuple[int, str]]:
    """Worker entry point: execute one chunk of runs.

    Returns ``(run_seed, outcome.value)`` pairs — strings, not enum
    members, so results serialise cheaply across the process boundary
    and into the journal.
    """
    return [(seed, execute_run(spec, seed).value) for seed in seeds]


class CampaignJournal:
    """Append-only JSONL checkpoint of completed injection runs."""

    def __init__(self, path: str):
        self.path = path

    def load(self, spec: RunSpec) -> Dict[int, Outcome]:
        """Completed ``{run_seed: outcome}`` for this spec's fingerprint.

        Tolerates a truncated final line (the campaign may have been
        killed mid-write); anything unparseable is simply re-run.
        """
        done: Dict[int, Outcome] = {}
        if not os.path.exists(self.path):
            return done
        fingerprint = spec.fingerprint()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if entry["fingerprint"] != fingerprint:
                        continue
                    done[int(entry["run_seed"])] = Outcome(entry["outcome"])
                except (ValueError, KeyError):
                    continue
        return done

    def append(
        self, spec: RunSpec, completed: Iterable[Tuple[int, str]]
    ) -> None:
        """Record finished runs; flushed immediately so a kill loses at
        most the in-flight chunk."""
        fingerprint = spec.fingerprint()
        with open(self.path, "a", encoding="utf-8") as handle:
            for run_seed, outcome in completed:
                handle.write(
                    json.dumps(
                        {
                            "fingerprint": fingerprint,
                            "run_seed": run_seed,
                            "outcome": outcome,
                        }
                    )
                    + "\n"
                )
            handle.flush()


def run_campaign(
    spec: RunSpec,
    run_seeds: Sequence[int],
    workers: Optional[int] = None,
    journal: Optional[str] = None,
    progress=None,
) -> OutcomeCounter:
    """Execute a campaign's runs and aggregate their outcomes.

    ``workers=None`` uses one worker per CPU (:func:`default_workers`);
    ``workers=1`` (or a single pending run) stays in-process with no
    pool overhead.  The merge happens in ``run_seeds`` order regardless
    of completion order (and regardless of how many runs were replayed
    from the journal), so for a given seed schedule the resulting
    counter is bit-identical across worker counts and across resumes.
    """
    if workers is None:
        workers = default_workers()
    book = CampaignJournal(journal) if journal else None
    outcomes: Dict[int, Outcome] = book.load(spec) if book else {}
    pending = [seed for seed in run_seeds if seed not in outcomes]
    total = len(run_seeds)
    completed = total - len(pending)

    def note(batch: List[Tuple[int, str]]) -> None:
        nonlocal completed
        if book is not None:
            book.append(spec, batch)
        for run_seed, value in batch:
            outcomes[run_seed] = Outcome(value)
            completed += 1
            if progress is not None:
                progress(completed, total, outcomes[run_seed])

    if workers <= 1 or len(pending) <= 1:
        # In-process serial path: same per-run function, same journal
        # protocol, no pool overhead.
        for seed in pending:
            note([(seed, execute_run(spec, seed).value)])
    else:
        chunks = chunk_seeds(pending, workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_chunk, spec, chunk) for chunk in chunks
            ]
            for future in as_completed(futures):
                note(future.result())

    counter = OutcomeCounter()
    for seed in run_seeds:
        counter.add(outcomes[seed])
    return counter
