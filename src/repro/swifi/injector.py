"""Register bit-flip injector (Section V-A).

"Faults are injected by iterating through all threads and flipping
register bits only if they are executing within one of the target server
components ... randomly selecting a register from eight 32-bit registers
(6 general purpose registers and 2 special registers ESP and EBP) and
flipping a random bit in the selected register."

The controller arms one pending single-event upset at a time.  The flip is
applied by the trace interpreter once a thread executes a micro-op trace
inside the target component: after a configurable number of trace
executions (modelling the periodic injection timer landing at a random
point of the workload) and at a random micro-op index within that trace.
A fault mask restricts which bits are eligible (the evaluation uses
0xFFFFFFFF — all 32 bits).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.composite.machine import NUM_REGS, Injection

FULL_MASK = 0xFFFFFFFF


class PlannedInjection:
    """One armed single-event upset."""

    __slots__ = ("component", "reg", "bit", "after_executions", "seen")

    def __init__(self, component: str, reg: int, bit: int, after_executions: int):
        self.component = component
        self.reg = reg
        self.bit = bit
        self.after_executions = after_executions
        self.seen = 0

    def __repr__(self):
        return (
            f"PlannedInjection({self.component}, reg={self.reg}, "
            f"bit={self.bit}, after={self.after_executions})"
        )


class SwifiController:
    """Arms and delivers register bit flips into a target component."""

    def __init__(self, kernel, seed: Optional[int] = None,
                 fault_mask: int = FULL_MASK):
        self.kernel = kernel
        kernel.swifi = self
        self.rng = random.Random(seed)
        self.fault_mask = fault_mask & FULL_MASK
        self._eligible_bits = [
            b for b in range(32) if (self.fault_mask >> b) & 1
        ]
        if not self._eligible_bits:
            raise ValueError("fault mask selects no bits")
        self.pending: Optional[PlannedInjection] = None
        self.delivered: List[Injection] = []
        #: trace executions observed per component (for calibration)
        self.trace_counts = {}
        #: Virtual clock of the most recent delivery whose detection has
        #: not been observed yet; the kernel consumes it on the next
        #: vectored fault to compute the detection latency.
        self.last_delivery_clock: Optional[int] = None

    # ------------------------------------------------------------------
    def arm(
        self,
        component: str,
        reg: Optional[int] = None,
        bit: Optional[int] = None,
        after_executions: int = 0,
    ) -> PlannedInjection:
        """Arm one SEU against ``component``.

        Register and bit default to uniform random choices, matching the
        paper's first-order-approximation fault distribution.
        """
        if reg is None:
            reg = self.rng.randrange(NUM_REGS)
        if bit is None:
            bit = self.rng.choice(self._eligible_bits)
        self.pending = PlannedInjection(component, reg, bit, after_executions)
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "swifi_arm",
                component=component,
                reg=reg,
                bit=bit,
                after_executions=after_executions,
            )
        return self.pending

    def disarm(self) -> None:
        self.pending = None

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)

    # ------------------------------------------------------------------
    # Called by Component.execute for every trace execution.
    # ------------------------------------------------------------------
    def take_injection(self, component_name: str, trace_len: int):
        self.trace_counts[component_name] = (
            self.trace_counts.get(component_name, 0) + 1
        )
        pending = self.pending
        if pending is None or pending.component != component_name:
            return None
        if trace_len <= 0:
            return None
        pending.seen += 1
        if pending.seen <= pending.after_executions:
            return None
        injection = Injection(
            reg=pending.reg,
            bit=pending.bit,
            op_index=self.rng.randrange(trace_len),
        )
        self.pending = None
        self.delivered.append(injection)
        self.last_delivery_clock = self.kernel.clock.now
        return injection

    def consume_delivery_latency(self, now: int) -> Optional[int]:
        """Cycles since the last unobserved delivery; one-shot."""
        delivered_at = self.last_delivery_clock
        if delivered_at is None:
            return None
        self.last_delivery_clock = None
        return now - delivered_at
