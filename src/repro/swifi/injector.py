"""Multi-class fault injector (Section V-A, extended fault space).

The original engine models the paper's evaluation fault model:

"Faults are injected by iterating through all threads and flipping
register bits only if they are executing within one of the target server
components ... randomly selecting a register from eight 32-bit registers
(6 general purpose registers and 2 special registers ESP and EBP) and
flipping a random bit in the selected register."

On top of those **register** single-event upsets the controller now
injects three further fault classes, each derived purely from the run's
seeded RNG so campaign outcomes stay a pure function of ``(spec,
run_seed)``:

* ``mem`` — **memory-image bit-flips**: one bit of one word of the target
  component's :class:`~repro.composite.memory.MemoryImage` is flipped,
  preferring *hot* (dirty) pages via the image's dirty-page bitmap.  The
  flip is written tainted, so the compiled fast path demotes to the
  authoritative interpreter and the corruption propagates (or is caught
  by a magic check) exactly like interpreter-level taint.
* ``idl`` — **IDL-boundary fuzzing**: one integer argument (or, for
  functions carrying no integer arguments, the next integer return
  value) of a client-stub invocation on the target server is bit-flipped
  — attacking exactly the surface the interface contracts protect.
* ``burst`` — **correlated bursts**: a register flip in the target
  followed by ``k - 1`` further flips delivered to *whichever* component
  executes next (cross-component) within a virtual-time window.

All three arm exactly one planned fault per run, mirroring the one-SEU
reg discipline; ``delivered`` accumulates a typed record per flip that
actually landed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.composite.machine import NUM_REGS, Injection
from repro.composite.memory import PAGE_SHIFT, PAGE_WORDS

FULL_MASK = 0xFFFFFFFF

#: The campaign fault-class axis (``table2 --fault-class``).
FAULT_CLASSES = ("reg", "mem", "idl", "burst")

#: Correlated-burst defaults: total flips per burst and the virtual-time
#: window (cycles) within which the follow-up flips must land.
BURST_K = 3
BURST_WINDOW_CYCLES = 250_000


class PlannedInjection:
    """One armed fault (any class); at most one is pending per run."""

    __slots__ = (
        "component", "reg", "bit", "after_executions", "seen",
        "fault_class", "burst_k", "burst_window",
    )

    def __init__(
        self,
        component: str,
        reg: Optional[int] = None,
        bit: Optional[int] = None,
        after_executions: int = 0,
        fault_class: str = "reg",
        burst_k: int = 1,
        burst_window: int = 0,
    ):
        self.component = component
        self.reg = reg
        self.bit = bit
        self.after_executions = after_executions
        self.fault_class = fault_class
        self.burst_k = burst_k
        self.burst_window = burst_window
        self.seen = 0

    def __repr__(self):
        return (
            f"PlannedInjection({self.component}, class={self.fault_class}, "
            f"reg={self.reg}, bit={self.bit}, after={self.after_executions})"
        )


class MemFlip:
    """Record of one delivered memory-image bit flip."""

    __slots__ = ("component", "addr", "bit", "page", "page_dirty")

    def __init__(self, component: str, addr: int, bit: int, page: int,
                 page_dirty: bool):
        self.component = component
        self.addr = addr
        self.bit = bit
        self.page = page
        self.page_dirty = page_dirty

    def __repr__(self):
        return (
            f"MemFlip({self.component}, addr={self.addr:#x}, bit={self.bit}, "
            f"page={self.page}, dirty={self.page_dirty})"
        )


class IdlFuzz:
    """Record of one delivered IDL-boundary corruption."""

    __slots__ = ("server", "fn", "target", "index", "bit")

    def __init__(self, server: str, fn: str, target: str, index: int, bit: int):
        self.server = server
        self.fn = fn
        self.target = target  # "arg" or "ret"
        self.index = index
        self.bit = bit

    def __repr__(self):
        return (
            f"IdlFuzz({self.server}.{self.fn}, {self.target}[{self.index}], "
            f"bit={self.bit})"
        )


class SwifiController:
    """Arms and delivers faults of every class into target components."""

    def __init__(self, kernel, seed: Optional[int] = None,
                 fault_mask: int = FULL_MASK):
        self.kernel = kernel
        kernel.swifi = self
        self.rng = random.Random(seed)
        self.fault_mask = fault_mask & FULL_MASK
        self._eligible_bits = [
            b for b in range(32) if (self.fault_mask >> b) & 1
        ]
        if not self._eligible_bits:
            raise ValueError("fault mask selects no bits")
        self.pending: Optional[PlannedInjection] = None
        self.delivered: List[object] = []
        #: trace executions observed per component (for calibration)
        self.trace_counts = {}
        #: client-stub invocations observed per server (idl calibration)
        self.invoke_counts = {}
        #: Armed IDL fuzz: (server, after_invocations, seen) or None.
        self._idl_pending: Optional[List] = None
        #: A fired-but-unapplied retval fuzz: (server, bit) or None.
        self._idl_ret_pending: Optional[Tuple[str, int]] = None
        #: Burst follow-up state: flips left + virtual-time deadline.
        self._burst_remaining = 0
        self._burst_deadline = 0
        #: Virtual clock of the most recent delivery whose detection has
        #: not been observed yet; the kernel consumes it on the next
        #: vectored fault to compute the detection latency.
        self.last_delivery_clock: Optional[int] = None

    # ------------------------------------------------------------------
    def arm(
        self,
        component: str,
        reg: Optional[int] = None,
        bit: Optional[int] = None,
        after_executions: int = 0,
    ) -> PlannedInjection:
        """Arm one register SEU against ``component``.

        Register and bit default to uniform random choices, matching the
        paper's first-order-approximation fault distribution.
        """
        if reg is None:
            reg = self.rng.randrange(NUM_REGS)
        if bit is None:
            bit = self.rng.choice(self._eligible_bits)
        self.pending = PlannedInjection(component, reg, bit, after_executions)
        self._emit_arm(self.pending)
        return self.pending

    def arm_mem(self, component: str, after_executions: int = 0) -> PlannedInjection:
        """Arm one memory-image bit flip against ``component``.

        The page, word, and bit are drawn at fire time, when the dirty
        bitmap reflects the workload's actual write set.
        """
        self.pending = PlannedInjection(
            component, after_executions=after_executions, fault_class="mem"
        )
        self._emit_arm(self.pending)
        return self.pending

    def arm_burst(
        self,
        component: str,
        k: int = BURST_K,
        window: int = BURST_WINDOW_CYCLES,
        after_executions: int = 0,
    ) -> PlannedInjection:
        """Arm a correlated burst: a register flip in ``component`` then
        ``k - 1`` follow-up flips within ``window`` cycles, delivered to
        whichever component executes a trace next (cross-component)."""
        reg = self.rng.randrange(NUM_REGS)
        bit = self.rng.choice(self._eligible_bits)
        self.pending = PlannedInjection(
            component, reg, bit, after_executions,
            fault_class="burst", burst_k=max(k, 1), burst_window=window,
        )
        self._emit_arm(self.pending)
        return self.pending

    def arm_idl(self, server: str, after_invocations: int = 0) -> None:
        """Arm one IDL-boundary corruption against invocations of
        ``server`` through its client stubs."""
        self._idl_pending = [server, after_invocations, 0]
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "swifi_arm",
                component=server,
                reg=None,
                bit=None,
                after_executions=after_invocations,
                fault_class="idl",
            )

    def _emit_arm(self, plan: PlannedInjection) -> None:
        recorder = self.kernel.recorder
        if not recorder.enabled:
            return
        fields = dict(
            component=plan.component,
            reg=plan.reg,
            bit=plan.bit,
            after_executions=plan.after_executions,
        )
        if plan.fault_class != "reg":
            fields["fault_class"] = plan.fault_class
        if plan.fault_class == "burst":
            fields["burst_k"] = plan.burst_k
            fields["burst_window"] = plan.burst_window
        recorder.emit("swifi_arm", **fields)

    def disarm(self) -> None:
        self.pending = None
        self._idl_pending = None
        self._idl_ret_pending = None
        self._burst_remaining = 0

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)

    # ------------------------------------------------------------------
    # Called by Component.execute for every trace execution.
    # ------------------------------------------------------------------
    def take_injection(self, component_name: str, trace_len: int):
        self.trace_counts[component_name] = (
            self.trace_counts.get(component_name, 0) + 1
        )
        if self._burst_remaining > 0:
            return self._burst_follow_up(component_name, trace_len)
        pending = self.pending
        if pending is None or pending.component != component_name:
            return None
        if trace_len <= 0:
            return None
        pending.seen += 1
        if pending.seen <= pending.after_executions:
            return None
        if pending.fault_class == "mem":
            self.pending = None
            return self._deliver_mem_flip(component_name)
        injection = Injection(
            reg=pending.reg,
            bit=pending.bit,
            op_index=self.rng.randrange(trace_len),
        )
        self.pending = None
        if pending.fault_class == "burst" and pending.burst_k > 1:
            self._burst_remaining = pending.burst_k - 1
            self._burst_deadline = self.kernel.clock.now + pending.burst_window
        self.delivered.append(injection)
        self.last_delivery_clock = self.kernel.clock.now
        return injection

    def _burst_follow_up(self, component_name: str, trace_len: int):
        """Deliver the next flip of an in-flight burst, in any component.

        The window is virtual time: follow-ups landing past the deadline
        are cancelled, which lets a burst straddle (and be cut short by)
        a micro-reboot's image-restore cost.
        """
        if self.kernel.clock.now > self._burst_deadline:
            self._burst_remaining = 0
            return None
        if trace_len <= 0:
            return None
        injection = Injection(
            reg=self.rng.randrange(NUM_REGS),
            bit=self.rng.choice(self._eligible_bits),
            op_index=self.rng.randrange(trace_len),
        )
        self._burst_remaining -= 1
        self.delivered.append(injection)
        self.last_delivery_clock = self.kernel.clock.now
        return injection

    def _deliver_mem_flip(self, component_name: str) -> None:
        """Flip one bit of the target's memory image; returns ``None``
        (the corruption lives in memory, not in a register injection).

        Hot (dirty) pages are preferred: they hold the records the
        workload actually touches, and within the chosen page the flip
        targets a word whose value changed since boot (a live record
        field or stack slot) when one exists.  A component with no dirty
        pages — e.g. one the workload never wrote to — degrades to a
        uniform page draw, modelling a flip in cold state.  The flip is
        written tainted, so the fast path demotes and the usual
        taint-propagation / magic-check machinery decides detection.
        """
        image = self.kernel.component(component_name).image
        dirty_pages = image.dirty_page_indices()
        n_pages = (image.size + PAGE_WORDS - 1) >> PAGE_SHIFT
        # Stack pages are hot but self-overwriting (every trace entry
        # rebuilds its frame), so flips there are disproportionately
        # masked; prefer the dirty *heap* pages holding live records.
        stack_page = (image.stack_base - image.base) >> PAGE_SHIFT
        heap_pages = [p for p in dirty_pages if p < stack_page]
        if heap_pages:
            page = heap_pages[self.rng.randrange(len(heap_pages))]
        elif dirty_pages:
            page = dirty_pages[self.rng.randrange(len(dirty_pages))]
        else:
            page = self.rng.randrange(n_pages)
        live = image.modified_word_offsets(page)
        if live:
            offset = live[self.rng.randrange(len(live))]
        else:
            lo = page << PAGE_SHIFT
            hi = min(lo + PAGE_WORDS, image.size)
            offset = lo + self.rng.randrange(hi - lo)
        bit = self.rng.choice(self._eligible_bits)
        addr = image.base + offset
        image.write_word(addr, image.read_word(addr) ^ (1 << bit), tainted=True)
        flip = MemFlip(
            component_name, addr, bit, page, page_dirty=bool(dirty_pages)
        )
        self.delivered.append(flip)
        self.last_delivery_clock = self.kernel.clock.now
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "swifi_mem_inject",
                component=component_name,
                addr=addr,
                bit=bit,
                page=page,
                page_dirty=flip.page_dirty,
            )
        return None

    # ------------------------------------------------------------------
    # IDL-boundary fuzzing, called by the client-stub layer around every
    # stub invocation (ClientStubRuntime.invoke / C3ClientStubBase.invoke).
    # ------------------------------------------------------------------
    def filter_idl_args(self, server: str, fn: str, args: tuple) -> tuple:
        """Count one stub invocation; corrupt its arguments if armed.

        Fires once: past the armed invocation count, one bit of one
        integer argument is flipped.  A function carrying no integer
        arguments (the zero-arg / principal-only edge case) converts the
        fault into a pending *return-value* flip applied by
        :meth:`filter_idl_ret` on the next completed invocation of the
        same server.
        """
        self.invoke_counts[server] = self.invoke_counts.get(server, 0) + 1
        pending = self._idl_pending
        if pending is None or pending[0] != server:
            return args
        pending[2] += 1
        if pending[2] <= pending[1]:
            return args
        self._idl_pending = None
        bit = self.rng.choice(self._eligible_bits)
        candidates = [
            i for i, value in enumerate(args)
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        if not candidates:
            # Nothing to corrupt on the way in: corrupt the way out.
            self._idl_ret_pending = (server, bit)
            return args
        index = candidates[self.rng.randrange(len(candidates))]
        mutated = list(args)
        mutated[index] = mutated[index] ^ (1 << bit)
        fuzz = IdlFuzz(server, fn, "arg", index, bit)
        self.delivered.append(fuzz)
        self.last_delivery_clock = self.kernel.clock.now
        self._emit_idl(fuzz)
        return tuple(mutated)

    def filter_idl_ret(self, server: str, fn: str, value):
        """Apply a pending return-value flip to an integer result."""
        pending = self._idl_ret_pending
        if pending is None or pending[0] != server:
            return value
        if not isinstance(value, int) or isinstance(value, bool):
            return value
        self._idl_ret_pending = None
        bit = pending[1]
        fuzz = IdlFuzz(server, fn, "ret", -1, bit)
        self.delivered.append(fuzz)
        self.last_delivery_clock = self.kernel.clock.now
        self._emit_idl(fuzz)
        return value ^ (1 << bit)

    def _emit_idl(self, fuzz: IdlFuzz) -> None:
        recorder = self.kernel.recorder
        if recorder.enabled:
            recorder.emit(
                "swifi_idl_inject",
                server=fuzz.server,
                fn=fuzz.fn,
                target=fuzz.target,
                index=fuzz.index,
                bit=fuzz.bit,
            )

    # ------------------------------------------------------------------
    def consume_delivery_latency(self, now: int) -> Optional[int]:
        """Cycles since the last unobserved delivery; one-shot."""
        delivered_at = self.last_delivery_clock
        if delivered_at is None:
            return None
        self.last_delivery_clock = None
        return now - delivered_at
