"""Software-implemented fault injection (SWIFI), Section V-A."""

from repro.swifi.campaign import (
    CampaignResult,
    CampaignRunner,
    RunSpec,
    execute_run,
    run_full_campaign,
)
from repro.swifi.classify import OUTCOMES, Outcome
from repro.swifi.injector import FAULT_CLASSES, SwifiController
from repro.swifi.parallel import CampaignJournal, default_workers, run_campaign

__all__ = [
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "FAULT_CLASSES",
    "OUTCOMES",
    "Outcome",
    "RunSpec",
    "SwifiController",
    "default_workers",
    "execute_run",
    "run_campaign",
    "run_full_campaign",
]
