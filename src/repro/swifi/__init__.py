"""Software-implemented fault injection (SWIFI), Section V-A."""

from repro.swifi.campaign import CampaignResult, CampaignRunner
from repro.swifi.classify import OUTCOMES, Outcome
from repro.swifi.injector import SwifiController

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "OUTCOMES",
    "Outcome",
    "SwifiController",
]
