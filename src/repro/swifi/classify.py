"""Fault outcome taxonomy (Section V-D / Table II).

* ``recovered`` — the fault activated (was detected), the component was
  micro-rebooted, and the workload ran to completion with correct results
  ("continued execution that abides by the target component and workload
  specifications post-recovery").
* ``not_recovered_segfault`` — the system exited with a segmentation fault
  (the exception path itself was destroyed).
* ``not_recovered_propagated`` — a corrupted value escaped into a client
  and caused an unrecoverable failure there.
* ``not_recovered_other`` — hangs/latent faults and any other activated,
  detected fault that recovery could not repair.
* ``undetected`` — the flip had no observable effect (dead register,
  overwritten value, or harmless corruption).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class Outcome(enum.Enum):
    RECOVERED = "recovered"
    NOT_RECOVERED_SEGFAULT = "not_recovered_segfault"
    NOT_RECOVERED_PROPAGATED = "not_recovered_propagated"
    NOT_RECOVERED_OTHER = "not_recovered_other"
    UNDETECTED = "undetected"

    @property
    def activated(self) -> bool:
        return self is not Outcome.UNDETECTED


OUTCOMES = list(Outcome)


#: Cap on retained per-outcome detail strings: large campaigns (500
#: faults x 6 services, or far bigger parallel sweeps) must not grow an
#: unbounded side list nobody reads past the first page.  Overflow is
#: counted, not silently discarded.
MAX_DETAILS = 1000


@dataclass
class OutcomeCounter:
    """Aggregates outcomes into the Table II row statistics."""

    counts: Dict[Outcome, int] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)
    details_dropped: int = 0

    def add(self, outcome: Outcome, detail: str = "") -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + 1
        if detail:
            if len(self.details) < MAX_DETAILS:
                self.details.append(f"{outcome.value}: {detail}")
            else:
                self.details_dropped += 1

    def count(self, outcome: Outcome) -> int:
        return self.counts.get(outcome, 0)

    @property
    def injected(self) -> int:
        return sum(self.counts.values())

    @property
    def activated(self) -> int:
        return sum(c for o, c in self.counts.items() if o.activated)

    @property
    def recovered(self) -> int:
        return self.count(Outcome.RECOVERED)

    @property
    def activation_ratio(self) -> float:
        """|F_a| / |F_a u F_u|."""
        return self.activated / self.injected if self.injected else 0.0

    @property
    def recovery_success_rate(self) -> float:
        """|F_r| / |F_a|."""
        return self.recovered / self.activated if self.activated else 0.0
