"""Hand-written C^3 stub for the memory manager component.

Mapping descriptors are (component, vaddr) pairs; the client-visible key
is the virtual address each call returned.  The stub maintains the
parent/child alias tree so recovery can run root-first (D1) and so that
recursive revocation drops the tracked subtree (D0) — the ordering rules
Section II-D derives for MM recovery.
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase
from repro.composite.kernel import FAULT
from repro.errors import InvalidDescriptor


class MMC3ClientStub(C3ClientStubBase):
    SERVICE = "mm"

    # ------------------------------------------------------------------
    def c3_mman_get_page(self, kernel, thread, compid, vaddr):
        while True:
            ret = kernel.raw_invoke(
                thread, self.server, "mman_get_page", (compid, vaddr)
            )
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if isinstance(ret, int) and ret < 0:
                return ret
            entry = {
                "sid": ret,
                "kind": "root",
                "vaddr": vaddr,
                "parent": None,
                "dst_spdid": None,
                "dst_vaddr": None,
                "children": set(),
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_mman_alias_page(self, kernel, thread, compid, vaddr, dst_spdid,
                           dst_vaddr):
        parent = self.descs.get(vaddr)
        retries = 0
        while True:
            if parent is not None:
                # D1: the aliased-from parent must be consistent first.
                self._recover(kernel, thread, vaddr)
            parent_sid = parent["sid"] if parent is not None else vaddr
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "mman_alias_page",
                    (compid, parent_sid, dst_spdid, dst_vaddr),
                )
            except InvalidDescriptor:
                if parent is None or retries >= 3:
                    raise
                retries += 1
                parent["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if isinstance(ret, int) and ret < 0:
                return ret
            entry = {
                "sid": ret,
                "kind": "alias",
                "vaddr": vaddr,
                "parent": vaddr,
                "dst_spdid": dst_spdid,
                "dst_vaddr": dst_vaddr,
                "children": set(),
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            if parent is not None:
                parent["children"].add(ret)
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_mman_release_page(self, kernel, thread, compid, vaddr):
        entry = self.descs.get(vaddr)
        retries = 0
        while True:
            if entry is not None:
                # D0: the whole tracked subtree must be consistent so the
                # recursive revocation acts on real mappings.
                for key in self._subtree(vaddr):
                    self._recover(kernel, thread, key)
            sid = entry["sid"] if entry is not None else vaddr
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "mman_release_page", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                for key in self._subtree(vaddr):
                    child = self.descs.pop(key, None)
                    if child is not None and child["parent"] in self.descs:
                        self.descs[child["parent"]]["children"].discard(key)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def _subtree(self, cdesc):
        """The descriptor plus all tracked descendants."""
        out = []
        stack = [cdesc]
        seen = set()
        while stack:
            key = stack.pop()
            if key in seen or key not in self.descs:
                continue
            seen.add(key)
            out.append(key)
            stack.extend(self.descs[key]["children"])
        return out

    def _recover(self, kernel, thread, cdesc) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        owner = self.impersonate(thread, entry["owner"])
        if entry["kind"] == "root":
            entry["sid"] = self.replay(
                kernel, owner, "mman_get_page", (self.client, entry["vaddr"])
            )
        else:
            # Parent first, then re-alias from it (D1, root-to-leaf).
            parent = self.descs.get(entry["parent"])
            if parent is not None:
                self._recover(kernel, thread, entry["parent"])
            parent_sid = (
                parent["sid"] if parent is not None else entry["parent"]
            )
            entry["sid"] = self.replay(
                kernel, owner, "mman_alias_page",
                (
                    self.client,
                    parent_sid,
                    entry["dst_spdid"],
                    entry["dst_vaddr"],
                ),
            )
        self.record_recovery(kernel, start)
        return True
