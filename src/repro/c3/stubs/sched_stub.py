"""Hand-written C^3 stub for the scheduler component.

Thread descriptors are kernel tids (stable across recovery), so the walk
is a re-registration on behalf of the descriptor's thread; block state is
re-established by the redo of the parked ``sched_blk`` invocation after
the eager fault wakeup.
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase
from repro.composite.kernel import FAULT
from repro.errors import BlockThread, InvalidDescriptor


class SchedC3ClientStub(C3ClientStubBase):
    SERVICE = "sched"

    # ------------------------------------------------------------------
    def c3_sched_register(self, kernel, thread, compid):
        while True:
            ret = kernel.raw_invoke(
                thread, self.server, "sched_register", (compid,)
            )
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            entry = {
                "sid": ret,
                "tid": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_sched_blk(self, kernel, thread, compid, tid):
        entry = self.descs.get(tid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, tid)
            sid = entry["sid"] if entry is not None else tid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "sched_blk", (compid, sid)
                )
            except BlockThread:
                raise
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    def post_unblock(self, kernel, thread, fn, args, value):
        if fn == "sched_blk":
            entry = self.descs.get(args[1])
            if entry is not None:
                self.track(kernel, thread, entry)
        return value

    # ------------------------------------------------------------------
    def c3_sched_wakeup(self, kernel, thread, compid, tid):
        entry = self.descs.get(tid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, tid)
            sid = entry["sid"] if entry is not None else tid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "sched_wakeup", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_sched_exit(self, kernel, thread, compid, tid):
        entry = self.descs.get(tid)
        while True:
            if entry is not None:
                self._recover(kernel, thread, tid)
            sid = entry["sid"] if entry is not None else tid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "sched_exit", (compid, sid)
                )
            except InvalidDescriptor:
                raise
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            self.descs.pop(tid, None)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def _recover(self, kernel, thread, cdesc) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        # Walk: re-register on behalf of the descriptor's own thread (the
        # scheduler also reflects on the kernel at reboot; the re-register
        # is idempotent and restores the interface-visible descriptor).
        principal = self.impersonate(thread, entry["tid"])
        entry["sid"] = self.replay(
            kernel, principal, "sched_register", (self.client,)
        )
        self.record_recovery(kernel, start)
        return True
