"""Hand-written C^3 interface stubs, one module per system service."""
