"""Hand-written C^3 stubs for the event notification component.

Event descriptors are *global* — shared across client components — so the
hand-written baseline needs both sides:

* the client stub tracks descriptors it created and replays their
  ``evt_split`` on recovery, recording old->new id aliases in the storage
  component; and
* the server stub catches EINVAL on unknown descriptor ids, follows the
  alias chain in storage, and — when another component's descriptor has
  not been recovered yet — upcalls the creating client's stub to rerun
  recovery before replaying the invocation (the G0/U0 machinery that C^3
  required "explicit code to interact with storage components" for).
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase, C3ServerStubBase
from repro.composite.kernel import FAULT
from repro.composite.thread import Invoke
from repro.errors import BlockThread, InvalidDescriptor


class EventC3ClientStub(C3ClientStubBase):
    SERVICE = "event"

    # ------------------------------------------------------------------
    def c3_evt_split(self, kernel, thread, compid, parent_evtid, grp):
        parent = self.descs.get(parent_evtid)
        retries = 0
        while True:
            if parent is not None:
                self._recover(kernel, thread, parent_evtid)
            parent_sid = parent["sid"] if parent is not None else parent_evtid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "evt_split",
                    (compid, parent_sid, grp),
                )
            except InvalidDescriptor:
                if parent is None or retries >= 3:
                    raise
                retries += 1
                parent["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            entry = {
                "sid": ret,
                "parent": parent_evtid,
                "grp": grp,
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_evt_wait(self, kernel, thread, compid, evtid):
        entry = self.descs.get(evtid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, evtid)
            sid = entry["sid"] if entry is not None else evtid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "evt_wait", (compid, sid)
                )
            except BlockThread:
                raise
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    def post_unblock(self, kernel, thread, fn, args, value):
        if fn == "evt_wait":
            entry = self.descs.get(args[1])
            if entry is not None:
                self.track(kernel, thread, entry)
        return value

    # ------------------------------------------------------------------
    def c3_evt_trigger(self, kernel, thread, compid, evtid):
        entry = self.descs.get(evtid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, evtid)
            sid = entry["sid"] if entry is not None else evtid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "evt_trigger", (compid, sid)
                )
            except InvalidDescriptor:
                # Not our descriptor: the server-side stub's G0 path is
                # responsible for resolving it; re-raising reports genuine
                # failures.
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_evt_free(self, kernel, thread, compid, evtid):
        entry = self.descs.get(evtid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, evtid)
            sid = entry["sid"] if entry is not None else evtid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "evt_free", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            self.descs.pop(evtid, None)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def recover_by_old_sid(self, kernel, thread, old_sid):
        """U0 entry point: the server stub upcalls us to recover a global
        descriptor we created; returns the new server id."""
        for cdesc, entry in self.descs.items():
            if entry["sid"] == old_sid:
                self._recover(kernel, thread, cdesc, force=True)
                return entry["sid"]
        return None

    def _recover(self, kernel, thread, cdesc, force: bool = False) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current and not force:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        parent = self.descs.get(entry["parent"])
        if parent is not None:
            self._recover(kernel, thread, entry["parent"])
        parent_sid = parent["sid"] if parent is not None else entry["parent"]
        owner = self.impersonate(thread, entry["owner"])
        old_sid = entry["sid"]
        entry["sid"] = self.replay(
            kernel, owner, "evt_split",
            (self.client, parent_sid, entry["grp"]),
        )
        if entry["sid"] != old_sid:
            # Record the id translation for other components' stale ids.
            kernel.invoke(
                thread,
                Invoke(
                    "storage", "store_put", "alias:event", old_sid, entry["sid"]
                ),
            )
        self.record_recovery(kernel, start)
        return True


class EventC3ServerStub(C3ServerStubBase):
    """Hand-written server-side stub implementing G0 for global events."""

    def dispatch(self, kernel, thread, fn, args):
        try:
            result = self.component.dispatch(fn, thread, args)
        except InvalidDescriptor as error:
            new_args = self._recover_global(kernel, thread, fn, args, error)
            if new_args is None:
                raise
            self.stats["einval_recoveries"] += 1
            result = self.component.dispatch(fn, thread, new_args)
        if fn == "evt_split":
            # Remember who created each global descriptor (G0 metadata).
            storage = kernel.component(self.storage_name)
            if not isinstance(result, (bytes, str)):
                storage.record_creator(thread, self.component.name, result, args[0])
        return result

    def _recover_global(self, kernel, thread, fn, args, error):
        if fn not in ("evt_wait", "evt_trigger", "evt_free"):
            return None
        desc_id = args[1]
        storage = kernel.component(self.storage_name)
        resolved = storage.resolve_alias(thread, self.component.name, desc_id)
        if resolved != desc_id and self.component.has_record(resolved):
            return (args[0], resolved) + tuple(args[2:])
        creator = storage.lookup_creator(thread, self.component.name, desc_id)
        if creator is None:
            return None
        client_stub = kernel.stub_for(creator, self.component.name)
        if client_stub is None or not hasattr(client_stub, "recover_by_old_sid"):
            return None
        kernel.charge(thread, 300)  # upcall into the creator component
        kernel.stats["upcalls"] += 1
        new_sid = client_stub.recover_by_old_sid(kernel, thread, desc_id)
        if new_sid is None:
            return None
        self.stats["replays"] += 1
        return (args[0], new_sid) + tuple(args[2:])
