"""Hand-written C^3 stub for the RAM filesystem component.

The paper singles these stubs out: "Some interface stubs are more than 398
lines of code (e.g., the file system component stubs)".  Tracking: the
parent fd and subpath used at tsplit time, plus the current file offset
maintained from read/write return values.  Recovery re-splits the path and
re-seeks to the tracked offset (the Fig. 2(b) walk); file *contents* come
back through the storage component inside the RamFS service itself (G1).
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase
from repro.composite.kernel import FAULT
from repro.errors import InvalidDescriptor


class RamFSC3ClientStub(C3ClientStubBase):
    SERVICE = "ramfs"

    # ------------------------------------------------------------------
    def c3_tsplit(self, kernel, thread, compid, parent_fd, subpath):
        parent = self.descs.get(parent_fd)
        retries = 0
        while True:
            if parent is not None:
                # Parents recover before children (D1).
                self._recover(kernel, thread, parent_fd)
            parent_sid = parent["sid"] if parent is not None else parent_fd
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "tsplit",
                    (compid, parent_sid, subpath),
                )
            except InvalidDescriptor:
                if parent is None or retries >= 3:
                    raise
                retries += 1
                parent["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            entry = {
                "sid": ret,
                "parent": parent_fd,
                "subpath": subpath,
                "offset": 0,
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_tread(self, kernel, thread, compid, fd, nbytes):
        entry = self.descs.get(fd)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, fd)
            sid = entry["sid"] if entry is not None else fd
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "tread", (compid, sid, nbytes)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                # Offset advances by the bytes actually read.
                entry["offset"] += len(ret)
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_twrite(self, kernel, thread, compid, fd, data):
        entry = self.descs.get(fd)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, fd)
            sid = entry["sid"] if entry is not None else fd
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "twrite", (compid, sid, data)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None and isinstance(ret, int) and ret >= 0:
                entry["offset"] += ret
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_tseek(self, kernel, thread, compid, fd, offset):
        entry = self.descs.get(fd)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, fd)
            sid = entry["sid"] if entry is not None else fd
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "tseek", (compid, sid, offset)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None and isinstance(ret, int) and ret >= 0:
                entry["offset"] = offset
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_trelease(self, kernel, thread, compid, fd):
        entry = self.descs.get(fd)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, fd)
            sid = entry["sid"] if entry is not None else fd
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "trelease", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            # Y_dr: closing removes the tracking data.
            self.descs.pop(fd, None)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def _recover(self, kernel, thread, cdesc) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        # D1: recover the parent descriptor first (root-to-leaf).
        parent = self.descs.get(entry["parent"])
        if parent is not None:
            self._recover(kernel, thread, entry["parent"])
        parent_sid = parent["sid"] if parent is not None else entry["parent"]
        owner = self.impersonate(thread, entry["owner"])
        # Walk: re-open the path, then restore the offset (Fig. 2(b)).
        entry["sid"] = self.replay(
            kernel, owner, "tsplit",
            (self.client, parent_sid, entry["subpath"]),
        )
        self.replay(
            kernel, owner, "tseek",
            (self.client, entry["sid"], entry["offset"]),
        )
        self.record_recovery(kernel, start)
        return True
